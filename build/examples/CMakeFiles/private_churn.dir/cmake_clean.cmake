file(REMOVE_RECURSE
  "CMakeFiles/private_churn.dir/private_churn.cpp.o"
  "CMakeFiles/private_churn.dir/private_churn.cpp.o.d"
  "private_churn"
  "private_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
