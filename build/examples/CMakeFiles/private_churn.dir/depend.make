# Empty dependencies file for private_churn.
# This may be replaced when dependencies are built.
