file(REMOVE_RECURSE
  "CMakeFiles/automl_extension.dir/automl_extension.cpp.o"
  "CMakeFiles/automl_extension.dir/automl_extension.cpp.o.d"
  "automl_extension"
  "automl_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automl_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
