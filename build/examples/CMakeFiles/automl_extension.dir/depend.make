# Empty dependencies file for automl_extension.
# This may be replaced when dependencies are built.
