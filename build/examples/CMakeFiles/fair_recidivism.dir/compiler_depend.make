# Empty compiler generated dependencies file for fair_recidivism.
# This may be replaced when dependencies are built.
