file(REMOVE_RECURSE
  "CMakeFiles/fair_recidivism.dir/fair_recidivism.cpp.o"
  "CMakeFiles/fair_recidivism.dir/fair_recidivism.cpp.o.d"
  "fair_recidivism"
  "fair_recidivism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_recidivism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
