file(REMOVE_RECURSE
  "CMakeFiles/robust_credit.dir/robust_credit.cpp.o"
  "CMakeFiles/robust_credit.dir/robust_credit.cpp.o.d"
  "robust_credit"
  "robust_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
