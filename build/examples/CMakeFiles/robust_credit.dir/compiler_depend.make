# Empty compiler generated dependencies file for robust_credit.
# This may be replaced when dependencies are built.
