file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/classifier_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/classifier_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/dp_models_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/dp_models_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/models_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/models_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/serialization_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/serialization_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/training_tools_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/training_tools_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
