file(REMOVE_RECURSE
  "CMakeFiles/fs_test.dir/fs/extensions_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/extensions_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/feature_subset_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/feature_subset_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/portfolio_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/portfolio_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/rankings_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/rankings_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/strategies_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/strategies_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/tpe_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/tpe_test.cc.o.d"
  "fs_test"
  "fs_test.pdb"
  "fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
