
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fs/extensions_test.cc" "tests/CMakeFiles/fs_test.dir/fs/extensions_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/extensions_test.cc.o.d"
  "/root/repo/tests/fs/feature_subset_test.cc" "tests/CMakeFiles/fs_test.dir/fs/feature_subset_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/feature_subset_test.cc.o.d"
  "/root/repo/tests/fs/portfolio_test.cc" "tests/CMakeFiles/fs_test.dir/fs/portfolio_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/portfolio_test.cc.o.d"
  "/root/repo/tests/fs/rankings_test.cc" "tests/CMakeFiles/fs_test.dir/fs/rankings_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/rankings_test.cc.o.d"
  "/root/repo/tests/fs/strategies_test.cc" "tests/CMakeFiles/fs_test.dir/fs/strategies_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/strategies_test.cc.o.d"
  "/root/repo/tests/fs/tpe_test.cc" "tests/CMakeFiles/fs_test.dir/fs/tpe_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs/tpe_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/dfs_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_robustness.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
