file(REMOVE_RECURSE
  "CMakeFiles/dfs_testing.dir/testing/test_util.cc.o"
  "CMakeFiles/dfs_testing.dir/testing/test_util.cc.o.d"
  "libdfs_testing.a"
  "libdfs_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
