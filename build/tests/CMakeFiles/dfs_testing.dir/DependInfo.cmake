
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testing/test_util.cc" "tests/CMakeFiles/dfs_testing.dir/testing/test_util.cc.o" "gcc" "tests/CMakeFiles/dfs_testing.dir/testing/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
