# Empty dependencies file for dfs_testing.
# This may be replaced when dependencies are built.
