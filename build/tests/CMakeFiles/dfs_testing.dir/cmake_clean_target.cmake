file(REMOVE_RECURSE
  "libdfs_testing.a"
)
