
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cc" "tests/CMakeFiles/core_test.dir/core/analysis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analysis_test.cc.o.d"
  "/root/repo/tests/core/dfs_test.cc" "tests/CMakeFiles/core_test.dir/core/dfs_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dfs_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/core_test.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/core/integration_test.cc" "tests/CMakeFiles/core_test.dir/core/integration_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/integration_test.cc.o.d"
  "/root/repo/tests/core/optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/optimizer_test.cc.o.d"
  "/root/repo/tests/core/scenario_test.cc" "tests/CMakeFiles/core_test.dir/core/scenario_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scenario_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/dfs_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_robustness.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
