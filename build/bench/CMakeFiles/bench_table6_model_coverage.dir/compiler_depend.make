# Empty compiler generated dependencies file for bench_table6_model_coverage.
# This may be replaced when dependencies are built.
