# Empty compiler generated dependencies file for bench_table5_constraint_types.
# This may be replaced when dependencies are built.
