file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_distance_utility.dir/bench_table4_distance_utility.cc.o"
  "CMakeFiles/bench_table4_distance_utility.dir/bench_table4_distance_utility.cc.o.d"
  "bench_table4_distance_utility"
  "bench_table4_distance_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_distance_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
