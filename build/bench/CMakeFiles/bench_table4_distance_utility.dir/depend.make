# Empty dependencies file for bench_table4_distance_utility.
# This may be replaced when dependencies are built.
