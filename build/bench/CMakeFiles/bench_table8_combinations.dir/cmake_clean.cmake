file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_combinations.dir/bench_table8_combinations.cc.o"
  "CMakeFiles/bench_table8_combinations.dir/bench_table8_combinations.cc.o.d"
  "bench_table8_combinations"
  "bench_table8_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
