file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_constraint_grid.dir/bench_fig5_constraint_grid.cc.o"
  "CMakeFiles/bench_fig5_constraint_grid.dir/bench_fig5_constraint_grid.cc.o.d"
  "bench_fig5_constraint_grid"
  "bench_fig5_constraint_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_constraint_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
