# Empty compiler generated dependencies file for bench_fig5_constraint_grid.
# This may be replaced when dependencies are built.
