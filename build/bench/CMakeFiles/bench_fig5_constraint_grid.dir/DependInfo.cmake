
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_constraint_grid.cc" "bench/CMakeFiles/bench_fig5_constraint_grid.dir/bench_fig5_constraint_grid.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_constraint_grid.dir/bench_fig5_constraint_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dfs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_robustness.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
