# Empty compiler generated dependencies file for bench_table9_meta_accuracy.
# This may be replaced when dependencies are built.
