file(REMOVE_RECURSE
  "libdfs_bench_common.a"
)
