# Empty compiler generated dependencies file for dfs_bench_common.
# This may be replaced when dependencies are built.
