file(REMOVE_RECURSE
  "CMakeFiles/dfs_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/dfs_bench_common.dir/bench_common.cc.o.d"
  "libdfs_bench_common.a"
  "libdfs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
