file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tradeoffs.dir/bench_fig1_tradeoffs.cc.o"
  "CMakeFiles/bench_fig1_tradeoffs.dir/bench_fig1_tradeoffs.cc.o.d"
  "bench_fig1_tradeoffs"
  "bench_fig1_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
