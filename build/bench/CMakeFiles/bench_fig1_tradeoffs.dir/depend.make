# Empty dependencies file for bench_fig1_tradeoffs.
# This may be replaced when dependencies are built.
