# Empty compiler generated dependencies file for bench_table7_transfer.
# This may be replaced when dependencies are built.
