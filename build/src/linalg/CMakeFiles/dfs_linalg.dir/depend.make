# Empty dependencies file for dfs_linalg.
# This may be replaced when dependencies are built.
