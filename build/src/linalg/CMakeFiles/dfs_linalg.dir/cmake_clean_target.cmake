file(REMOVE_RECURSE
  "libdfs_linalg.a"
)
