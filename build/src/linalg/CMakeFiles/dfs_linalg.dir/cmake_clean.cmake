file(REMOVE_RECURSE
  "CMakeFiles/dfs_linalg.dir/eigen.cc.o"
  "CMakeFiles/dfs_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/dfs_linalg.dir/knn.cc.o"
  "CMakeFiles/dfs_linalg.dir/knn.cc.o.d"
  "CMakeFiles/dfs_linalg.dir/lasso.cc.o"
  "CMakeFiles/dfs_linalg.dir/lasso.cc.o.d"
  "CMakeFiles/dfs_linalg.dir/matrix.cc.o"
  "CMakeFiles/dfs_linalg.dir/matrix.cc.o.d"
  "libdfs_linalg.a"
  "libdfs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
