file(REMOVE_RECURSE
  "libdfs_fs.a"
)
