# Empty dependencies file for dfs_fs.
# This may be replaced when dependencies are built.
