
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/evolutionary.cc" "src/fs/CMakeFiles/dfs_fs.dir/evolutionary.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/evolutionary.cc.o.d"
  "/root/repo/src/fs/exhaustive.cc" "src/fs/CMakeFiles/dfs_fs.dir/exhaustive.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/exhaustive.cc.o.d"
  "/root/repo/src/fs/feature_subset.cc" "src/fs/CMakeFiles/dfs_fs.dir/feature_subset.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/feature_subset.cc.o.d"
  "/root/repo/src/fs/nsga2.cc" "src/fs/CMakeFiles/dfs_fs.dir/nsga2.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/nsga2.cc.o.d"
  "/root/repo/src/fs/portfolio.cc" "src/fs/CMakeFiles/dfs_fs.dir/portfolio.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/portfolio.cc.o.d"
  "/root/repo/src/fs/rankings/information.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/information.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/information.cc.o.d"
  "/root/repo/src/fs/rankings/mcfs.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/mcfs.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/mcfs.cc.o.d"
  "/root/repo/src/fs/rankings/mrmr.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/mrmr.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/mrmr.cc.o.d"
  "/root/repo/src/fs/rankings/ranking.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/ranking.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/ranking.cc.o.d"
  "/root/repo/src/fs/rankings/relieff.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/relieff.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/relieff.cc.o.d"
  "/root/repo/src/fs/rankings/statistical.cc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/statistical.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rankings/statistical.cc.o.d"
  "/root/repo/src/fs/registry.cc" "src/fs/CMakeFiles/dfs_fs.dir/registry.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/registry.cc.o.d"
  "/root/repo/src/fs/rfe.cc" "src/fs/CMakeFiles/dfs_fs.dir/rfe.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/rfe.cc.o.d"
  "/root/repo/src/fs/search/tpe.cc" "src/fs/CMakeFiles/dfs_fs.dir/search/tpe.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/search/tpe.cc.o.d"
  "/root/repo/src/fs/sequential.cc" "src/fs/CMakeFiles/dfs_fs.dir/sequential.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/sequential.cc.o.d"
  "/root/repo/src/fs/simulated_annealing.cc" "src/fs/CMakeFiles/dfs_fs.dir/simulated_annealing.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/simulated_annealing.cc.o.d"
  "/root/repo/src/fs/top_k.cc" "src/fs/CMakeFiles/dfs_fs.dir/top_k.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/top_k.cc.o.d"
  "/root/repo/src/fs/tpe_mask.cc" "src/fs/CMakeFiles/dfs_fs.dir/tpe_mask.cc.o" "gcc" "src/fs/CMakeFiles/dfs_fs.dir/tpe_mask.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
