file(REMOVE_RECURSE
  "CMakeFiles/dfs_data.dir/arff.cc.o"
  "CMakeFiles/dfs_data.dir/arff.cc.o.d"
  "CMakeFiles/dfs_data.dir/benchmark_suite.cc.o"
  "CMakeFiles/dfs_data.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/dfs_data.dir/dataset.cc.o"
  "CMakeFiles/dfs_data.dir/dataset.cc.o.d"
  "CMakeFiles/dfs_data.dir/feature_construction.cc.o"
  "CMakeFiles/dfs_data.dir/feature_construction.cc.o.d"
  "CMakeFiles/dfs_data.dir/preprocess.cc.o"
  "CMakeFiles/dfs_data.dir/preprocess.cc.o.d"
  "CMakeFiles/dfs_data.dir/raw_dataset.cc.o"
  "CMakeFiles/dfs_data.dir/raw_dataset.cc.o.d"
  "CMakeFiles/dfs_data.dir/split.cc.o"
  "CMakeFiles/dfs_data.dir/split.cc.o.d"
  "CMakeFiles/dfs_data.dir/synthetic.cc.o"
  "CMakeFiles/dfs_data.dir/synthetic.cc.o.d"
  "libdfs_data.a"
  "libdfs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
