file(REMOVE_RECURSE
  "libdfs_data.a"
)
