# Empty compiler generated dependencies file for dfs_data.
# This may be replaced when dependencies are built.
