file(REMOVE_RECURSE
  "CMakeFiles/dfs_constraints.dir/constraint.cc.o"
  "CMakeFiles/dfs_constraints.dir/constraint.cc.o.d"
  "CMakeFiles/dfs_constraints.dir/constraint_set.cc.o"
  "CMakeFiles/dfs_constraints.dir/constraint_set.cc.o.d"
  "libdfs_constraints.a"
  "libdfs_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
