# Empty dependencies file for dfs_constraints.
# This may be replaced when dependencies are built.
