file(REMOVE_RECURSE
  "libdfs_constraints.a"
)
