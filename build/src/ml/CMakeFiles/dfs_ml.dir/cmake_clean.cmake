file(REMOVE_RECURSE
  "CMakeFiles/dfs_ml.dir/classifier.cc.o"
  "CMakeFiles/dfs_ml.dir/classifier.cc.o.d"
  "CMakeFiles/dfs_ml.dir/cross_validation.cc.o"
  "CMakeFiles/dfs_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/dfs_ml.dir/decision_tree.cc.o"
  "CMakeFiles/dfs_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/dfs_ml.dir/dp/dp_classifier.cc.o"
  "CMakeFiles/dfs_ml.dir/dp/dp_classifier.cc.o.d"
  "CMakeFiles/dfs_ml.dir/dp/dp_decision_tree.cc.o"
  "CMakeFiles/dfs_ml.dir/dp/dp_decision_tree.cc.o.d"
  "CMakeFiles/dfs_ml.dir/dp/dp_logistic_regression.cc.o"
  "CMakeFiles/dfs_ml.dir/dp/dp_logistic_regression.cc.o.d"
  "CMakeFiles/dfs_ml.dir/dp/dp_naive_bayes.cc.o"
  "CMakeFiles/dfs_ml.dir/dp/dp_naive_bayes.cc.o.d"
  "CMakeFiles/dfs_ml.dir/grid_search.cc.o"
  "CMakeFiles/dfs_ml.dir/grid_search.cc.o.d"
  "CMakeFiles/dfs_ml.dir/linear_svm.cc.o"
  "CMakeFiles/dfs_ml.dir/linear_svm.cc.o.d"
  "CMakeFiles/dfs_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/dfs_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/dfs_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/dfs_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/dfs_ml.dir/permutation_importance.cc.o"
  "CMakeFiles/dfs_ml.dir/permutation_importance.cc.o.d"
  "CMakeFiles/dfs_ml.dir/random_forest.cc.o"
  "CMakeFiles/dfs_ml.dir/random_forest.cc.o.d"
  "libdfs_ml.a"
  "libdfs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
