
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/dfs_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/dfs_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/dfs_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/dp/dp_classifier.cc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_classifier.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_classifier.cc.o.d"
  "/root/repo/src/ml/dp/dp_decision_tree.cc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_decision_tree.cc.o.d"
  "/root/repo/src/ml/dp/dp_logistic_regression.cc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_logistic_regression.cc.o.d"
  "/root/repo/src/ml/dp/dp_naive_bayes.cc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/dp/dp_naive_bayes.cc.o.d"
  "/root/repo/src/ml/grid_search.cc" "src/ml/CMakeFiles/dfs_ml.dir/grid_search.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/grid_search.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/ml/CMakeFiles/dfs_ml.dir/linear_svm.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/linear_svm.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/dfs_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/dfs_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/permutation_importance.cc" "src/ml/CMakeFiles/dfs_ml.dir/permutation_importance.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/permutation_importance.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/dfs_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/dfs_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
