file(REMOVE_RECURSE
  "libdfs_ml.a"
)
