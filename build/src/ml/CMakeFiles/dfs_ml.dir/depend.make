# Empty dependencies file for dfs_ml.
# This may be replaced when dependencies are built.
