file(REMOVE_RECURSE
  "CMakeFiles/dfs_util.dir/csv.cc.o"
  "CMakeFiles/dfs_util.dir/csv.cc.o.d"
  "CMakeFiles/dfs_util.dir/flags.cc.o"
  "CMakeFiles/dfs_util.dir/flags.cc.o.d"
  "CMakeFiles/dfs_util.dir/logging.cc.o"
  "CMakeFiles/dfs_util.dir/logging.cc.o.d"
  "CMakeFiles/dfs_util.dir/math_util.cc.o"
  "CMakeFiles/dfs_util.dir/math_util.cc.o.d"
  "CMakeFiles/dfs_util.dir/rng.cc.o"
  "CMakeFiles/dfs_util.dir/rng.cc.o.d"
  "CMakeFiles/dfs_util.dir/status.cc.o"
  "CMakeFiles/dfs_util.dir/status.cc.o.d"
  "CMakeFiles/dfs_util.dir/string_util.cc.o"
  "CMakeFiles/dfs_util.dir/string_util.cc.o.d"
  "CMakeFiles/dfs_util.dir/table_printer.cc.o"
  "CMakeFiles/dfs_util.dir/table_printer.cc.o.d"
  "CMakeFiles/dfs_util.dir/thread_pool.cc.o"
  "CMakeFiles/dfs_util.dir/thread_pool.cc.o.d"
  "libdfs_util.a"
  "libdfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
