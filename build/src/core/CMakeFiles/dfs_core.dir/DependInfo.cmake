
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/dfs_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/dfs.cc" "src/core/CMakeFiles/dfs_core.dir/dfs.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/dfs.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/dfs_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/engine.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/dfs_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/dfs_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/dfs_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/scenario_sampler.cc" "src/core/CMakeFiles/dfs_core.dir/scenario_sampler.cc.o" "gcc" "src/core/CMakeFiles/dfs_core.dir/scenario_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dfs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dfs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dfs_robustness.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dfs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dfs_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
