file(REMOVE_RECURSE
  "CMakeFiles/dfs_core.dir/analysis.cc.o"
  "CMakeFiles/dfs_core.dir/analysis.cc.o.d"
  "CMakeFiles/dfs_core.dir/dfs.cc.o"
  "CMakeFiles/dfs_core.dir/dfs.cc.o.d"
  "CMakeFiles/dfs_core.dir/engine.cc.o"
  "CMakeFiles/dfs_core.dir/engine.cc.o.d"
  "CMakeFiles/dfs_core.dir/experiment.cc.o"
  "CMakeFiles/dfs_core.dir/experiment.cc.o.d"
  "CMakeFiles/dfs_core.dir/optimizer.cc.o"
  "CMakeFiles/dfs_core.dir/optimizer.cc.o.d"
  "CMakeFiles/dfs_core.dir/scenario.cc.o"
  "CMakeFiles/dfs_core.dir/scenario.cc.o.d"
  "CMakeFiles/dfs_core.dir/scenario_sampler.cc.o"
  "CMakeFiles/dfs_core.dir/scenario_sampler.cc.o.d"
  "libdfs_core.a"
  "libdfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
