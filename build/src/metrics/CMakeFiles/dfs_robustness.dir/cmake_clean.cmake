file(REMOVE_RECURSE
  "CMakeFiles/dfs_robustness.dir/hop_skip_jump.cc.o"
  "CMakeFiles/dfs_robustness.dir/hop_skip_jump.cc.o.d"
  "CMakeFiles/dfs_robustness.dir/robustness.cc.o"
  "CMakeFiles/dfs_robustness.dir/robustness.cc.o.d"
  "libdfs_robustness.a"
  "libdfs_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
