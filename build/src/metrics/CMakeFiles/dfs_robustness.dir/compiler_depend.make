# Empty compiler generated dependencies file for dfs_robustness.
# This may be replaced when dependencies are built.
