file(REMOVE_RECURSE
  "libdfs_robustness.a"
)
