file(REMOVE_RECURSE
  "libdfs_metrics.a"
)
