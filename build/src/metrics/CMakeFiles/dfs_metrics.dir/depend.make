# Empty dependencies file for dfs_metrics.
# This may be replaced when dependencies are built.
