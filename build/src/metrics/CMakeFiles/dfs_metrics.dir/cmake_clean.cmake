file(REMOVE_RECURSE
  "CMakeFiles/dfs_metrics.dir/classification.cc.o"
  "CMakeFiles/dfs_metrics.dir/classification.cc.o.d"
  "CMakeFiles/dfs_metrics.dir/fairness.cc.o"
  "CMakeFiles/dfs_metrics.dir/fairness.cc.o.d"
  "libdfs_metrics.a"
  "libdfs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
