file(REMOVE_RECURSE
  "CMakeFiles/dfs_cli.dir/dfs_cli.cc.o"
  "CMakeFiles/dfs_cli.dir/dfs_cli.cc.o.d"
  "dfs_cli"
  "dfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
