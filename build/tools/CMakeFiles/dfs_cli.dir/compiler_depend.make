# Empty compiler generated dependencies file for dfs_cli.
# This may be replaced when dependencies are built.
