// Table 8: running strategies in parallel — greedy top-k combinations that
// maximize pooled coverage (left) or the fraction of scenarios where the
// pool contains the fastest answer (right). Assumes embarrassingly parallel
// execution, as in the paper.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run() {
  PrintHeader("Table 8 — strategy combinations (coverage / fastest)",
              "Table 8");
  auto pool = GetPool(PoolMode::kHpo);
  if (!pool.ok()) return 1;

  const auto coverage_steps =
      core::GreedyCoverageCombination(pool->records(), fs::AllStrategies());
  auto fastest_candidates = fs::AllStrategies();
  fastest_candidates.push_back(fs::StrategyId::kOriginalFeatureSet);
  const auto fastest_steps =
      core::GreedyFastestCombination(pool->records(), fastest_candidates);

  TablePrinter table({"top-k", "Combination (coverage)", "Achieved",
                      "Combination (fastest)", "Achieved "});
  const size_t rows = std::max(coverage_steps.size(), fastest_steps.size());
  for (size_t k = 0; k < rows; ++k) {
    std::vector<std::string> row = {std::to_string(k + 1)};
    if (k < coverage_steps.size()) {
      row.push_back((k == 0 ? "" : "+ ") +
                    fs::StrategyIdToString(coverage_steps[k].added));
      row.push_back(FormatMeanStd(coverage_steps[k].achieved.mean,
                                  coverage_steps[k].achieved.stddev));
    } else {
      row.push_back("");
      row.push_back("");
    }
    if (k < fastest_steps.size()) {
      row.push_back((k == 0 ? "" : "+ ") +
                    fs::StrategyIdToString(fastest_steps[k].added));
      row.push_back(FormatMeanStd(fastest_steps[k].achieved.mean,
                                  fastest_steps[k].achieved.stddev));
    } else {
      row.push_back("");
      row.push_back("");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  if (coverage_steps.size() >= 5) {
    std::printf("\n5 parallel strategies reach %.0f%% coverage",
                coverage_steps[4].achieved.mean * 100.0);
  }
  if (fastest_steps.size() >= 5) {
    std::printf(" / %.0f%% fastest answers",
                fastest_steps[4].achieved.mean * 100.0);
  }
  std::printf(" (paper: 94%% / 52%%).\n");
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
