// Figure 4: strategies' coverage per individual dataset (heatmap), with the
// DFS Optimizer and Oracle rows. `--list` additionally prints the Table-2
// dataset inventory of the benchmark suite.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/optimizer.h"
#include "data/benchmark_suite.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

void PrintDatasetInventory() {
  TablePrinter table({"Dataset", "Instances (ours)", "Instances (paper)",
                      "Features (paper)", "Sensitive Attribute"});
  for (const auto& spec : data::BenchmarkSpecs()) {
    table.AddRow({spec.name, std::to_string(spec.rows),
                  std::to_string(spec.paper_instances),
                  std::to_string(spec.paper_features),
                  spec.sensitive_attribute});
  }
  std::printf("Table 2 — experimental datasets (synthetic stand-ins):\n");
  table.Print(std::cout);
  std::printf("\n");
}

int Run(bool list_datasets) {
  PrintHeader("Figure 4 — per-dataset coverage heatmap", "Figure 4");
  if (list_datasets) PrintDatasetInventory();

  auto pool = GetPool(PoolMode::kHpo);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }

  // Datasets that produced satisfiable scenarios, in suite order.
  std::vector<std::string> datasets;
  for (const auto& spec : data::BenchmarkSpecs()) {
    for (const auto& record : pool->records()) {
      if (record.dataset_name == spec.name && record.Satisfiable()) {
        datasets.push_back(spec.name);
        break;
      }
    }
  }
  if (datasets.empty()) {
    std::printf("no satisfiable scenarios sampled — increase DFS_SCENARIOS\n");
    return 0;
  }

  std::vector<std::string> header = {"Strategy"};
  for (const auto& dataset : datasets) {
    // Abbreviate long dataset names for the heatmap header.
    header.push_back(dataset.size() > 12 ? dataset.substr(0, 12) : dataset);
  }
  TablePrinter table(header);

  auto add_row = [&](const std::string& name,
                     const std::map<std::string, double>& coverage) {
    std::vector<std::string> row = {name};
    for (const auto& dataset : datasets) {
      auto it = coverage.find(dataset);
      row.push_back(it != coverage.end() ? FormatDouble(it->second, 2) : "-");
    }
    table.AddRow(std::move(row));
  };

  add_row("Original Feature Set",
          core::CoverageByDataset(pool->records(),
                                  fs::StrategyId::kOriginalFeatureSet));
  table.AddSeparator();
  for (fs::StrategyId id : fs::AllStrategies()) {
    add_row(fs::StrategyIdToString(id),
            core::CoverageByDataset(pool->records(), id));
  }
  table.AddSeparator();

  auto lodo = core::EvaluateOptimizerLodo(*pool, core::OptimizerOptions());
  if (lodo.ok()) {
    add_row("DFS Optimizer", lodo->coverage_by_dataset);
  }
  std::map<std::string, double> oracle;
  for (const auto& dataset : datasets) oracle[dataset] = 1.0;
  add_row("Oracle", oracle);

  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  bool list_datasets = true;  // inventory is cheap; print it by default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-list") == 0) list_datasets = false;
  }
  return dfs::bench::Run(list_datasets);
}
