// Figure 1: accuracy trade-off with three nonfunctional metrics (equal
// opportunity, feature-set size, safety) for LR, NB, and DT on COMPAS.
// Each "dot" is a random feature subset; the harness prints the dot series
// and a correlation summary so the trade-off clouds can be compared to the
// paper's charts.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "data/benchmark_suite.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "metrics/robustness.h"
#include "ml/classifier.h"
#include "util/math_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int SubsetsPerModel() {
  if (const char* env = std::getenv("DFS_SCENARIOS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 40;
}

int Run() {
  PrintHeader("Figure 1 — accuracy trade-offs on COMPAS", "Figure 1");
  auto dataset_or = data::GenerateBenchmarkDataset(/*COMPAS=*/6, 2021);
  if (!dataset_or.ok()) return 1;
  Rng split_rng(1);
  auto split_or = data::StratifiedSplit(*dataset_or, 3, 1, 1, split_rng);
  if (!split_or.ok()) return 1;
  const data::DataSplit& split = *split_or;
  const int total_features = split.train.num_features();

  const ml::ModelKind models[] = {ml::ModelKind::kLogisticRegression,
                                  ml::ModelKind::kNaiveBayes,
                                  ml::ModelKind::kDecisionTree};
  const int num_subsets = SubsetsPerModel();
  Rng rng(7);
  metrics::RobustnessOptions robustness;
  robustness.max_attacked_rows = 16;
  robustness.attack.max_queries = 120;

  for (ml::ModelKind model_kind : models) {
    TablePrinter table({"subset", "|F'|", "F1", "EO", "safety"});
    std::vector<double> f1s, eos, sizes, safeties;
    for (int s = 0; s < num_subsets; ++s) {
      // Random subset: size uniform in [1, total], members uniform.
      const int size = rng.UniformInt(1, total_features);
      const std::vector<int> features =
          rng.SampleWithoutReplacement(total_features, size);
      auto model = ml::CreateClassifier(model_kind, ml::Hyperparameters());
      const auto x_train = split.train.ToMatrix(features);
      if (!model->Fit(x_train, split.train.labels()).ok()) continue;
      const auto x_test = split.test.ToMatrix(features);
      const auto predictions = model->PredictBatch(x_test);
      const double f1 = metrics::F1Score(split.test.labels(), predictions);
      const double eo = metrics::EqualOpportunity(
          split.test.labels(), predictions, split.test.groups());
      const double safety = metrics::EmpiricalRobustness(
          *model, x_test, split.test.labels(), rng, robustness);
      f1s.push_back(f1);
      eos.push_back(eo);
      sizes.push_back(static_cast<double>(size) / total_features);
      safeties.push_back(safety);
      table.AddRow({std::to_string(s), std::to_string(size),
                    FormatDouble(f1, 3), FormatDouble(eo, 3),
                    FormatDouble(safety, 3)});
    }
    std::printf("--- %s ---\n", ml::ModelKindToString(model_kind));
    table.Print(std::cout);
    // Figure-1 reading: different subsets realize very different trade-off
    // points; safety correlates negatively with subset size.
    std::printf("spread: F1 [%.2f, %.2f]  EO [%.2f, %.2f]  safety [%.2f, %.2f]\n",
                Quantile(f1s, 0.0), Quantile(f1s, 1.0), Quantile(eos, 0.0),
                Quantile(eos, 1.0), Quantile(safeties, 0.0),
                Quantile(safeties, 1.0));
    std::printf("corr(size, safety) = %+.2f   corr(size, F1) = %+.2f\n\n",
                PearsonCorrelation(sizes, safeties),
                PearsonCorrelation(sizes, f1s));
  }
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
