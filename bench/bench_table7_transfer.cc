// Table 7: reusability of feature sets across models — the percentage of
// feature sets found with SFFS under an LR model that still satisfy the
// Min-Accuracy / Min-EO / Min-Safety constraints when a DT, NB, or SVM is
// trained on the same subset (Section 6.3).

#include <cstdio>
#include <functional>
#include <map>
#include <iostream>

#include "bench_common.h"
#include "core/engine.h"
#include "core/scenario_sampler.h"
#include "data/benchmark_suite.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "metrics/robustness.h"
#include "ml/grid_search.h"
#include "util/math_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

struct TransferTally {
  std::vector<double> accuracy_holds;
  std::vector<double> eo_holds;
  std::vector<double> safety_holds;
};

int Run() {
  PrintHeader("Table 7 — feature-set transferability from LR to DT/NB/SVM",
              "Table 7");
  core::ExperimentConfig config = PoolConfig(PoolMode::kHpo);
  const int scenarios = std::max(8, config.num_scenarios / 2);

  Rng sampler_rng(config.seed + 777);
  metrics::RobustnessOptions robustness = config.robustness;

  const std::vector<ml::ModelKind> targets = {ml::ModelKind::kDecisionTree,
                                              ml::ModelKind::kNaiveBayes,
                                              ml::ModelKind::kLinearSvm};
  std::map<ml::ModelKind, TransferTally> tallies;
  int successes = 0;

  for (int s = 0; s < scenarios; ++s) {
    core::SamplerOptions sampler = config.sampler;
    sampler.min_search_seconds *= config.time_scale;
    sampler.max_search_seconds *= config.time_scale;
    core::SampledScenario sampled =
        core::SampleScenario(data::BenchmarkSize(), sampler, sampler_rng);
    // Force the transfer setup: LR source model, EO + safety constraints
    // always active (the interesting columns of Table 7), no privacy
    // (model-independence of DP holds trivially by retraining the DP
    // variant).
    sampled.model = ml::ModelKind::kLogisticRegression;
    if (!sampled.constraint_set.min_equal_opportunity.has_value()) {
      sampled.constraint_set.min_equal_opportunity = 0.85;
    }
    if (!sampled.constraint_set.min_safety.has_value()) {
      sampled.constraint_set.min_safety = 0.85;
    }
    sampled.constraint_set.privacy_epsilon.reset();

    auto dataset_or = data::GenerateBenchmarkDataset(
        sampled.dataset_index, config.seed, config.row_scale);
    if (!dataset_or.ok()) continue;
    Rng split_rng(config.seed * 31 + s);
    auto scenario_or = core::MakeScenario(*dataset_or, sampled.model,
                                          sampled.constraint_set, split_rng);
    if (!scenario_or.ok()) continue;

    core::EngineOptions engine_options;
    engine_options.use_hpo = true;
    engine_options.robustness = robustness;
    engine_options.seed = config.seed + s;
    core::DfsEngine engine(*scenario_or, engine_options);
    auto strategy = fs::CreateStrategy(fs::StrategyId::kSffs, s + 1);
    const core::RunResult result = engine.Run(*strategy);
    if (!result.success) continue;
    ++successes;

    const std::vector<int> features = fs::MaskToIndices(result.selected);
    const auto& split = scenario_or->split;
    const auto x_train = split.train.ToMatrix(features);
    const auto x_validation = split.validation.ToMatrix(features);
    const auto x_test = split.test.ToMatrix(features);
    Rng metric_rng(engine_options.seed + 99);

    for (ml::ModelKind target : targets) {
      auto search = ml::GridSearch(target, x_train, split.train.labels(),
                                   x_validation, split.validation.labels());
      if (!search.ok()) continue;
      const auto predictions = search->best_model->PredictBatch(x_test);
      const double f1 = metrics::F1Score(split.test.labels(), predictions);
      const double eo = metrics::EqualOpportunity(
          split.test.labels(), predictions, split.test.groups());
      const double safety = metrics::EmpiricalRobustness(
          *search->best_model, x_test, split.test.labels(), metric_rng,
          robustness);
      TransferTally& tally = tallies[target];
      tally.accuracy_holds.push_back(
          f1 >= sampled.constraint_set.min_f1 ? 1.0 : 0.0);
      tally.eo_holds.push_back(
          eo >= *sampled.constraint_set.min_equal_opportunity ? 1.0 : 0.0);
      tally.safety_holds.push_back(
          safety >= *sampled.constraint_set.min_safety ? 1.0 : 0.0);
    }
  }

  std::printf("LR + SFFS found satisfying subsets in %d/%d scenarios\n\n",
              successes, scenarios);
  TablePrinter table(
      {"Target model (SFFS)", "Min Accuracy", "Min EO", "Min Safety"});
  for (ml::ModelKind target : targets) {
    const TransferTally& tally = tallies[target];
    auto cell = [](const std::vector<double>& holds) {
      if (holds.empty()) return std::string("-");
      return FormatMeanStd(Mean(holds), SampleStdDev(holds));
    };
    table.AddRow({std::string(ml::ModelKindToString(target)) + " (SFFS)",
                  cell(tally.accuracy_holds), cell(tally.eo_holds),
                  cell(tally.safety_holds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: fractions near 1 mean the constraints enforced via the\n"
      "LR search still hold after swapping the model — the modularity\n"
      "argument of Section 1. Safety is the most model-dependent.\n");
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
