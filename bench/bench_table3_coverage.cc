// Table 3: fraction of Fastest cases and coverage per strategy, under
// default model parameters and under hyperparameter optimization, plus the
// DFS Optimizer and Oracle rows.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/optimizer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run() {
  PrintHeader("Table 3 — Fastest fraction and coverage per strategy",
              "Table 3");
  auto default_pool = GetPool(PoolMode::kDefaultParameters);
  if (!default_pool.ok()) {
    std::fprintf(stderr, "%s\n", default_pool.status().ToString().c_str());
    return 1;
  }
  auto hpo_pool = GetPool(PoolMode::kHpo);
  if (!hpo_pool.ok()) {
    std::fprintf(stderr, "%s\n", hpo_pool.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"Strategy", "Fastest (default)", "Coverage (default)",
                      "Fastest (HPO)", "Coverage (HPO)"});
  auto row = [&](fs::StrategyId id) {
    const core::MeanStd fastest_default =
        core::FastestStats(default_pool->records(), id);
    const core::MeanStd coverage_default =
        core::CoverageStats(default_pool->records(), id);
    const core::MeanStd fastest_hpo =
        core::FastestStats(hpo_pool->records(), id);
    const core::MeanStd coverage_hpo =
        core::CoverageStats(hpo_pool->records(), id);
    table.AddRow({fs::StrategyIdToString(id),
                  FormatMeanStd(fastest_default.mean, fastest_default.stddev),
                  FormatMeanStd(coverage_default.mean,
                                coverage_default.stddev),
                  FormatMeanStd(fastest_hpo.mean, fastest_hpo.stddev),
                  FormatMeanStd(coverage_hpo.mean, coverage_hpo.stddev)});
  };

  row(fs::StrategyId::kOriginalFeatureSet);
  table.AddSeparator();
  for (fs::StrategyId id : fs::AllStrategies()) row(id);
  table.AddSeparator();

  // DFS Optimizer: leave-one-dataset-out on the HPO pool (Section 6.6).
  core::OptimizerOptions optimizer_options;
  auto lodo = core::EvaluateOptimizerLodo(*hpo_pool, optimizer_options);
  if (lodo.ok()) {
    table.AddRow({"DFS Optimizer", "-", "-",
                  FormatMeanStd(lodo->fastest_mean, lodo->fastest_stddev),
                  FormatMeanStd(lodo->coverage_mean, lodo->coverage_stddev)});
  } else {
    std::fprintf(stderr, "optimizer LODO skipped: %s\n",
                 lodo.status().ToString().c_str());
  }
  // Oracle: picks the fastest successful strategy per scenario, hence 1.0
  // on every satisfiable scenario by construction.
  table.AddRow({"Oracle", "1.00 ± 0.00", "1.00 ± 0.00", "1.00 ± 0.00",
                "1.00 ± 0.00"});
  table.Print(std::cout);

  int satisfiable = 0;
  for (const auto& record : hpo_pool->records()) {
    satisfiable += record.Satisfiable() ? 1 : 0;
  }
  std::printf("\n(HPO pool: %zu scenarios, %d satisfiable)\n",
              hpo_pool->records().size(), satisfiable);
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
