#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"

namespace dfs::bench {

core::ExperimentConfig PoolConfig(PoolMode mode) {
  core::ExperimentConfig config;
  config.row_scale = 0.35;
  config.sampler.min_search_seconds = 0.04;
  config.sampler.max_search_seconds = 0.50;
  switch (mode) {
    case PoolMode::kDefaultParameters:
      config.num_scenarios = 36;
      config.use_hpo = false;
      config.seed = 2021;
      break;
    case PoolMode::kHpo:
      config.num_scenarios = 36;
      config.use_hpo = true;
      config.seed = 2021;  // same scenario stream as the default pool
      break;
    case PoolMode::kUtility:
      config.num_scenarios = 10;
      config.use_hpo = true;
      config.utility_mode = true;
      config.seed = 957;
      break;
  }
  core::ApplyEnvironmentOverrides(config);
  return config;
}

std::string BenchResultsDir() {
  const char* env = std::getenv("DFS_BENCH_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

StatusOr<core::ExperimentPool> GetPool(PoolMode mode) {
  const core::ExperimentConfig config = PoolConfig(mode);
  const char* name = mode == PoolMode::kDefaultParameters ? "default"
                     : mode == PoolMode::kHpo             ? "hpo"
                                                          : "utility";
  const std::string cache_path = BenchResultsDir() + "/pool_" + name + "_" +
                                 std::to_string(config.Hash()) + ".csv";
  std::fprintf(stderr, "[pool:%s] %d scenarios (cache: %s)\n", name,
               config.num_scenarios, cache_path.c_str());
  return core::ExperimentPool::RunOrLoad(config, cache_path,
                                         /*verbose=*/true);
}

namespace {

std::string g_metrics_out;  // set once in InitBench, read by the atexit hook

void DumpMetricsAtExit() {
  if (g_metrics_out.empty()) return;
  if (!obs::DumpGlobalMetrics(g_metrics_out)) {
    std::fprintf(stderr, "metrics-out: cannot write %s\n",
                 g_metrics_out.c_str());
  } else {
    std::fprintf(stderr, "[metrics] snapshot written to %s\n",
                 g_metrics_out.c_str());
  }
}

}  // namespace

void InitBench(int argc, char** argv) {
  if (const char* env = std::getenv("DFS_METRICS_OUT")) g_metrics_out = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      g_metrics_out = argv[i + 1];
      ++i;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      g_metrics_out = argv[i] + 14;
    }
  }
  if (!g_metrics_out.empty()) std::atexit(DumpMetricsAtExit);
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s — Neutatz et al., SIGMOD 2021\n",
              paper_ref.c_str());
  std::printf("(synthetic stand-in datasets, scaled budgets; compare shapes,\n");
  std::printf(" not absolute values — see DESIGN.md / EXPERIMENTS.md)\n");
  std::printf("================================================================\n\n");
}

}  // namespace dfs::bench
