// Job-service throughput (google-benchmark): jobs/sec through a DfsServer
// at worker counts 1/2/4/8, plus submit-path latency under backpressure.
// Each job runs the cheapest strategy ("Original Feature Set", one wrapper
// evaluation) on a tiny registered dataset, so the measurement is dominated
// by queue/dispatch/bookkeeping overhead rather than model training.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "serve/server.h"
#include "util/logging.h"

namespace dfs::serve {
namespace {

constexpr char kDataset[] = "bench-tiny";

data::Dataset TinyDataset() {
  data::SyntheticSpec spec;
  spec.name = kDataset;
  spec.sensitive_attribute = "Group";
  spec.rows = 120;
  spec.informative_numeric = 3;
  spec.redundant_numeric = 1;
  spec.noise_numeric = 2;
  spec.proxy_features = 1;
  spec.categorical_attributes = 0;
  auto dataset = data::GenerateDataset(spec, /*seed=*/11);
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

JobRequest CheapJob(uint64_t seed) {
  JobRequest request;
  request.dataset = kDataset;
  request.strategy = "Original Feature Set";
  constraints::ConstraintSet set;
  set.min_f1 = 0.0;  // always satisfiable: one evaluation per job
  set.max_search_seconds = 10.0;
  request.constraint_set = set;
  request.seed = seed;
  return request;
}

void BM_ServeThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = 256;
  DfsServer server(options);
  server.RegisterDataset(kDataset, TinyDataset());

  uint64_t seed = 1;
  int64_t jobs = 0;
  for (auto _ : state) {
    constexpr int kBatch = 32;
    std::vector<JobId> ids;
    ids.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      auto id = server.Submit(CheapJob(seed++));
      DFS_CHECK(id.ok());
      ids.push_back(*id);
    }
    for (const JobId id : ids) {
      DFS_CHECK(server.WaitForTerminal(id, 120.0).ok());
    }
    jobs += kBatch;
  }
  state.SetItemsProcessed(jobs);
  state.SetLabel(std::to_string(workers) + " workers");
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Submit-path cost when the queue is full: must return kResourceExhausted
// without blocking, so this measures pure rejection overhead.
void BM_ServeBackpressureReject(benchmark::State& state) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  DfsServer server(options);
  server.RegisterDataset(kDataset, TinyDataset());

  // Occupy the worker and the single queue slot with endless jobs.
  JobRequest endless = CheapJob(1);
  endless.constraint_set.min_f1 = 0.999;
  endless.constraint_set.max_search_seconds = 3600.0;
  endless.strategy = "SA(NR)";
  DFS_CHECK(server.Submit(endless).ok());
  // The worker pops the first job quickly; retry until the second submit
  // lands in the (single-slot) queue and stays there.
  while (!server.Submit(endless).ok()) {
  }

  uint64_t seed = 100;
  for (auto _ : state) {
    auto rejected = server.Submit(CheapJob(seed++));
    benchmark::DoNotOptimize(rejected);
    DFS_CHECK(rejected.status().code() == StatusCode::kResourceExhausted);
  }
  server.Shutdown(/*cancel_pending=*/true);
}
BENCHMARK(BM_ServeBackpressureReject);

}  // namespace
}  // namespace dfs::serve

BENCHMARK_MAIN();
