// Job-service throughput (google-benchmark): jobs/sec through a DfsServer
// at worker counts 1/2/4/8, plus submit-path latency under backpressure
// and the router's cost on the submit path (router-off explicit jobs vs
// router-on "auto" jobs, with and without the online learning loop).
// Each job runs the cheapest strategy ("Original Feature Set", one wrapper
// evaluation) on a tiny registered dataset, so the measurement is dominated
// by queue/dispatch/bookkeeping overhead rather than model training.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "serve/server.h"
#include "util/logging.h"

namespace dfs::serve {
namespace {

constexpr char kDataset[] = "bench-tiny";

data::Dataset TinyDataset() {
  data::SyntheticSpec spec;
  spec.name = kDataset;
  spec.sensitive_attribute = "Group";
  spec.rows = 120;
  spec.informative_numeric = 3;
  spec.redundant_numeric = 1;
  spec.noise_numeric = 2;
  spec.proxy_features = 1;
  spec.categorical_attributes = 0;
  auto dataset = data::GenerateDataset(spec, /*seed=*/11);
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

JobRequest CheapJob(uint64_t seed) {
  JobRequest request;
  request.dataset = kDataset;
  request.strategy = "Original Feature Set";
  constraints::ConstraintSet set;
  set.min_f1 = 0.0;  // always satisfiable: one evaluation per job
  set.max_search_seconds = 10.0;
  request.constraint_set = set;
  request.seed = seed;
  return request;
}

void BM_ServeThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = 256;
  DfsServer server(options);
  server.RegisterDataset(kDataset, TinyDataset());

  uint64_t seed = 1;
  int64_t jobs = 0;
  for (auto _ : state) {
    constexpr int kBatch = 32;
    std::vector<JobId> ids;
    ids.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      auto id = server.Submit(CheapJob(seed++));
      DFS_CHECK(id.ok());
      ids.push_back(*id);
    }
    for (const JobId id : ids) {
      DFS_CHECK(server.WaitForTerminal(id, 120.0).ok());
    }
    jobs += kBatch;
  }
  state.SetItemsProcessed(jobs);
  state.SetLabel(std::to_string(workers) + " workers");
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Submit-path cost when the queue is full: must return kResourceExhausted
// without blocking, so this measures pure rejection overhead.
void BM_ServeBackpressureReject(benchmark::State& state) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  DfsServer server(options);
  server.RegisterDataset(kDataset, TinyDataset());

  // Occupy the worker and the single queue slot with endless jobs.
  JobRequest endless = CheapJob(1);
  endless.constraint_set.min_f1 = 0.999;
  endless.constraint_set.max_search_seconds = 3600.0;
  endless.strategy = "SA(NR)";
  DFS_CHECK(server.Submit(endless).ok());
  // The worker pops the first job quickly; retry until the second submit
  // lands in the (single-slot) queue and stays there.
  while (!server.Submit(endless).ok()) {
  }

  uint64_t seed = 100;
  for (auto _ : state) {
    auto rejected = server.Submit(CheapJob(seed++));
    benchmark::DoNotOptimize(rejected);
    DFS_CHECK(rejected.status().code() == StatusCode::kResourceExhausted);
  }
  server.Shutdown(/*cancel_pending=*/true);
}
BENCHMARK(BM_ServeBackpressureReject);

// Routed ("auto") job mix through the strategy router, against the
// explicit-strategy baseline above. Arg(0): router off — the job names its
// strategy and never touches the router. Arg(1): router on, static policy,
// no optimizer — the submit path pays fingerprint + policy + trace only.
// Arg(2): router on with the online loop (refit_every=64) — adds one
// landmark featurization (then cached), feedback appends, and background
// refits. All arms run 2 workers so bench_diff.py isolates router cost.
void BM_ServeRoutedThroughput(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 256;
  // All arms run the same one-evaluation strategy ("auto" resolves to it
  // through the untrained router), so the delta is routing overhead, not
  // a strategy change.
  options.default_auto_strategy = "Original Feature Set";
  if (mode == 2) {
    options.router.refit_every = 64;
    // Tiny landmark settings: the cost being measured is the routing
    // plumbing, not the one-off CV (which the feature cache absorbs).
    options.router.optimizer_options.landmark_sample_size = 40;
    options.router.optimizer_options.landmark_folds = 2;
  }
  DfsServer server(options);
  server.RegisterDataset(kDataset, TinyDataset());

  uint64_t seed = 1;
  int64_t jobs = 0;
  for (auto _ : state) {
    constexpr int kBatch = 32;
    std::vector<JobId> ids;
    ids.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      JobRequest request = CheapJob(seed++);
      if (mode != 0) request.strategy = "auto";
      auto id = server.Submit(request);
      DFS_CHECK(id.ok());
      ids.push_back(*id);
    }
    for (const JobId id : ids) {
      DFS_CHECK(server.WaitForTerminal(id, 120.0).ok());
    }
    jobs += kBatch;
  }
  state.SetItemsProcessed(jobs);
  state.SetLabel(mode == 0   ? "router off"
                 : mode == 1 ? "router on (static)"
                             : "router on (online loop)");
}
BENCHMARK(BM_ServeRoutedThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dfs::serve

// BENCHMARK_MAIN plus the `--json` convenience flag of bench_micro:
// `--json <path>` / `--json=<path>` writes the google-benchmark JSON
// report to <path> (console output stays); bare `--json` switches the
// console reporter itself. `scripts/check.sh --bench-smoke` uses it to
// fold the routed-throughput rows into BENCH_results.json.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc &&
        argv[i + 1][0] != '-') {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back("--benchmark_format=json");
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> argv_rewritten;
  argv_rewritten.reserve(args.size());
  for (std::string& arg : args) argv_rewritten.push_back(arg.data());
  int argc_rewritten = static_cast<int>(argv_rewritten.size());

#ifdef NDEBUG
  benchmark::AddCustomContext("dfs_build_type", "release");
#else
  benchmark::AddCustomContext("dfs_build_type", "debug");
#endif
  benchmark::Initialize(&argc_rewritten, argv_rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(argc_rewritten,
                                             argv_rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
