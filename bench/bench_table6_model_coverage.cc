// Table 6: model-dependent coverage — how each strategy's coverage varies
// with the classification model (LR / NB / DT).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run() {
  PrintHeader("Table 6 — model-dependent coverage", "Table 6");
  auto pool = GetPool(PoolMode::kHpo);
  if (!pool.ok()) return 1;
  const auto& records = pool->records();

  const std::vector<ml::ModelKind> models = {
      ml::ModelKind::kLogisticRegression, ml::ModelKind::kNaiveBayes,
      ml::ModelKind::kDecisionTree};

  std::printf("satisfiable scenarios per model:");
  for (ml::ModelKind model : models) {
    int count = 0;
    for (const auto& record : records) {
      if (record.Satisfiable() && record.model == model) ++count;
    }
    std::printf("  %s: %d", ml::ModelKindToString(model), count);
  }
  std::printf("\n\n");

  TablePrinter table({"Strategy", "LR", "NB", "DT"});
  for (fs::StrategyId id : fs::AllStrategiesWithBaseline()) {
    std::vector<std::string> row = {fs::StrategyIdToString(id)};
    for (ml::ModelKind model : models) {
      row.push_back(FormatDouble(
          core::FilteredCoverage(records, id,
                                 [model](const core::ScenarioRecord& r) {
                                   return r.model == model;
                                 }),
          2));
    }
    table.AddRow(std::move(row));
    if (id == fs::StrategyId::kOriginalFeatureSet) table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
