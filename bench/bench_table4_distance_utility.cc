// Table 4: (a) mean Eq.(1) distance to the constraints on validation and
// test for the *unsuccessful* cases of each strategy (failure analysis,
// Section 6.3), and (b) the mean normalized F1 score on the utility-driven
// benchmark where F1 is maximized subject to the constraints (Eq. 2).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run() {
  PrintHeader(
      "Table 4 — distance to constraints (failures) and utility benchmark",
      "Table 4");
  auto hpo_pool = GetPool(PoolMode::kHpo);
  if (!hpo_pool.ok()) return 1;
  auto utility_pool = GetPool(PoolMode::kUtility);
  if (!utility_pool.ok()) return 1;

  TablePrinter table({"Strategy", "Distance (validation)", "Distance (test)",
                      "Failed cases", "Mean Normalized F1"});
  for (fs::StrategyId id : fs::AllStrategiesWithBaseline()) {
    const core::FailureDistances distances =
        core::FailureDistanceStats(hpo_pool->records(), id);
    const core::MeanStd normalized_f1 =
        core::NormalizedF1Stats(utility_pool->records(), id);
    table.AddRow({fs::StrategyIdToString(id),
                  distances.failed_cases > 0
                      ? FormatMeanStd(distances.validation.mean,
                                      distances.validation.stddev)
                      : "-",
                  distances.failed_cases > 0
                      ? FormatMeanStd(distances.test.mean,
                                      distances.test.stddev)
                      : "-",
                  std::to_string(distances.failed_cases),
                  FormatMeanStd(normalized_f1.mean, normalized_f1.stddev)});
    if (id == fs::StrategyId::kOriginalFeatureSet) table.AddSeparator();
  }
  table.Print(std::cout);

  // Section 6.3 failure analysis: how often do strategies *finish* their
  // search space in failed cases (vs running out of time)?
  std::printf("\nFailed cases that exhausted the search space (not the clock):\n");
  for (fs::StrategyId id :
       {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
        fs::StrategyId::kExhaustive}) {
    int failed = 0, exhausted = 0;
    for (const auto& record : hpo_pool->records()) {
      if (!record.Satisfiable()) continue;
      const auto* outcome = record.OutcomeOf(id);
      if (outcome == nullptr || outcome->success) continue;
      ++failed;
      exhausted += outcome->search_exhausted ? 1 : 0;
    }
    std::printf("  %-14s %d/%d\n", fs::StrategyIdToString(id).c_str(),
                exhausted, failed);
  }
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
