#ifndef DFS_BENCH_BENCH_COMMON_H_
#define DFS_BENCH_BENCH_COMMON_H_

#include <string>

#include "core/experiment.h"

namespace dfs::bench {

/// Which of the three benchmark versions of Section 6.1 a pool realizes.
enum class PoolMode {
  kDefaultParameters,  // 1500-scenario analogue
  kHpo,                // 3318-scenario analogue (the paper's main pool)
  kUtility,            // 957-scenario analogue (Eq. 2 utility mode)
};

/// Canonical configuration for a pool mode, after DFS_* env overrides.
/// Defaults are sized for a single-core run of a few minutes per pool;
/// DFS_SCENARIOS / DFS_TIME_SCALE / DFS_DATA_SCALE scale the study up.
core::ExperimentConfig PoolConfig(PoolMode mode);

/// Runs (or loads from bench_results/) the pool for `mode`. All table
/// harnesses share these caches, so the expensive pools are computed once
/// per configuration.
StatusOr<core::ExperimentPool> GetPool(PoolMode mode);

/// Directory for cached pools and emitted CSVs ("bench_results", overridable
/// via DFS_BENCH_DIR). Created on demand.
std::string BenchResultsDir();

/// Prints the standard reproduction banner for a bench binary.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Shared bench-binary setup, called first thing in every main():
/// handles `--metrics-out <file.json>` (or the DFS_METRICS_OUT env var,
/// flag wins) by registering an atexit hook that dumps the global
/// dfs::obs registry snapshot to that path when the binary exits.
/// Unrelated argv entries are left untouched for the caller to parse.
void InitBench(int argc, char** argv);

}  // namespace dfs::bench

#endif  // DFS_BENCH_BENCH_COMMON_H_
