// Micro-benchmarks (google-benchmark): per-component costs that explain the
// macro results — ranking computation (why MCFS times out on large data),
// model training (why LR affords more evaluations than DT), TPE proposal
// overhead, and two DESIGN.md ablations (evaluation cache, TPE gamma).

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/scenario.h"
#include "data/benchmark_suite.h"
#include "fs/rankings/ranking.h"
#include "fs/registry.h"
#include "fs/search/tpe.h"
#include "ml/classifier.h"

namespace dfs {
namespace {

const data::Dataset& TelcoDataset() {
  static const data::Dataset& dataset = *new data::Dataset([] {
    auto d = data::GenerateBenchmarkDataset(/*Telco=*/5, 3, 0.5);
    DFS_CHECK(d.ok());
    return std::move(d).value();
  }());
  return dataset;
}

// ---- Rankings -------------------------------------------------------

void BM_Ranking(benchmark::State& state) {
  const auto kind = static_cast<fs::RankerKind>(state.range(0));
  const auto ranker = fs::CreateRanker(kind);
  state.SetLabel(ranker->name());
  for (auto _ : state) {
    Rng rng(7);
    auto scores = ranker->Rank(TelcoDataset(), rng);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_Ranking)
    ->DenseRange(0, 6)  // all RankerKind values
    ->Unit(benchmark::kMillisecond);

// ---- Model training -------------------------------------------------

void BM_ModelFit(benchmark::State& state) {
  const auto kind = static_cast<ml::ModelKind>(state.range(0));
  state.SetLabel(ml::ModelKindToString(kind));
  const auto& dataset = TelcoDataset();
  const auto x = dataset.ToMatrix(dataset.AllFeatures());
  for (auto _ : state) {
    auto model = ml::CreateClassifier(kind, ml::Hyperparameters());
    const Status status = model->Fit(x, dataset.labels());
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ModelFit)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// ---- TPE proposal cost ----------------------------------------------

void BM_TpeBinaryPropose(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  fs::TpeBinaryOptimizer optimizer(64, 32, fs::TpeOptions(), 5);
  Rng rng(6);
  for (int i = 0; i < history; ++i) {
    auto mask = optimizer.Propose();
    optimizer.Record(mask, rng.Uniform());
  }
  for (auto _ : state) {
    auto mask = optimizer.Propose();
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_TpeBinaryPropose)->Arg(16)->Arg(128)->Arg(512);

// ---- Ablation: evaluation cache (DESIGN.md) --------------------------

core::MlScenario MicroScenario() {
  Rng rng(11);
  auto scenario = core::MakeScenario(TelcoDataset(),
                                     ml::ModelKind::kLogisticRegression,
                                     constraints::ConstraintSet(), rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

void BM_EngineEvalCache(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  state.SetLabel(cache ? "cache on" : "cache off");
  core::MlScenario scenario = MicroScenario();
  scenario.constraint_set.min_f1 = 0.99;  // never succeed, keep evaluating
  scenario.constraint_set.max_search_seconds = 3600;
  core::EngineOptions options;
  options.enable_eval_cache = cache;

  // SFS revisits many overlapping masks through its floating evaluation
  // pattern; emulate by cycling a fixed set of masks.
  core::DfsEngine engine(scenario, options);
  class WarmupStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "warmup"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext&) override {}
  } warmup;
  engine.Run(warmup);  // arms the deadline/state
  std::vector<fs::FeatureMask> masks;
  for (int f = 0; f < 8; ++f) {
    masks.push_back(fs::IndicesToMask(TelcoDataset().num_features(), {f}));
  }
  int i = 0;
  for (auto _ : state) {
    auto outcome = engine.Evaluate(masks[i++ % masks.size()]);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_EngineEvalCache)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---- Ablation: TPE gamma quantile (DESIGN.md) ------------------------

void BM_TpeGammaConvergence(benchmark::State& state) {
  const double gamma = state.range(0) / 100.0;
  state.SetLabel("gamma=" + std::to_string(gamma));
  // Counter metric: evaluations needed to reach the optimum k on a
  // deterministic objective; reported as a custom counter.
  double total_evals = 0.0;
  int runs = 0;
  for (auto _ : state) {
    fs::TpeOptions options;
    options.gamma = gamma;
    fs::TpeIntegerOptimizer optimizer(1, 100, options,
                                      42 + static_cast<uint64_t>(runs));
    int evals = 0;
    for (; evals < 200; ++evals) {
      const int k = optimizer.Propose();
      if (k == 30) break;
      optimizer.Record(k, std::abs(k - 30.0));
    }
    total_evals += evals;
    ++runs;
    benchmark::DoNotOptimize(evals);
  }
  state.counters["evals_to_opt"] = total_evals / std::max(1, runs);
}
BENCHMARK(BM_TpeGammaConvergence)->Arg(10)->Arg(25)->Arg(50);

}  // namespace
}  // namespace dfs

BENCHMARK_MAIN();
