// Micro-benchmarks (google-benchmark): per-component costs that explain the
// macro results — ranking computation (why MCFS times out on large data),
// model training (why LR affords more evaluations than DT), TPE proposal
// overhead, and two DESIGN.md ablations (evaluation cache, TPE gamma).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/eval_cache.h"
#include "core/scenario.h"
#include "data/benchmark_suite.h"
#include "fs/rankings/ranking.h"
#include "fs/registry.h"
#include "fs/search/tpe.h"
#include "linalg/kernels.h"
#include "ml/classifier.h"

namespace dfs {
namespace {

const data::Dataset& TelcoDataset() {
  static const data::Dataset& dataset = *new data::Dataset([] {
    auto d = data::GenerateBenchmarkDataset(/*Telco=*/5, 3, 0.5);
    DFS_CHECK(d.ok());
    return std::move(d).value();
  }());
  return dataset;
}

// ---- Rankings -------------------------------------------------------

void BM_Ranking(benchmark::State& state) {
  const auto kind = static_cast<fs::RankerKind>(state.range(0));
  const auto ranker = fs::CreateRanker(kind);
  state.SetLabel(ranker->name());
  for (auto _ : state) {
    Rng rng(7);
    auto scores = ranker->Rank(TelcoDataset(), rng);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_Ranking)
    ->DenseRange(0, 6)  // all RankerKind values
    ->Unit(benchmark::kMillisecond);

// ---- Model training -------------------------------------------------

void BM_ModelFit(benchmark::State& state) {
  const auto kind = static_cast<ml::ModelKind>(state.range(0));
  state.SetLabel(ml::ModelKindToString(kind));
  const auto& dataset = TelcoDataset();
  const auto x = dataset.ToMatrix(dataset.AllFeatures());
  for (auto _ : state) {
    auto model = ml::CreateClassifier(kind, ml::Hyperparameters());
    const Status status = model->Fit(x, dataset.labels());
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ModelFit)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// ---- TPE proposal cost ----------------------------------------------

void BM_TpeBinaryPropose(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  fs::TpeBinaryOptimizer optimizer(64, 32, fs::TpeOptions(), 5);
  Rng rng(6);
  for (int i = 0; i < history; ++i) {
    auto mask = optimizer.Propose();
    optimizer.Record(mask, rng.Uniform());
  }
  for (auto _ : state) {
    auto mask = optimizer.Propose();
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_TpeBinaryPropose)->Arg(16)->Arg(128)->Arg(512);

// ---- Ablation: evaluation cache (DESIGN.md) --------------------------

core::MlScenario MicroScenario() {
  Rng rng(11);
  auto scenario = core::MakeScenario(TelcoDataset(),
                                     ml::ModelKind::kLogisticRegression,
                                     constraints::ConstraintSet(), rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

void BM_EngineEvalCache(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  state.SetLabel(cache ? "cache on" : "cache off");
  core::MlScenario scenario = MicroScenario();
  scenario.constraint_set.min_f1 = 0.99;  // never succeed, keep evaluating
  scenario.constraint_set.max_search_seconds = 3600;
  core::EngineOptions options;
  options.enable_eval_cache = cache;

  // SFS revisits many overlapping masks through its floating evaluation
  // pattern; emulate by cycling a fixed set of masks.
  core::DfsEngine engine(scenario, options);
  class WarmupStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "warmup"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext&) override {}
  } warmup;
  engine.Run(warmup);  // arms the deadline/state
  std::vector<fs::FeatureMask> masks;
  for (int f = 0; f < 8; ++f) {
    masks.push_back(fs::IndicesToMask(TelcoDataset().num_features(), {f}));
  }
  int i = 0;
  for (auto _ : state) {
    auto outcome = engine.Evaluate(masks[i++ % masks.size()]);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_EngineEvalCache)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---- Shared eval-cache miss path (membership filter on/off) ----------

fs::FeatureMask CacheBenchMask(uint32_t id, bool resident) {
  // Unique mask per id: the id's bits select among features 1..32;
  // feature 0 tags the resident population so probe masks are disjoint
  // from it (every Lookup below is a genuine miss).
  fs::FeatureMask mask(64, 0);
  if (resident) mask[0] = 1;
  for (int b = 0; b < 32; ++b) {
    if ((id >> b) & 1u) mask[b + 1] = 1;
  }
  return mask;
}

// Cost of one negative Lookup against a populated cache — the dominant
// shared-cache operation under a served workload (most masks are new).
// With the filter on, the miss is answered by a few relaxed atomic loads;
// off, it pays the shard mutex + map probe (the ISSUE-7 tentpole gate:
// filter-on must beat filter-off in bench_diff.py).
void BM_EvalCacheMiss(benchmark::State& state) {
  const bool filter = state.range(0) != 0;
  state.SetLabel(filter ? "filter on" : "filter off");
  core::EvalCacheOptions options;
  options.enable_filter = filter;
  core::ShardedEvalCache cache(options);
  fs::EvalOutcome outcome;
  outcome.evaluated = true;
  for (uint32_t id = 0; id < 4096; ++id) {
    cache.InsertPublished(CacheBenchMask(id, /*resident=*/true), outcome);
  }
  constexpr uint32_t kProbes = 1024;
  std::vector<fs::FeatureMask> probes;
  probes.reserve(kProbes);
  for (uint32_t id = 0; id < kProbes; ++id) {
    probes.push_back(CacheBenchMask(id, /*resident=*/false));
  }
  uint32_t i = 0;
  fs::EvalOutcome hit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(probes[i++ % kProbes], &hit));
  }
}
BENCHMARK(BM_EvalCacheMiss)->Arg(0)->Arg(1);

// Warm restart: rebuilding a cache from its spilled blob (docs/CACHE.md),
// the work dfs_serverd --eval-cache-state does at boot. Serialization is
// outside the loop — the restart path is what the daemon pays.
void BM_EvalCacheWarmRestart(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  core::ShardedEvalCache source;
  fs::EvalOutcome outcome;
  outcome.evaluated = true;
  outcome.validation.f1 = 0.5;
  for (int id = 0; id < entries; ++id) {
    source.InsertPublished(
        CacheBenchMask(static_cast<uint32_t>(id), /*resident=*/true),
        outcome);
  }
  const std::string blob = source.Serialize();
  state.SetLabel(std::to_string(blob.size() / 1024) + " KiB blob");
  for (auto _ : state) {
    core::ShardedEvalCache restored;
    const Status status = restored.RestoreState(blob);
    DFS_CHECK(status.ok()) << status.ToString();
    benchmark::DoNotOptimize(restored.size());
  }
}
BENCHMARK(BM_EvalCacheWarmRestart)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

// ---- One uncached wrapper evaluation --------------------------------

// Cost of a single wrapper evaluation (train + measure on validation),
// cache disabled, masks rotating so every call is fresh work. This is the
// unit the whole benchmark's wall-clock is made of; the span/scratch fast
// path is judged by this number (scripts/bench_diff.py against the
// committed baseline).
void BM_EvaluateUncached(benchmark::State& state) {
  core::MlScenario scenario = MicroScenario();
  scenario.constraint_set.min_f1 = 0.99;  // never succeed, keep evaluating
  scenario.constraint_set.max_search_seconds = 3600;
  core::EngineOptions options;
  options.enable_eval_cache = false;
  options.num_threads = 1;

  core::DfsEngine engine(scenario, options);
  class WarmupStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "warmup"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext&) override {}
  } warmup;
  engine.Run(warmup);  // arms the deadline/state

  const int n = TelcoDataset().num_features();
  std::vector<fs::FeatureMask> masks;
  for (int f = 0; f < n; ++f) {
    masks.push_back(fs::IndicesToMask(n, {f, (f + 1) % n, (f + 3) % n}));
  }
  int i = 0;
  for (auto _ : state) {
    auto outcome = engine.Evaluate(masks[i++ % masks.size()]);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_EvaluateUncached)->Unit(benchmark::kMicrosecond);

// ---- Masked-column gather (Dataset -> row-major Matrix) --------------

// The per-evaluation transpose copy that feeds every train/measure. Arg 0
// benchmarks the allocating ToMatrix (the pre-span path kept for
// comparison); arg 1 the in-place GatherInto against a warm scratch
// matrix, which allocates nothing after the first call.
void BM_GatherInto(benchmark::State& state) {
  const bool in_place = state.range(0) != 0;
  state.SetLabel(in_place ? "GatherInto (warm scratch)" : "ToMatrix (alloc)");
  const auto& dataset = TelcoDataset();
  const int n = dataset.num_features();
  std::vector<std::vector<int>> feature_sets;
  for (int f = 0; f < n; ++f) {
    feature_sets.push_back({f, (f + 1) % n, (f + 3) % n, (f + 5) % n});
  }
  linalg::Matrix scratch;
  int i = 0;
  for (auto _ : state) {
    const auto& features = feature_sets[i++ % feature_sets.size()];
    if (in_place) {
      dataset.GatherInto(features, &scratch);
      benchmark::DoNotOptimize(scratch.MutableData());
    } else {
      linalg::Matrix x = dataset.ToMatrix(features);
      benchmark::DoNotOptimize(x);
    }
  }
}
BENCHMARK(BM_GatherInto)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---- Batch prediction through the span kernel ------------------------

// Full-split batch prediction, the measurement half of an evaluation.
// Arg 0 is the allocating PredictBatch(x) convenience form; arg 1 the
// output-parameter form over a warm buffer (the engine's steady state).
void BM_PredictBatchSpan(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  state.SetLabel(warm ? "out-param (warm)" : "allocating");
  const auto& dataset = TelcoDataset();
  const auto x = dataset.ToMatrix(dataset.AllFeatures());
  auto model = ml::CreateClassifier(ml::ModelKind::kLogisticRegression,
                                    ml::Hyperparameters());
  DFS_CHECK(model->Fit(x, dataset.labels()).ok());
  std::vector<int> predictions;
  for (auto _ : state) {
    if (warm) {
      model->PredictBatch(x, &predictions);
      benchmark::DoNotOptimize(predictions.data());
    } else {
      auto fresh = model->PredictBatch(x);
      benchmark::DoNotOptimize(fresh);
    }
  }
}
BENCHMARK(BM_PredictBatchSpan)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---- Parallel candidate-sweep evaluation (EvaluateBatch) -------------

// Throughput of a candidate sweep (the inner loop of SFS/RFE/exhaustive)
// through EvaluateBatch at different thread budgets. Arg is the engine's
// num_threads; 0 means "process budget" (DFS_THREADS / hardware). The
// cache is disabled so every mask costs a real train+measure, and the
// masks rotate so each batch is fresh work.
void BM_EngineEvaluateBatch(benchmark::State& state) {
  const int num_threads = static_cast<int>(state.range(0));
  state.SetLabel(num_threads == 0 ? "threads=budget"
                                  : "threads=" + std::to_string(num_threads));
  core::MlScenario scenario = MicroScenario();
  scenario.constraint_set.min_f1 = 0.99;  // never succeed, keep evaluating
  scenario.constraint_set.max_search_seconds = 3600;
  core::EngineOptions options;
  options.enable_eval_cache = false;
  options.num_threads = num_threads;

  core::DfsEngine engine(scenario, options);
  class WarmupStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "warmup"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext&) override {}
  } warmup;
  engine.Run(warmup);  // arms the deadline/state

  const int n = TelcoDataset().num_features();
  std::vector<fs::FeatureMask> masks;
  for (int f = 0; f < n; ++f) {
    masks.push_back(fs::IndicesToMask(n, {f}));
    masks.push_back(fs::IndicesToMask(n, {f, (f + 1) % n}));
  }
  for (auto _ : state) {
    auto outcomes = engine.EvaluateBatch(masks);
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(masks.size()));
}
BENCHMARK(BM_EngineEvaluateBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Blocked kernels at S/L/XL shapes (DESIGN.md §2i) ----------------

// XL-tier dataset for kernel/gather benches: Traffic Violations XL at a
// reduced row_scale — full 1261-column encoded width (the property the
// kernels are judged on), rows trimmed so bench-smoke stays in budget.
const data::Dataset& XlDataset() {
  static const data::Dataset& dataset = *new data::Dataset([] {
    auto d = data::GenerateXlBenchmarkDataset(/*Traffic XL=*/0, 3, 0.08);
    DFS_CHECK(d.ok());
    return std::move(d).value();
  }());
  return dataset;
}

std::vector<double> BenchVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

// The GEMV-style decision-function kernel: one batched margin pass, the
// inner loop of every LR/SVM PredictBatch. Shapes: S (a narrow mask on a
// small split), L (a wide mask on a large split), XL (paper-scale width).
void BM_MatVec(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  const auto x = BenchVector(static_cast<size_t>(rows) * cols, 3);
  const auto w = BenchVector(cols, 4);
  std::vector<double> out(rows);
  for (auto _ : state) {
    linalg::kernels::MatVec(x.data(), rows, cols, w.data(), 0.1, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(rows) * cols *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_MatVec)
    ->Args({512, 32})      // S
    ->Args({2048, 256})    // L
    ->Args({12000, 1261})  // XL (Traffic XL width at bench row count)
    ->Unit(benchmark::kMicrosecond);

// The kNN / robustness-attack distance kernel at S/L/XL vector widths.
void BM_SquaredDistanceSpan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = BenchVector(n, 5);
  const auto b = BenchVector(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::kernels::SquaredDistance(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_SquaredDistanceSpan)->Arg(32)->Arg(256)->Arg(1261);

// Chunked gather on the XL dataset: Arg 0 is the gathered mask width,
// Arg 1 selects the tiling (0 = auto 1 MiB window, 1 = monolithic single
// block). Both produce identical bytes (kernels_test proves it); the
// bench shows what the bounded scratch window costs or saves at scale.
void BM_GatherIntoChunked(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool monolithic = state.range(1) != 0;
  state.SetLabel(monolithic ? "monolithic" : "auto window");
  const auto& dataset = XlDataset();
  const int n = dataset.num_features();
  DFS_CHECK(k <= n);
  std::vector<std::vector<int>> feature_sets;
  for (int s = 0; s < 8; ++s) {
    std::vector<int> features(k);
    for (int j = 0; j < k; ++j) features[j] = (s * 97 + j) % n;
    feature_sets.push_back(std::move(features));
  }
  linalg::Matrix scratch;
  const int block = monolithic ? dataset.num_rows() : 0;
  int i = 0;
  for (auto _ : state) {
    dataset.GatherInto(feature_sets[i++ % feature_sets.size()], &scratch,
                       block);
    benchmark::DoNotOptimize(scratch.MutableData());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.num_rows()) * k *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_GatherIntoChunked)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

// Batched LR prediction at XL width through the MatVec kernel — the
// measurement half of an XL evaluation (name matches the PredictBatchSpan
// bench-smoke filter).
void BM_PredictBatchSpanXl(benchmark::State& state) {
  const auto& dataset = XlDataset();
  const auto x = dataset.ToMatrix(dataset.AllFeatures());
  auto model = ml::CreateClassifier(ml::ModelKind::kLogisticRegression,
                                    ml::Hyperparameters());
  DFS_CHECK(model->Fit(x, dataset.labels()).ok());
  std::vector<int> predictions;
  for (auto _ : state) {
    model->PredictBatch(x, &predictions);
    benchmark::DoNotOptimize(predictions.data());
  }
  state.SetItemsProcessed(state.iterations() * dataset.num_rows());
}
BENCHMARK(BM_PredictBatchSpanXl)->Unit(benchmark::kMillisecond);

// ---- Ablation: TPE gamma quantile (DESIGN.md) ------------------------

void BM_TpeGammaConvergence(benchmark::State& state) {
  const double gamma = state.range(0) / 100.0;
  state.SetLabel("gamma=" + std::to_string(gamma));
  // Counter metric: evaluations needed to reach the optimum k on a
  // deterministic objective; reported as a custom counter.
  double total_evals = 0.0;
  int runs = 0;
  for (auto _ : state) {
    fs::TpeOptions options;
    options.gamma = gamma;
    fs::TpeIntegerOptimizer optimizer(1, 100, options,
                                      42 + static_cast<uint64_t>(runs));
    int evals = 0;
    for (; evals < 200; ++evals) {
      const int k = optimizer.Propose();
      if (k == 30) break;
      optimizer.Record(k, std::abs(k - 30.0));
    }
    total_evals += evals;
    ++runs;
    benchmark::DoNotOptimize(evals);
  }
  state.counters["evals_to_opt"] = total_evals / std::max(1, runs);
}
BENCHMARK(BM_TpeGammaConvergence)->Arg(10)->Arg(25)->Arg(50);

}  // namespace
}  // namespace dfs

// BENCHMARK_MAIN plus a `--json` convenience flag: `--json <path>` (or
// `--json=<path>`) writes the standard google-benchmark JSON report to
// <path> while keeping the console output; a bare `--json` switches the
// console reporter itself to JSON. Used by `scripts/check.sh
// --bench-smoke` to snapshot serial-vs-parallel evaluation throughput.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc &&
        argv[i + 1][0] != '-') {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back("--benchmark_format=json");
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> argv_rewritten;
  argv_rewritten.reserve(args.size());
  for (std::string& arg : args) argv_rewritten.push_back(arg.data());
  int argc_rewritten = static_cast<int>(argv_rewritten.size());

  // google-benchmark's own "library_build_type" context describes the
  // system libbenchmark (Debian ships it without NDEBUG, so it always says
  // "debug"); dfs_build_type records how *this* code was compiled, and
  // scripts/check.sh --bench-smoke refuses to snapshot unless it says
  // "release".
#ifdef NDEBUG
  benchmark::AddCustomContext("dfs_build_type", "release");
#else
  benchmark::AddCustomContext("dfs_build_type", "debug");
#endif
  benchmark::Initialize(&argc_rewritten, argv_rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(argc_rewritten,
                                             argv_rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
