// Figure 5: fastest strategy for four constraint pairs on the Adult
// dataset. For each cell of a (min F1) x (second constraint) grid, all
// strategies race and the fastest successful one is printed ("." = no
// strategy satisfied the cell).

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/engine.h"
#include "data/benchmark_suite.h"
#include "util/string_util.h"

namespace dfs::bench {
namespace {

// Short labels for grid cells.
const std::map<std::string, std::string>& Abbreviations() {
  static const auto& map = *new std::map<std::string, std::string>{
      {"SBS(NR)", "SBS"},      {"SBFS(NR)", "SBFS"},
      {"RFE(Model)", "RFE"},   {"TPE(MCFS)", "MCFS"},
      {"TPE(ReliefF)", "RelF"}, {"TPE(Variance)", "Var"},
      {"TPE(NR)", "TPEn"},     {"NSGA-II(NR)", "NSGA"},
      {"TPE(MIM)", "MIM"},     {"SA(NR)", "SA"},
      {"ES(NR)", "ES"},        {"TPE(Fisher)", "Fish"},
      {"TPE(Chi2)", "Chi2"},   {"SFS(NR)", "SFS"},
      {"SFFS(NR)", "SFFS"},    {"TPE(FCBF)", "FCBF"},
  };
  return map;
}

enum class SecondAxis { kEqualOpportunity, kPrivacy, kFeatureSize, kSafety };

const char* AxisName(SecondAxis axis) {
  switch (axis) {
    case SecondAxis::kEqualOpportunity:
      return "min EO";
    case SecondAxis::kPrivacy:
      return "privacy epsilon";
    case SecondAxis::kFeatureSize:
      return "max feature fraction";
    case SecondAxis::kSafety:
      return "min safety";
  }
  return "?";
}

std::vector<double> AxisValues(SecondAxis axis) {
  switch (axis) {
    case SecondAxis::kEqualOpportunity:
      return {0.75, 0.85, 0.95};
    case SecondAxis::kPrivacy:
      return {5.0, 1.0, 0.2};  // decreasing epsilon = harder
    case SecondAxis::kFeatureSize:
      return {0.5, 0.2, 0.05};
    case SecondAxis::kSafety:
      return {0.75, 0.85, 0.95};
  }
  return {};
}

int Run() {
  PrintHeader("Figure 5 — fastest strategy per constraint pair on Adult",
              "Figure 5");
  const core::ExperimentConfig config = PoolConfig(PoolMode::kHpo);
  auto dataset_or =
      data::GenerateBenchmarkDataset(/*Adult=*/2, config.seed,
                                     config.row_scale);
  if (!dataset_or.ok()) return 1;
  std::printf("Adult stand-in: %d rows, %d features\n\n",
              dataset_or->num_rows(), dataset_or->num_features());

  const std::vector<double> f1_grid = {0.55, 0.65, 0.75};
  const double budget = 0.25 * config.time_scale;

  for (SecondAxis axis :
       {SecondAxis::kEqualOpportunity, SecondAxis::kPrivacy,
        SecondAxis::kFeatureSize, SecondAxis::kSafety}) {
    std::printf("--- accuracy x %s (cell budget %.2fs) ---\n",
                AxisName(axis), budget);
    std::printf("%-22s", "");
    for (double f1 : f1_grid) std::printf("F1>=%-6.2f", f1);
    std::printf("\n");

    for (double value : AxisValues(axis)) {
      std::printf("%s=%-8.2f  ", AxisName(axis), value);
      for (double f1 : f1_grid) {
        constraints::ConstraintSet set;
        set.min_f1 = f1;
        set.max_search_seconds = budget;
        switch (axis) {
          case SecondAxis::kEqualOpportunity:
            set.min_equal_opportunity = value;
            break;
          case SecondAxis::kPrivacy:
            set.privacy_epsilon = value;
            break;
          case SecondAxis::kFeatureSize:
            set.max_feature_fraction = value;
            break;
          case SecondAxis::kSafety:
            set.min_safety = value;
            break;
        }
        Rng split_rng(config.seed);
        auto scenario_or = core::MakeScenario(
            *dataset_or, ml::ModelKind::kLogisticRegression, set, split_rng);
        if (!scenario_or.ok()) {
          std::printf("%-10s", "?");
          continue;
        }
        core::EngineOptions options;
        options.use_hpo = false;  // keep cells fast; shapes are unchanged
        options.robustness = config.robustness;
        options.seed = config.seed;
        core::DfsEngine engine(*scenario_or, options);

        std::string winner = ".";
        double winner_seconds = 1e18;
        for (fs::StrategyId id : fs::AllStrategies()) {
          auto strategy =
              fs::CreateStrategy(id, config.seed + static_cast<int>(id));
          const core::RunResult result = engine.Run(*strategy);
          if (result.success && result.search_seconds < winner_seconds) {
            winner_seconds = result.search_seconds;
            winner = Abbreviations().at(fs::StrategyIdToString(id));
          }
        }
        std::printf("%-10s", winner.c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: '.' = unsatisfiable cell. Toward the harder corners the\n"
      "winners shift from lightweight rankings to search-based strategies\n"
      "(EO) or to size-reducing forward/ranking strategies (privacy,\n"
      "size, safety) — Section 6.4.\n");
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
