// Table 5: coverage per strategy conditioned on which optional constraint
// was part of the scenario (Min EO / Max Feature Set Size / Min Safety /
// Min Privacy). Min accuracy and max search time are always present.

#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run() {
  PrintHeader("Table 5 — coverage if a constraint was specified", "Table 5");
  auto pool = GetPool(PoolMode::kHpo);
  if (!pool.ok()) return 1;
  const auto& records = pool->records();

  using Filter = std::function<bool(const core::ScenarioRecord&)>;
  const std::vector<std::pair<std::string, Filter>> conditions = {
      {"Min EO",
       [](const core::ScenarioRecord& r) {
         return r.constraint_set.min_equal_opportunity.has_value();
       }},
      {"Max Feature Set Size",
       [](const core::ScenarioRecord& r) {
         return r.constraint_set.max_feature_fraction.has_value();
       }},
      {"Min Safety",
       [](const core::ScenarioRecord& r) {
         return r.constraint_set.min_safety.has_value();
       }},
      {"Min Privacy",
       [](const core::ScenarioRecord& r) {
         return r.constraint_set.privacy_epsilon.has_value();
       }},
  };

  // Scenario counts per condition (satisfiable only).
  std::printf("satisfiable scenarios per condition:");
  for (const auto& [name, filter] : conditions) {
    int count = 0;
    for (const auto& record : records) {
      if (record.Satisfiable() && filter(record)) ++count;
    }
    std::printf("  %s: %d", name.c_str(), count);
  }
  std::printf("\n\n");

  std::vector<std::string> header = {"Strategy"};
  for (const auto& [name, unused] : conditions) header.push_back(name);
  TablePrinter table(header);
  for (fs::StrategyId id : fs::AllStrategiesWithBaseline()) {
    std::vector<std::string> row = {fs::StrategyIdToString(id)};
    for (const auto& [unused, filter] : conditions) {
      row.push_back(
          FormatDouble(core::FilteredCoverage(records, id, filter), 2));
    }
    table.AddRow(std::move(row));
    if (id == fs::StrategyId::kOriginalFeatureSet) table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  return dfs::bench::Run();
}
