// Table 9: meta-learning accuracy across strategies — precision, recall and
// F1 of the per-strategy success predictors inside the DFS Optimizer under
// leave-one-dataset-out cross-validation. `--landmark-sweep` additionally
// ablates the landmarking sample size (DESIGN.md ablation).

#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "core/optimizer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace dfs::bench {
namespace {

int Run(bool landmark_sweep) {
  PrintHeader("Table 9 — meta-learning accuracy across strategies",
              "Table 9");
  auto pool = GetPool(PoolMode::kHpo);
  if (!pool.ok()) return 1;

  core::OptimizerOptions options;
  auto lodo = core::EvaluateOptimizerLodo(*pool, options);
  if (!lodo.ok()) {
    std::fprintf(stderr, "%s\n", lodo.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"Strategy", "Precision", "Recall", "F1 score"});
  for (fs::StrategyId id : fs::AllStrategies()) {
    auto it = lodo->per_strategy.find(id);
    if (it == lodo->per_strategy.end()) continue;
    const auto& scores = it->second;
    table.AddRow({fs::StrategyIdToString(id),
                  FormatMeanStd(scores.precision_mean,
                                scores.precision_stddev),
                  FormatMeanStd(scores.recall_mean, scores.recall_stddev),
                  FormatMeanStd(scores.f1_mean, scores.f1_stddev)});
  }
  table.Print(std::cout);
  std::printf("\nOptimizer (argmax over these models): coverage %s, fastest %s\n",
              FormatMeanStd(lodo->coverage_mean, lodo->coverage_stddev).c_str(),
              FormatMeanStd(lodo->fastest_mean, lodo->fastest_stddev).c_str());

  if (landmark_sweep) {
    std::printf("\nAblation — landmarking sample size vs optimizer coverage:\n");
    for (int sample_size : {25, 50, 100, 200}) {
      core::OptimizerOptions swept = options;
      swept.landmark_sample_size = sample_size;
      auto swept_lodo = core::EvaluateOptimizerLodo(*pool, swept);
      if (!swept_lodo.ok()) continue;
      std::printf("  landmark=%-4d coverage %s\n", sample_size,
                  FormatMeanStd(swept_lodo->coverage_mean,
                                swept_lodo->coverage_stddev)
                      .c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace dfs::bench

int main(int argc, char** argv) {
  dfs::bench::InitBench(argc, argv);
  bool landmark_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--landmark-sweep") == 0) landmark_sweep = true;
  }
  return dfs::bench::Run(landmark_sweep);
}
