#ifndef DFS_CONSTRAINTS_CONSTRAINT_H_
#define DFS_CONSTRAINTS_CONSTRAINT_H_

#include <string>

namespace dfs::constraints {

/// The ML-application constraint types of Section 3. Max-Training-Time and
/// Max-Inference-Time are part of the taxonomy (Table 1) but, as in the
/// paper, are evaluated through the simpler Max-Feature-Set-Size proxy.
enum class ConstraintKind {
  kMaxSearchTime,
  kMaxFeatureSetSize,
  kMaxTrainingTime,
  kMaxInferenceTime,
  kMinAccuracy,
  kMinEqualOpportunity,
  kMinPrivacy,
  kMinSafety,
};

const char* ConstraintKindToString(ConstraintKind kind);

/// Correlation of a constraint's satisfiability with the number of selected
/// features (the "#Feature Dependence" column of Table 1).
enum class FeatureSizeCorrelation {
  kNone,      ///< independent of the selected feature count
  kNegative,  ///< easier with fewer features (size, EO, privacy, safety)
  kPositive,  ///< easier with more features (accuracy)
};

/// One row of the constraint taxonomy (Table 1): whether checking the
/// constraint requires a trained-model evaluation, how it correlates with
/// feature-set size, and which inputs its metric needs.
struct ConstraintTaxonomy {
  ConstraintKind kind;
  bool evaluation_dependent = false;
  FeatureSizeCorrelation feature_dependence = FeatureSizeCorrelation::kNone;
  bool needs_features = false;
  bool needs_target = false;
  bool needs_model = false;
  bool needs_predictions = false;
};

/// Taxonomy row for `kind`, exactly as printed in Table 1.
ConstraintTaxonomy TaxonomyOf(ConstraintKind kind);

}  // namespace dfs::constraints

#endif  // DFS_CONSTRAINTS_CONSTRAINT_H_
