#include "constraints/constraint_set.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace dfs::constraints {

std::vector<ConstraintKind> ConstraintSet::ActiveKinds() const {
  std::vector<ConstraintKind> kinds = {ConstraintKind::kMinAccuracy,
                                       ConstraintKind::kMaxSearchTime};
  if (max_feature_fraction.has_value()) {
    kinds.push_back(ConstraintKind::kMaxFeatureSetSize);
  }
  if (min_equal_opportunity.has_value()) {
    kinds.push_back(ConstraintKind::kMinEqualOpportunity);
  }
  if (min_safety.has_value()) kinds.push_back(ConstraintKind::kMinSafety);
  if (privacy_epsilon.has_value()) kinds.push_back(ConstraintKind::kMinPrivacy);
  return kinds;
}

int ConstraintSet::NumEvaluationDependent() const {
  int count = 0;
  for (ConstraintKind kind : ActiveKinds()) {
    if (TaxonomyOf(kind).evaluation_dependent) ++count;
  }
  return count;
}

int ConstraintSet::MaxFeatureCount(int total_features) const {
  if (!max_feature_fraction.has_value()) return total_features;
  const int count = static_cast<int>(
      std::floor(*max_feature_fraction * total_features));
  return std::clamp(count, 1, total_features);
}

bool ConstraintSet::Satisfied(const MetricValues& values) const {
  if (values.f1 < min_f1) return false;
  if (max_feature_fraction.has_value()) {
    if (values.total_features > 0 && values.selected_features > 0) {
      // Count-based check: MaxFeatureCount guarantees >= 1 admissible
      // feature even for tiny fractions.
      if (values.selected_features > MaxFeatureCount(values.total_features)) {
        return false;
      }
    } else if (values.feature_fraction > *max_feature_fraction + 1e-9) {
      return false;
    }
  }
  if (min_equal_opportunity.has_value() &&
      values.equal_opportunity < *min_equal_opportunity) {
    return false;
  }
  if (min_safety.has_value() && values.safety < *min_safety) return false;
  return true;
}

double ConstraintSet::Distance(const MetricValues& values) const {
  auto shortfall = [](double achieved, double threshold) {
    const double gap = threshold - achieved;
    return gap > 0.0 ? gap * gap : 0.0;
  };
  double distance = shortfall(values.f1, min_f1);
  if (max_feature_fraction.has_value()) {
    bool violated;
    if (values.total_features > 0 && values.selected_features > 0) {
      violated =
          values.selected_features > MaxFeatureCount(values.total_features);
    } else {
      violated = values.feature_fraction > *max_feature_fraction + 1e-9;
    }
    if (violated) {
      const double gap = values.feature_fraction - *max_feature_fraction;
      distance += gap * gap;
    }
  }
  if (min_equal_opportunity.has_value()) {
    distance += shortfall(values.equal_opportunity, *min_equal_opportunity);
  }
  if (min_safety.has_value()) {
    distance += shortfall(values.safety, *min_safety);
  }
  return distance;
}

double ConstraintSet::Objective(const MetricValues& values,
                                bool maximize_f1_utility) const {
  const double distance = Distance(values);
  if (distance > 0.0 || !maximize_f1_utility) return distance;
  return -values.f1;
}

std::vector<double> ConstraintSet::PerConstraintShortfalls(
    const MetricValues& values) const {
  std::vector<double> shortfalls;
  shortfalls.push_back(std::max(0.0, min_f1 - values.f1));
  if (max_feature_fraction.has_value()) {
    bool violated;
    if (values.total_features > 0 && values.selected_features > 0) {
      violated =
          values.selected_features > MaxFeatureCount(values.total_features);
    } else {
      violated = values.feature_fraction > *max_feature_fraction + 1e-9;
    }
    shortfalls.push_back(
        violated ? values.feature_fraction - *max_feature_fraction : 0.0);
  }
  if (min_equal_opportunity.has_value()) {
    shortfalls.push_back(
        std::max(0.0, *min_equal_opportunity - values.equal_opportunity));
  }
  if (min_safety.has_value()) {
    shortfalls.push_back(std::max(0.0, *min_safety - values.safety));
  }
  return shortfalls;
}

std::string ConstraintSet::ToString() const {
  std::vector<std::string> parts;
  parts.push_back("F1>=" + FormatDouble(min_f1, 2));
  if (min_equal_opportunity.has_value()) {
    parts.push_back("EO>=" + FormatDouble(*min_equal_opportunity, 2));
  }
  if (min_safety.has_value()) {
    parts.push_back("safety>=" + FormatDouble(*min_safety, 2));
  }
  if (max_feature_fraction.has_value()) {
    parts.push_back("features<=" + FormatDouble(*max_feature_fraction, 2));
  }
  if (privacy_epsilon.has_value()) {
    parts.push_back("eps=" + FormatDouble(*privacy_epsilon, 2));
  }
  parts.push_back("time<=" + FormatDouble(max_search_seconds, 2) + "s");
  return Join(parts, ", ");
}

ConstraintSetBuilder& ConstraintSetBuilder::MinF1(double threshold) {
  set_.min_f1 = threshold;
  return *this;
}
ConstraintSetBuilder& ConstraintSetBuilder::MaxSearchSeconds(double seconds) {
  set_.max_search_seconds = seconds;
  return *this;
}
ConstraintSetBuilder& ConstraintSetBuilder::MaxFeatureFraction(
    double fraction) {
  set_.max_feature_fraction = fraction;
  return *this;
}
ConstraintSetBuilder& ConstraintSetBuilder::MinEqualOpportunity(
    double threshold) {
  set_.min_equal_opportunity = threshold;
  return *this;
}
ConstraintSetBuilder& ConstraintSetBuilder::MinSafety(double threshold) {
  set_.min_safety = threshold;
  return *this;
}
ConstraintSetBuilder& ConstraintSetBuilder::PrivacyEpsilon(double epsilon) {
  set_.privacy_epsilon = epsilon;
  return *this;
}

StatusOr<ConstraintSet> ConstraintSetBuilder::Build() const {
  auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in_unit(set_.min_f1)) {
    return InvalidArgumentError("min F1 must be in [0, 1]");
  }
  if (set_.max_search_seconds <= 0.0) {
    return InvalidArgumentError("max search time must be positive");
  }
  if (set_.max_feature_fraction.has_value() &&
      (*set_.max_feature_fraction <= 0.0 ||
       *set_.max_feature_fraction > 1.0)) {
    return InvalidArgumentError("max feature fraction must be in (0, 1]");
  }
  if (set_.min_equal_opportunity.has_value() &&
      !in_unit(*set_.min_equal_opportunity)) {
    return InvalidArgumentError("min equal opportunity must be in [0, 1]");
  }
  if (set_.min_safety.has_value() && !in_unit(*set_.min_safety)) {
    return InvalidArgumentError("min safety must be in [0, 1]");
  }
  if (set_.privacy_epsilon.has_value() && *set_.privacy_epsilon <= 0.0) {
    return InvalidArgumentError("privacy epsilon must be positive");
  }
  return set_;
}

}  // namespace dfs::constraints
