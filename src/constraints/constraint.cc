#include "constraints/constraint.h"

namespace dfs::constraints {

const char* ConstraintKindToString(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kMaxSearchTime:
      return "Max Search Time";
    case ConstraintKind::kMaxFeatureSetSize:
      return "Max Feature Set Size";
    case ConstraintKind::kMaxTrainingTime:
      return "Max Training Time";
    case ConstraintKind::kMaxInferenceTime:
      return "Max Inference Time";
    case ConstraintKind::kMinAccuracy:
      return "Min Accuracy";
    case ConstraintKind::kMinEqualOpportunity:
      return "Min Equal Opportunity";
    case ConstraintKind::kMinPrivacy:
      return "Min Privacy";
    case ConstraintKind::kMinSafety:
      return "Min Safety";
  }
  return "?";
}

ConstraintTaxonomy TaxonomyOf(ConstraintKind kind) {
  ConstraintTaxonomy t;
  t.kind = kind;
  switch (kind) {
    case ConstraintKind::kMaxSearchTime:
      break;  // evaluation-independent, no inputs
    case ConstraintKind::kMaxFeatureSetSize:
      t.needs_features = true;
      t.feature_dependence = FeatureSizeCorrelation::kNegative;
      break;
    case ConstraintKind::kMaxTrainingTime:
    case ConstraintKind::kMaxInferenceTime:
      t.evaluation_dependent = true;
      t.feature_dependence = FeatureSizeCorrelation::kNegative;
      break;
    case ConstraintKind::kMinAccuracy:
      t.evaluation_dependent = true;
      t.feature_dependence = FeatureSizeCorrelation::kPositive;
      t.needs_target = true;
      t.needs_predictions = true;
      break;
    case ConstraintKind::kMinEqualOpportunity:
      t.evaluation_dependent = true;
      t.feature_dependence = FeatureSizeCorrelation::kNegative;
      t.needs_features = true;
      t.needs_target = true;
      t.needs_predictions = true;
      break;
    case ConstraintKind::kMinPrivacy:
      t.feature_dependence = FeatureSizeCorrelation::kNegative;
      break;
    case ConstraintKind::kMinSafety:
      t.evaluation_dependent = true;
      t.feature_dependence = FeatureSizeCorrelation::kNegative;
      t.needs_features = true;
      t.needs_target = true;
      t.needs_model = true;
      t.needs_predictions = true;
      break;
  }
  return t;
}

}  // namespace dfs::constraints
