#ifndef DFS_CONSTRAINTS_CONSTRAINT_SET_H_
#define DFS_CONSTRAINTS_CONSTRAINT_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "util/statusor.h"

namespace dfs::constraints {

/// Metric values measured for one feature subset on one data split; the
/// inputs to constraint checking, Eq. (1) and Eq. (2).
struct MetricValues {
  double f1 = 0.0;
  double equal_opportunity = 1.0;
  double safety = 1.0;
  double feature_fraction = 1.0;  ///< |F'| / |F|
  /// When both are set (> 0), the size constraint is checked on counts via
  /// MaxFeatureCount, which guarantees at least one feature is admissible
  /// even for tiny fractions; otherwise the raw fraction is compared.
  int selected_features = 0;
  int total_features = 0;
};

/// A declaratively specified constraint set (the C of an ML scenario,
/// Section 2.1). Min accuracy and max search time are mandatory; the rest
/// are optional, mirroring the benchmark's constraint-space template
/// (Listing 1). Construct via ConstraintSetBuilder.
struct ConstraintSet {
  double min_f1 = 0.5;
  double max_search_seconds = 3600.0;
  std::optional<double> max_feature_fraction;
  std::optional<double> min_equal_opportunity;
  std::optional<double> min_safety;
  /// ε for differential privacy. Smaller = stronger privacy. When set, the
  /// engine trains the DP variant of the model, so the constraint is
  /// satisfied by construction and does not enter the distance (Section 4.3).
  std::optional<double> privacy_epsilon;

  /// Kinds of all active constraints (mandatory + present optionals).
  std::vector<ConstraintKind> ActiveKinds() const;

  /// Number of evaluation-dependent active constraints.
  int NumEvaluationDependent() const;

  /// Largest feature count allowed by max_feature_fraction for a dataset
  /// with `total_features` columns (at least 1); `total_features` when the
  /// constraint is absent. Evaluation-independent pruning per Section 3.
  int MaxFeatureCount(int total_features) const;

  /// True iff `values` violates no constraint (privacy and search time are
  /// handled by the engine, not here).
  bool Satisfied(const MetricValues& values) const;

  /// Eq. (1): sum over violated constraints of the squared distance between
  /// the achieved score and the threshold. 0 iff Satisfied.
  double Distance(const MetricValues& values) const;

  /// Eq. (2): Distance while > 0; once all constraints hold, the negative
  /// utility (here: -F1) so that continued minimization maximizes utility.
  double Objective(const MetricValues& values, bool maximize_f1_utility) const;

  /// One non-negative shortfall per active evaluation-relevant constraint
  /// (accuracy, then optional size/EO/safety in that order) — the objective
  /// vector for multi-objective strategies like NSGA-II, which treat "each
  /// constraint as one objective" (Section 4.2). Sum of squares == Distance.
  std::vector<double> PerConstraintShortfalls(const MetricValues& values) const;

  /// Human-readable one-liner, e.g. "F1>=0.70, EO>=0.90, time<=0.2s".
  std::string ToString() const;
};

/// Fluent builder with validation: thresholds must lie in their documented
/// ranges (scores in [0, 1], positive times, positive ε).
class ConstraintSetBuilder {
 public:
  ConstraintSetBuilder& MinF1(double threshold);
  ConstraintSetBuilder& MaxSearchSeconds(double seconds);
  ConstraintSetBuilder& MaxFeatureFraction(double fraction);
  ConstraintSetBuilder& MinEqualOpportunity(double threshold);
  ConstraintSetBuilder& MinSafety(double threshold);
  ConstraintSetBuilder& PrivacyEpsilon(double epsilon);

  /// Validates and returns the set (InvalidArgument on out-of-range values).
  StatusOr<ConstraintSet> Build() const;

 private:
  ConstraintSet set_;
};

}  // namespace dfs::constraints

#endif  // DFS_CONSTRAINTS_CONSTRAINT_SET_H_
