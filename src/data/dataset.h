#ifndef DFS_DATA_DATASET_H_
#define DFS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace dfs::data {

/// Fully preprocessed dataset: numeric feature columns (min-max scaled to
/// [0, 1], no missing values), a binary classification target, and a binary
/// sensitive-group attribute (0 = majority, 1 = minority) used by the
/// fairness metric. Stored column-major because feature selection operates
/// on feature columns.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset; all columns must have the same length as labels and
  /// groups, and feature_names must match the number of columns.
  static StatusOr<Dataset> Create(std::string name,
                                  std::vector<std::string> feature_names,
                                  std::vector<std::vector<double>> columns,
                                  std::vector<int> labels,
                                  std::vector<int> groups);

  const std::string& name() const { return name_; }
  int num_rows() const { return static_cast<int>(labels_.size()); }
  int num_features() const { return static_cast<int>(columns_.size()); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<double>& Column(int feature) const {
    DFS_CHECK(feature >= 0 && feature < num_features());
    return columns_[feature];
  }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& groups() const { return groups_; }

  double Value(int row, int feature) const {
    return columns_[feature][row];
  }

  /// Copies the selected feature columns into a row-major matrix (the layout
  /// the classifiers consume).
  linalg::Matrix ToMatrix(const std::vector<int>& feature_indices) const;

  /// ToMatrix without the allocation: reshapes `*out` in place (capacity is
  /// reused whenever it suffices — see linalg::Matrix::Resize) and writes
  /// through the unchecked fast path. Feature indices are validated once
  /// per column, not once per element. `out` must not be null; its previous
  /// contents are discarded. This is the gather the engine's EvalScratch
  /// cycles through on every wrapper evaluation (DESIGN.md §2e).
  ///
  /// The column-major -> row-major transpose is tiled over bounded row
  /// blocks (DESIGN.md §2i): each block's destination window stays
  /// cache-resident instead of streaming the whole rows*k matrix once per
  /// column, which is what makes XL-tier gathers (100k+ rows) feasible
  /// inside the EvalScratch pool. `block_rows` <= 0 picks the block size
  /// from a fixed scratch-window budget; any explicit positive value
  /// produces bit-identical output (the tiling only reorders stores),
  /// which kernels_test.cc proves.
  DFS_HOT void GatherInto(const std::vector<int>& feature_indices,
                          linalg::Matrix* out, int block_rows = 0) const;

  /// Float32 gather for the opt-in f32 evaluation mode (DESIGN.md §2i).
  /// Elements are static_cast<float>(v) of the f64 values — identical
  /// whether or not the f32 mirror below has been built.
  DFS_HOT void GatherInto(const std::vector<int>& feature_indices,
                          linalg::Matrix32* out, int block_rows = 0) const;

  /// Precomputes an f32 copy of every column so f32 gathers read
  /// half-width contiguous storage instead of converting on the fly.
  /// NOT thread-safe: call before any concurrent GatherInto traffic (the
  /// engine builds mirrors at construction when f32 eval is enabled).
  void BuildF32Mirror();
  bool has_f32_mirror() const { return !columns_f32_.empty(); }

  /// All feature indices [0, num_features).
  std::vector<int> AllFeatures() const;

  /// Dataset restricted to the given rows (features unchanged).
  Dataset SelectRows(const std::vector<int>& row_indices) const;

  /// Fraction of rows with label 1.
  double PositiveRate() const;

 private:
  std::string name_;
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> columns_;  // [feature][row]
  std::vector<std::vector<float>> columns_f32_;  // optional mirror, see above
  std::vector<int> labels_;                   // 0/1
  std::vector<int> groups_;                   // 0 = majority, 1 = minority
};

/// Train/validation/test triple produced by the 3:1:1 stratified split
/// (Section 6.1).
struct DataSplit {
  Dataset train;
  Dataset validation;
  Dataset test;
};

}  // namespace dfs::data

#endif  // DFS_DATA_DATASET_H_
