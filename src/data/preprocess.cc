#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace dfs::data {
namespace {

// Mean-imputes NaNs, then min-max scales into [0, 1]. Constant columns
// become all-zero.
std::vector<double> ImputeAndScale(const std::vector<double>& values) {
  double sum = 0.0;
  int present = 0;
  for (double v : values) {
    if (!std::isnan(v)) {
      sum += v;
      ++present;
    }
  }
  const double mean = present > 0 ? sum / present : 0.0;
  std::vector<double> imputed(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    imputed[i] = std::isnan(values[i]) ? mean : values[i];
  }
  auto [min_it, max_it] = std::minmax_element(imputed.begin(), imputed.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (hi > lo) {
    for (double& v : imputed) v = (v - lo) / (hi - lo);
  } else {
    std::fill(imputed.begin(), imputed.end(), 0.0);
  }
  return imputed;
}

bool IsConstant(const std::vector<double>& values) {
  for (double v : values) {
    if (v != values.front()) return false;
  }
  return true;
}

}  // namespace

StatusOr<Dataset> Preprocess(const RawDataset& raw,
                             const PreprocessOptions& options) {
  if (raw.num_rows() == 0) return InvalidArgumentError("empty dataset");
  if (static_cast<int>(raw.sensitive.size()) != raw.num_rows()) {
    return InvalidArgumentError("sensitive attribute length mismatch");
  }
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;

  for (const auto& column : raw.columns) {
    if (column.size() != raw.num_rows()) {
      return InvalidArgumentError("column '" + column.name +
                                  "' length mismatch");
    }
    if (column.type == ColumnType::kNumeric) {
      std::vector<double> encoded = ImputeAndScale(column.numeric_values);
      if (options.drop_constant_columns && IsConstant(encoded)) continue;
      names.push_back(column.name);
      columns.push_back(std::move(encoded));
    } else {
      // One-hot encode. std::map keeps category order deterministic.
      std::map<std::string, int> counts;
      for (const auto& value : column.categorical_values) {
        counts[value] += 1;
      }
      std::vector<std::string> kept;
      bool has_other = false;
      for (const auto& [value, count] : counts) {
        if (value.empty() && options.missing_category) {
          kept.push_back(value);
        } else if (count >= options.min_category_count) {
          kept.push_back(value);
        } else {
          has_other = true;
        }
      }
      for (const auto& value : kept) {
        std::vector<double> indicator(raw.num_rows(), 0.0);
        for (int r = 0; r < raw.num_rows(); ++r) {
          if (column.categorical_values[r] == value) indicator[r] = 1.0;
        }
        if (options.drop_constant_columns && IsConstant(indicator)) continue;
        names.push_back(column.name + "=" +
                        (value.empty() ? "<missing>" : value));
        columns.push_back(std::move(indicator));
      }
      if (has_other) {
        std::vector<double> indicator(raw.num_rows(), 0.0);
        for (int r = 0; r < raw.num_rows(); ++r) {
          const auto& value = column.categorical_values[r];
          if (counts[value] < options.min_category_count &&
              !(value.empty() && options.missing_category)) {
            indicator[r] = 1.0;
          }
        }
        if (!(options.drop_constant_columns && IsConstant(indicator))) {
          names.push_back(column.name + "=<other>");
          columns.push_back(std::move(indicator));
        }
      }
    }
  }

  if (columns.empty()) {
    return InvalidArgumentError("no usable feature columns after encoding");
  }
  return Dataset::Create(raw.name, std::move(names), std::move(columns),
                         raw.target, raw.sensitive);
}

}  // namespace dfs::data
