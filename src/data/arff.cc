#include "data/arff.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace dfs::data {
namespace {

struct ArffAttribute {
  std::string name;
  bool numeric = false;
  std::vector<std::string> nominal_values;  // empty for numeric/string
};

// Strips optional single or double quotes.
std::string Unquote(const std::string& text) {
  if (text.size() >= 2 &&
      ((text.front() == '\'' && text.back() == '\'') ||
       (text.front() == '"' && text.back() == '"'))) {
    return text.substr(1, text.size() - 2);
  }
  return text;
}

// Splits a data row on commas, honoring quotes.
std::vector<std::string> SplitDataRow(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  char quote = '\0';
  for (char c : line) {
    if (quote != '\0') {
      field += c;
      if (c == quote) quote = '\0';
    } else if (c == '\'' || c == '"') {
      field += c;
      quote = c;
    } else if (c == ',') {
      fields.push_back(Strip(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(Strip(field));
  return fields;
}

// Parses "@attribute name type"; type is NUMERIC/REAL/INTEGER/STRING/DATE
// or a {v1,v2,...} nominal list.
StatusOr<ArffAttribute> ParseAttribute(const std::string& line) {
  // Skip the keyword.
  size_t pos = line.find_first_of(" \t");
  if (pos == std::string::npos) {
    return InvalidArgumentError("malformed @attribute line: " + line);
  }
  std::string rest = Strip(line.substr(pos));
  // Name: quoted or whitespace-delimited.
  ArffAttribute attribute;
  if (!rest.empty() && (rest[0] == '\'' || rest[0] == '"')) {
    const char quote = rest[0];
    const size_t end = rest.find(quote, 1);
    if (end == std::string::npos) {
      return InvalidArgumentError("unterminated attribute name: " + line);
    }
    attribute.name = rest.substr(1, end - 1);
    rest = Strip(rest.substr(end + 1));
  } else {
    const size_t end = rest.find_first_of(" \t");
    if (end == std::string::npos) {
      return InvalidArgumentError("attribute without type: " + line);
    }
    attribute.name = rest.substr(0, end);
    rest = Strip(rest.substr(end));
  }
  if (rest.empty()) {
    return InvalidArgumentError("attribute without type: " + line);
  }
  if (rest[0] == '{') {
    const size_t close = rest.rfind('}');
    if (close == std::string::npos) {
      return InvalidArgumentError("unterminated nominal list: " + line);
    }
    for (const std::string& value :
         Split(rest.substr(1, close - 1), ',')) {
      attribute.nominal_values.push_back(Unquote(Strip(value)));
    }
    if (attribute.nominal_values.empty()) {
      return InvalidArgumentError("empty nominal list: " + line);
    }
    return attribute;
  }
  const std::string type = ToLower(Strip(rest));
  if (type == "numeric" || type == "real" || type == "integer") {
    attribute.numeric = true;
    return attribute;
  }
  if (type == "string" || StartsWith(type, "date")) {
    return attribute;  // treated as categorical with open vocabulary
  }
  return InvalidArgumentError("unsupported attribute type: " + rest);
}

}  // namespace

StatusOr<RawDataset> ParseArff(const std::string& text,
                               const std::string& target_attribute,
                               const std::string& sensitive_attribute) {
  std::vector<ArffAttribute> attributes;
  std::string relation = "arff";
  bool in_data = false;
  std::vector<std::vector<std::string>> rows;

  std::istringstream stream(text);
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    const std::string line = Strip(raw_line);
    if (line.empty() || line[0] == '%') continue;
    if (!in_data) {
      const std::string lower = ToLower(line);
      if (StartsWith(lower, "@relation")) {
        const size_t pos = line.find_first_of(" \t");
        if (pos != std::string::npos) {
          relation = Unquote(Strip(line.substr(pos)));
        }
      } else if (StartsWith(lower, "@attribute")) {
        DFS_ASSIGN_OR_RETURN(ArffAttribute attribute, ParseAttribute(line));
        attributes.push_back(std::move(attribute));
      } else if (StartsWith(lower, "@data")) {
        in_data = true;
      } else {
        return InvalidArgumentError("unexpected header line: " + line);
      }
      continue;
    }
    if (line[0] == '{') {
      return UnimplementedError("sparse ARFF data is not supported");
    }
    std::vector<std::string> fields = SplitDataRow(line);
    if (fields.size() != attributes.size()) {
      return InvalidArgumentError(
          "data row has " + std::to_string(fields.size()) +
          " fields, expected " + std::to_string(attributes.size()));
    }
    rows.push_back(std::move(fields));
  }
  if (!in_data) return InvalidArgumentError("missing @data section");
  if (attributes.empty()) return InvalidArgumentError("no attributes");
  if (rows.empty()) return InvalidArgumentError("no data rows");

  // Locate target and sensitive attributes; both must be binary nominal.
  auto find_binary = [&](const std::string& name) -> StatusOr<int> {
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name != name) continue;
      if (attributes[i].nominal_values.size() != 2) {
        return InvalidArgumentError("attribute '" + name +
                                    "' must be nominal with two values");
      }
      return static_cast<int>(i);
    }
    return NotFoundError("attribute not found: " + name);
  };
  DFS_ASSIGN_OR_RETURN(const int target_index, find_binary(target_attribute));
  DFS_ASSIGN_OR_RETURN(const int sensitive_index,
                       find_binary(sensitive_attribute));

  auto binary_value = [&](const std::string& cell,
                          int attribute_index) -> StatusOr<int> {
    const std::string value = Unquote(cell);
    const auto& nominal = attributes[attribute_index].nominal_values;
    if (value == nominal[0]) return 0;
    if (value == nominal[1]) return 1;
    return InvalidArgumentError("value '" + value +
                                "' not in the declared nominal domain of " +
                                attributes[attribute_index].name);
  };

  RawDataset dataset;
  dataset.name = relation;
  dataset.sensitive_attribute_name = sensitive_attribute;
  for (const auto& row : rows) {
    DFS_ASSIGN_OR_RETURN(const int target, binary_value(row[target_index],
                                                        target_index));
    DFS_ASSIGN_OR_RETURN(const int sensitive,
                         binary_value(row[sensitive_index],
                                      sensitive_index));
    dataset.target.push_back(target);
    dataset.sensitive.push_back(sensitive);
  }

  for (size_t a = 0; a < attributes.size(); ++a) {
    if (static_cast<int>(a) == target_index ||
        static_cast<int>(a) == sensitive_index) {
      continue;
    }
    RawColumn column;
    column.name = attributes[a].name;
    column.type = attributes[a].numeric ? ColumnType::kNumeric
                                        : ColumnType::kCategorical;
    for (const auto& row : rows) {
      const std::string cell = Unquote(row[a]);
      if (attributes[a].numeric) {
        if (cell == "?") {
          column.numeric_values.push_back(std::nan(""));
        } else {
          char* end = nullptr;
          const double value = std::strtod(cell.c_str(), &end);
          if (end == nullptr || *end != '\0') {
            return InvalidArgumentError("non-numeric value '" + cell +
                                        "' in numeric attribute " +
                                        column.name);
          }
          column.numeric_values.push_back(value);
        }
      } else {
        column.categorical_values.push_back(cell == "?" ? "" : cell);
      }
    }
    dataset.columns.push_back(std::move(column));
  }
  return dataset;
}

StatusOr<RawDataset> ReadArffFile(const std::string& path,
                                  const std::string& target_attribute,
                                  const std::string& sensitive_attribute) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseArff(buffer.str(), target_attribute, sensitive_attribute);
}

}  // namespace dfs::data
