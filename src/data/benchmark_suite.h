#ifndef DFS_DATA_BENCHMARK_SUITE_H_
#define DFS_DATA_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/statusor.h"

namespace dfs::data {

/// The 19-dataset benchmark suite standing in for Table 2 of the paper.
/// Dataset names, ordering (descending instance count) and sensitive
/// attributes match the paper; instance/feature counts are scaled down so
/// the full study runs on one machine (the paper reports four weeks of
/// compute on 28-core machines). Each spec encodes the *structural* role the
/// paper attributes to its dataset: e.g. Traffic Violations is the largest
/// and defeats non-scalable rankings, COMPAS has few critical features and
/// strong bias, Arrhythmia has many features relative to its rows.
const std::vector<SyntheticSpec>& BenchmarkSpecs();

/// Number of datasets in the suite (19).
int BenchmarkSize();

/// Spec by dataset name; NotFound if absent.
StatusOr<SyntheticSpec> BenchmarkSpecByName(const std::string& name);

/// Generates (and preprocesses) benchmark dataset `index` deterministically.
/// `row_scale` scales all instance counts (experiment harnesses read it from
/// the DFS_DATA_SCALE environment variable).
StatusOr<Dataset> GenerateBenchmarkDataset(int index, uint64_t seed = 7,
                                           double row_scale = 1.0);

}  // namespace dfs::data

#endif  // DFS_DATA_BENCHMARK_SUITE_H_
