#ifndef DFS_DATA_SPLIT_H_
#define DFS_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::data {

/// Class-stratified shuffled split into train/validation/test with the given
/// proportions (the paper uses 3:1:1). Proportions are normalized; every
/// part receives at least one row of each class when possible.
StatusOr<DataSplit> StratifiedSplit(const Dataset& dataset, double train,
                                    double validation, double test, Rng& rng);

/// Class-stratified subsample of (at most) `sample_size` rows, preserving
/// the label distribution; used by subsampling-based landmarking
/// (Section 5.2).
Dataset StratifiedSample(const Dataset& dataset, int sample_size, Rng& rng);

/// Row indices per fold for class-stratified k-fold cross-validation.
std::vector<std::vector<int>> StratifiedFolds(const std::vector<int>& labels,
                                              int num_folds, Rng& rng);

}  // namespace dfs::data

#endif  // DFS_DATA_SPLIT_H_
