#ifndef DFS_DATA_SYNTHETIC_H_
#define DFS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/raw_dataset.h"
#include "util/statusor.h"

namespace dfs::data {

/// Generative specification for one synthetic benchmark dataset. The
/// generator produces a binary classification task with a binary sensitive
/// attribute and four structurally distinct feature groups:
///
///  * informative  — carry the label signal (latent factors + noise),
///  * redundant    — linear combinations of informative features,
///  * proxy        — correlate with the *sensitive attribute* (the "biased
///                   features" the fairness constraint must prune; they leak
///                   some label signal because the label itself is biased),
///  * noise        — pure noise.
///
/// Categorical attributes are binned informative latents so that one-hot
/// encoding expands them into many columns, as in the paper's datasets.
struct SyntheticSpec {
  std::string name;
  std::string sensitive_attribute;  // e.g. "Gender", "Race"

  int rows = 500;

  int informative_numeric = 5;
  int redundant_numeric = 3;
  int noise_numeric = 5;
  int proxy_features = 2;
  int categorical_attributes = 2;
  int categorical_cardinality = 4;

  double class_sep = 2.0;         // scale of the label logit
  double feature_noise = 0.4;     // noise added to informative features
  double label_noise = 0.05;      // label flip probability
  double group_bias = 0.8;        // sensitive-group shift of the label logit
  double minority_fraction = 0.3;
  double missing_fraction = 0.02;

  // Documentation of the paper dataset this spec stands in for (Table 2).
  int paper_instances = 0;
  int paper_features = 0;

  /// Number of encoded feature columns this spec produces (sensitive
  /// indicator + numeric groups + one-hot categorical columns).
  int EncodedFeatureCount() const;
};

/// Generates the raw (pre-encoding) dataset for a spec. Deterministic in
/// (spec, seed). `row_scale` multiplies spec.rows (min 60 rows).
RawDataset GenerateRaw(const SyntheticSpec& spec, uint64_t seed,
                       double row_scale = 1.0);

/// GenerateRaw + standard preprocessing.
StatusOr<Dataset> GenerateDataset(const SyntheticSpec& spec, uint64_t seed,
                                  double row_scale = 1.0);

}  // namespace dfs::data

#endif  // DFS_DATA_SYNTHETIC_H_
