#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "data/preprocess.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dfs::data {

int SyntheticSpec::EncodedFeatureCount() const {
  // sensitive indicator + numeric groups + one-hot categorical columns.
  return 1 + informative_numeric + redundant_numeric + noise_numeric +
         proxy_features + categorical_attributes * categorical_cardinality;
}

RawDataset GenerateRaw(const SyntheticSpec& spec, uint64_t seed,
                       double row_scale) {
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  const int n = std::max(60, static_cast<int>(spec.rows * row_scale));

  RawDataset raw;
  raw.name = spec.name;
  raw.sensitive_attribute_name = spec.sensitive_attribute;
  raw.target.resize(n);
  raw.sensitive.resize(n);

  // Latent informative factors and their label weights.
  const int k = std::max(1, spec.informative_numeric);
  std::vector<std::vector<double>> latents(k, std::vector<double>(n));
  std::vector<double> weights(k);
  for (int j = 0; j < k; ++j) {
    // Alternate sign, decaying magnitude: a few features carry most signal
    // ("few critical features" when informative_numeric is small).
    weights[j] = (j % 2 == 0 ? 1.0 : -1.0) * (1.0 + 1.0 / (1.0 + j));
  }
  double weight_norm = 0.0;
  for (double w : weights) weight_norm += w * w;
  weight_norm = std::sqrt(weight_norm);

  for (int r = 0; r < n; ++r) {
    raw.sensitive[r] = rng.Bernoulli(spec.minority_fraction) ? 1 : 0;
    double logit = 0.0;
    for (int j = 0; j < k; ++j) {
      latents[j][r] = rng.Normal();
      logit += weights[j] * latents[j][r];
    }
    logit = spec.class_sep * logit / weight_norm;
    // Group bias: the minority group's positive rate is depressed, which
    // creates the TPR gap the EO metric measures.
    logit += spec.group_bias * (raw.sensitive[r] == 1 ? -1.0 : 1.0) * 0.5;
    int label = rng.Bernoulli(Sigmoid(logit)) ? 1 : 0;
    if (rng.Bernoulli(spec.label_noise)) label = 1 - label;
    raw.target[r] = label;
  }

  auto add_numeric = [&](const std::string& name,
                         std::vector<double> values) {
    RawColumn column;
    column.name = name;
    column.type = ColumnType::kNumeric;
    // Missing-value injection (mean imputation handles these downstream).
    for (double& v : values) {
      if (rng.Bernoulli(spec.missing_fraction)) v = std::nan("");
    }
    column.numeric_values = std::move(values);
    raw.columns.push_back(std::move(column));
  };

  // Sensitive attribute itself is an (unmasked) feature column — removing it
  // is necessary but not sufficient for fairness because of the proxies.
  {
    RawColumn column;
    column.name = spec.sensitive_attribute;
    column.type = ColumnType::kNumeric;
    column.numeric_values.resize(n);
    for (int r = 0; r < n; ++r) {
      column.numeric_values[r] = raw.sensitive[r];
    }
    raw.columns.push_back(std::move(column));
  }

  // Informative features: latent + noise.
  for (int j = 0; j < spec.informative_numeric; ++j) {
    std::vector<double> values(n);
    for (int r = 0; r < n; ++r) {
      values[r] = latents[j][r] + spec.feature_noise * rng.Normal();
    }
    add_numeric("num_inf_" + std::to_string(j), std::move(values));
  }

  // Redundant features: combinations of two informative latents.
  for (int j = 0; j < spec.redundant_numeric; ++j) {
    const int a = j % k;
    const int b = (j + 1) % k;
    const double alpha = rng.Uniform(0.3, 0.7);
    std::vector<double> values(n);
    for (int r = 0; r < n; ++r) {
      values[r] = alpha * latents[a][r] + (1.0 - alpha) * latents[b][r] +
                  0.1 * rng.Normal();
    }
    add_numeric("num_red_" + std::to_string(j), std::move(values));
  }

  // Proxy (biased) features: noisy copies of the sensitive attribute, like
  // ZIP code standing in for race (Selbst 2017).
  for (int j = 0; j < spec.proxy_features; ++j) {
    const double proxy_noise = 0.25 + 0.15 * j;  // increasingly weak proxies
    std::vector<double> values(n);
    for (int r = 0; r < n; ++r) {
      values[r] = raw.sensitive[r] + proxy_noise * rng.Normal();
    }
    add_numeric("num_proxy_" + std::to_string(j), std::move(values));
  }

  // Pure-noise features.
  for (int j = 0; j < spec.noise_numeric; ++j) {
    std::vector<double> values(n);
    for (int r = 0; r < n; ++r) values[r] = rng.Normal();
    add_numeric("num_noise_" + std::to_string(j), std::move(values));
  }

  // Categorical attributes: quantile-binned informative latents (carry
  // signal; expand under one-hot encoding).
  for (int j = 0; j < spec.categorical_attributes; ++j) {
    const int source = j % k;
    const int cardinality = std::max(2, spec.categorical_cardinality);
    RawColumn column;
    column.name = "cat_" + std::to_string(j);
    column.type = ColumnType::kCategorical;
    column.categorical_values.resize(n);
    for (int r = 0; r < n; ++r) {
      if (rng.Bernoulli(spec.missing_fraction)) {
        column.categorical_values[r] = "";
        continue;
      }
      // Map the standard-normal latent through its CDF into equal bins.
      double cdf = 0.5 * std::erfc(-latents[source][r] / std::sqrt(2.0));
      int bin = std::min(static_cast<int>(cdf * cardinality), cardinality - 1);
      column.categorical_values[r] = "v" + std::to_string(bin);
    }
    raw.columns.push_back(std::move(column));
  }

  // Guarantee both classes and both groups are present (tiny datasets could
  // otherwise degenerate).
  bool has_positive = false, has_negative = false;
  bool has_minority = false, has_majority = false;
  for (int r = 0; r < n; ++r) {
    (raw.target[r] == 1 ? has_positive : has_negative) = true;
    (raw.sensitive[r] == 1 ? has_minority : has_majority) = true;
  }
  if (!has_positive) raw.target[0] = 1;
  if (!has_negative) raw.target[n - 1] = 0;
  if (!has_minority) raw.sensitive[0] = 1;
  if (!has_majority) raw.sensitive[n - 1] = 0;

  return raw;
}

StatusOr<Dataset> GenerateDataset(const SyntheticSpec& spec, uint64_t seed,
                                  double row_scale) {
  return Preprocess(GenerateRaw(spec, seed, row_scale));
}

}  // namespace dfs::data
