#ifndef DFS_DATA_RAW_DATASET_H_
#define DFS_DATA_RAW_DATASET_H_

#include <cmath>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/statusor.h"

namespace dfs::data {

enum class ColumnType { kNumeric, kCategorical };

/// One column of an unprocessed dataset. Numeric columns use NaN for missing
/// values; categorical columns use the empty string.
struct RawColumn {
  std::string name;
  ColumnType type = ColumnType::kNumeric;
  std::vector<double> numeric_values;           // used when kNumeric
  std::vector<std::string> categorical_values;  // used when kCategorical

  int size() const {
    return type == ColumnType::kNumeric
               ? static_cast<int>(numeric_values.size())
               : static_cast<int>(categorical_values.size());
  }
};

/// Unprocessed dataset as a user would hand it in: mixed numeric/categorical
/// attributes with missing values, a binary target, and a binary sensitive
/// attribute. `Preprocess` (preprocess.h) turns this into a `Dataset`.
struct RawDataset {
  std::string name;
  std::vector<RawColumn> columns;
  std::vector<int> target;     // 0/1
  std::vector<int> sensitive;  // 0 = majority, 1 = minority
  std::string sensitive_attribute_name;

  int num_rows() const { return static_cast<int>(target.size()); }
  int num_attributes() const { return static_cast<int>(columns.size()); }
};

/// Loads a RawDataset from a CSV table. `target_column` must contain only
/// "0"/"1"; `sensitive_column` likewise. Columns where every non-empty cell
/// parses as a number are treated as numeric, all others as categorical.
StatusOr<RawDataset> RawDatasetFromCsv(const CsvTable& table,
                                       const std::string& target_column,
                                       const std::string& sensitive_column,
                                       const std::string& name);

}  // namespace dfs::data

#endif  // DFS_DATA_RAW_DATASET_H_
