#include "data/benchmark_suite.h"

namespace dfs::data {
namespace {

SyntheticSpec MakeSpec(std::string name, std::string sensitive, int rows,
                       int informative, int redundant, int noise, int proxy,
                       int categorical, int cardinality, double class_sep,
                       double group_bias, int paper_instances,
                       int paper_features) {
  SyntheticSpec spec;
  spec.name = std::move(name);
  spec.sensitive_attribute = std::move(sensitive);
  spec.rows = rows;
  spec.informative_numeric = informative;
  spec.redundant_numeric = redundant;
  spec.noise_numeric = noise;
  spec.proxy_features = proxy;
  spec.categorical_attributes = categorical;
  spec.categorical_cardinality = cardinality;
  spec.class_sep = class_sep;
  spec.group_bias = group_bias;
  // Lower label noise than the generator default: keeps the achievable F1
  // ceiling high enough that the Listing-1 sampler (min F1 ~ U(0.5, 1))
  // produces a healthy fraction of satisfiable scenarios.
  spec.label_noise = 0.03;
  spec.paper_instances = paper_instances;
  spec.paper_features = paper_features;
  return spec;
}

std::vector<SyntheticSpec> BuildSpecs() {
  std::vector<SyntheticSpec> specs;
  // Ordered by paper instance count, as in Table 2. Arguments:
  // name, sensitive, rows, informative, redundant, noise, proxy,
  // categorical, cardinality, class_sep, group_bias, paper n, paper p.
  specs.push_back(MakeSpec("Traffic Violations", "Race", 2000, 6, 8, 30, 3,
                           12, 6, 1.9, 0.9, 1578154, 2075));
  specs.push_back(MakeSpec("AirlinesCodrnaAdult", "Gender", 1800, 8, 6, 25, 2,
                           10, 6, 2.1, 0.7, 1076790, 746));
  specs.push_back(MakeSpec("Adult", "Gender", 1400, 5, 4, 8, 3,
                           12, 6, 2.3, 0.9, 48842, 108));
  specs.push_back(MakeSpec("KDD Internet Usage", "Gender", 1200, 6, 10, 40, 2,
                           10, 5, 2.0, 0.6, 10108, 526));
  specs.push_back(MakeSpec("IPUMS Census", "Gender", 1100, 3, 4, 50, 2,
                           4, 5, 2.7, 0.7, 8844, 274));
  specs.push_back(MakeSpec("Telco Customer Churn", "Gender", 1000, 5, 3, 10, 2,
                           6, 4, 2.2, 0.5, 7043, 45));
  specs.push_back(MakeSpec("COMPAS", "Race", 1000, 3, 2, 6, 3,
                           1, 4, 2.5, 1.2, 5278, 19));
  specs.push_back(MakeSpec("Students", "Gender", 900, 5, 4, 15, 2,
                           3, 4, 2.1, 0.6, 3892, 39));
  specs.push_back(MakeSpec("Thyroid Disease", "Gender", 900, 4, 4, 25, 1,
                           4, 5, 2.8, 0.4, 3772, 54));
  specs.push_back(MakeSpec("Primary Biliary Cirrhosis", "Gender", 800, 4, 6,
                           40, 2, 6, 6, 1.9, 0.5, 1945, 723));
  specs.push_back(MakeSpec("Titanic", "Gender", 800, 3, 2, 30, 2,
                           6, 6, 2.5, 1.0, 1309, 422));
  specs.push_back(MakeSpec("Social Mobility", "Race", 700, 3, 2, 10, 2,
                           3, 4, 2.3, 1.0, 1156, 39));
  specs.push_back(MakeSpec("German Credit", "Nationality", 700, 4, 3, 20, 2,
                           5, 5, 2.1, 0.8, 1000, 61));
  specs.push_back(MakeSpec("Indian Liver Patient", "Gender", 583, 4, 2, 3, 1,
                           0, 2, 2.2, 0.5, 583, 11));
  specs.push_back(MakeSpec("Irish Educational Transitions", "Gender", 500, 3,
                           2, 6, 2, 1, 4, 2.4, 0.7, 500, 18));
  specs.push_back(MakeSpec("Arrhythmia", "Gender", 452, 8, 12, 80, 2,
                           2, 4, 1.8, 0.4, 452, 334));
  specs.push_back(MakeSpec("Brazil Tourism", "Gender", 412, 3, 3, 10, 2,
                           1, 3, 2.2, 0.6, 412, 22));
  specs.push_back(MakeSpec("Primary Tumor", "Gender", 339, 4, 3, 12, 2,
                           5, 4, 2.0, 0.5, 339, 41));
  specs.push_back(MakeSpec("Diabetic Mellitus", "Gender", 281, 5, 8, 60, 2,
                           4, 4, 1.9, 0.5, 281, 98));
  return specs;
}

std::vector<SyntheticSpec> BuildXlSpecs() {
  std::vector<SyntheticSpec> specs;
  // Paper-scale variants of the suite's widest datasets. Feature counts are
  // chosen so the post-encoding width — EncodedFeatureCount() plus one
  // <missing> one-hot bucket per categorical attribute (missing_fraction is
  // nonzero) — lands on the paper's widths: 1261 / 1013 / 525 columns.
  // Rows reach the 100k+ regime the paper's largest tasks occupy. Label
  // noise matches the base suite so XL scenarios stay satisfiable.
  specs.push_back(MakeSpec("Traffic Violations XL", "Race", 150000, 20, 40,
                           526, 8, 74, 8, 1.9, 0.9, 1578154, 2075));
  specs.push_back(MakeSpec("AirlinesCodrnaAdult XL", "Gender", 120000, 24, 30,
                           385, 6, 63, 8, 2.1, 0.7, 1076790, 746));
  specs.push_back(MakeSpec("KDD Internet Usage XL", "Gender", 100000, 16, 32,
                           257, 4, 43, 4, 2.0, 0.6, 10108, 526));
  return specs;
}

}  // namespace

const std::vector<SyntheticSpec>& BenchmarkSpecs() {
  static const auto& specs = *new std::vector<SyntheticSpec>(BuildSpecs());
  return specs;
}

int BenchmarkSize() { return static_cast<int>(BenchmarkSpecs().size()); }

StatusOr<SyntheticSpec> BenchmarkSpecByName(const std::string& name) {
  for (const auto& spec : BenchmarkSpecs()) {
    if (spec.name == name) return spec;
  }
  return NotFoundError("no benchmark dataset named '" + name + "'");
}

StatusOr<Dataset> GenerateBenchmarkDataset(int index, uint64_t seed,
                                           double row_scale) {
  const auto& specs = BenchmarkSpecs();
  if (index < 0 || index >= static_cast<int>(specs.size())) {
    return OutOfRangeError("benchmark index out of range");
  }
  // Offset the seed by the index so same-seed datasets are independent.
  return GenerateDataset(specs[index],
                         seed * 1000003ULL + static_cast<uint64_t>(index),
                         row_scale);
}

const std::vector<SyntheticSpec>& XlBenchmarkSpecs() {
  static const auto& specs = *new std::vector<SyntheticSpec>(BuildXlSpecs());
  return specs;
}

int XlBenchmarkSize() { return static_cast<int>(XlBenchmarkSpecs().size()); }

StatusOr<Dataset> GenerateXlBenchmarkDataset(int index, uint64_t seed,
                                             double row_scale) {
  const auto& specs = XlBenchmarkSpecs();
  if (index < 0 || index >= static_cast<int>(specs.size())) {
    return OutOfRangeError("XL benchmark index out of range");
  }
  // Distinct seed stream from the base suite (offset past its 19 indices)
  // so an XL dataset never aliases a base dataset's generator stream.
  return GenerateDataset(
      specs[index],
      seed * 1000003ULL + static_cast<uint64_t>(index) + 1000ULL, row_scale);
}

}  // namespace dfs::data
