#ifndef DFS_DATA_PREPROCESS_H_
#define DFS_DATA_PREPROCESS_H_

#include "data/dataset.h"
#include "data/raw_dataset.h"
#include "util/statusor.h"

namespace dfs::data {

/// Options for the standard preprocessing pipeline from Section 6.1 of the
/// paper: mean-value imputation + min-max scaling for numeric attributes and
/// one-hot encoding for categorical attributes. The pipeline is deliberately
/// interpretability-preserving (no hashing / PCA), mirroring the paper.
struct PreprocessOptions {
  /// Categorical values seen at most this many times are merged into a
  /// single "<other>" indicator to bound one-hot width. 0 disables merging.
  int min_category_count = 1;
  /// Treat missing categorical values as their own "<missing>" category.
  bool missing_category = true;
  /// Drop constant columns (no information; keeps χ²/variance well-defined).
  bool drop_constant_columns = true;
};

/// Runs the standard pipeline and returns the encoded Dataset. Feature names
/// are "<column>" for numeric and "<column>=<value>" for one-hot indicators.
StatusOr<Dataset> Preprocess(const RawDataset& raw,
                             const PreprocessOptions& options = {});

}  // namespace dfs::data

#endif  // DFS_DATA_PREPROCESS_H_
