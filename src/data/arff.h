#ifndef DFS_DATA_ARFF_H_
#define DFS_DATA_ARFF_H_

#include <string>

#include "data/raw_dataset.h"
#include "util/statusor.h"

namespace dfs::data {

/// Parses an ARFF document (the native OpenML format of the paper's
/// datasets) into a RawDataset:
///
///   * `@RELATION`, `@ATTRIBUTE`, `@DATA` (case-insensitive), `%` comments;
///   * NUMERIC / REAL / INTEGER attributes map to numeric columns;
///   * {a,b,c} nominal and STRING attributes map to categorical columns;
///   * '?' marks missing values; single/double-quoted values supported;
///   * sparse-format data rows ({index value, ...}) are rejected with
///     Unimplemented.
///
/// `target_attribute` must be nominal with exactly two values; the first
/// declared value maps to 0 and the second to 1. `sensitive_attribute`
/// likewise (first value = majority group 0).
StatusOr<RawDataset> ParseArff(const std::string& text,
                               const std::string& target_attribute,
                               const std::string& sensitive_attribute);

/// Reads and parses an ARFF file.
StatusOr<RawDataset> ReadArffFile(const std::string& path,
                                  const std::string& target_attribute,
                                  const std::string& sensitive_attribute);

}  // namespace dfs::data

#endif  // DFS_DATA_ARFF_H_
