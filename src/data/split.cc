#include "data/split.h"

#include <algorithm>
#include <cmath>

namespace dfs::data {
namespace {

// Shuffled row indices of each class.
std::vector<std::vector<int>> RowsByClass(const std::vector<int>& labels,
                                          Rng& rng) {
  std::vector<std::vector<int>> by_class(2);
  for (int r = 0; r < static_cast<int>(labels.size()); ++r) {
    by_class[labels[r]].push_back(r);
  }
  rng.Shuffle(by_class[0]);
  rng.Shuffle(by_class[1]);
  return by_class;
}

}  // namespace

StatusOr<DataSplit> StratifiedSplit(const Dataset& dataset, double train,
                                    double validation, double test, Rng& rng) {
  if (train <= 0 || validation <= 0 || test <= 0) {
    return InvalidArgumentError("split proportions must be positive");
  }
  const double total = train + validation + test;
  auto by_class = RowsByClass(dataset.labels(), rng);
  if (by_class[0].size() < 3 || by_class[1].size() < 3) {
    return FailedPreconditionError(
        "need at least 3 rows of each class to split");
  }

  std::vector<int> train_rows, validation_rows, test_rows;
  for (const auto& rows : by_class) {
    const int n = static_cast<int>(rows.size());
    int n_train = static_cast<int>(std::round(n * train / total));
    int n_validation = static_cast<int>(std::round(n * validation / total));
    // Guarantee at least one row of this class per part.
    n_train = std::clamp(n_train, 1, n - 2);
    n_validation = std::clamp(n_validation, 1, n - n_train - 1);
    for (int i = 0; i < n; ++i) {
      if (i < n_train) {
        train_rows.push_back(rows[i]);
      } else if (i < n_train + n_validation) {
        validation_rows.push_back(rows[i]);
      } else {
        test_rows.push_back(rows[i]);
      }
    }
  }
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(validation_rows.begin(), validation_rows.end());
  std::sort(test_rows.begin(), test_rows.end());

  DataSplit split;
  split.train = dataset.SelectRows(train_rows);
  split.validation = dataset.SelectRows(validation_rows);
  split.test = dataset.SelectRows(test_rows);
  return split;
}

Dataset StratifiedSample(const Dataset& dataset, int sample_size, Rng& rng) {
  if (sample_size >= dataset.num_rows()) return dataset;
  auto by_class = RowsByClass(dataset.labels(), rng);
  const double fraction =
      static_cast<double>(sample_size) / dataset.num_rows();
  std::vector<int> selected;
  for (const auto& rows : by_class) {
    if (rows.empty()) continue;
    int take = std::max(1, static_cast<int>(std::round(rows.size() * fraction)));
    take = std::min<int>(take, static_cast<int>(rows.size()));
    selected.insert(selected.end(), rows.begin(), rows.begin() + take);
  }
  std::sort(selected.begin(), selected.end());
  return dataset.SelectRows(selected);
}

std::vector<std::vector<int>> StratifiedFolds(const std::vector<int>& labels,
                                              int num_folds, Rng& rng) {
  DFS_CHECK_GT(num_folds, 1);
  auto by_class = RowsByClass(labels, rng);
  std::vector<std::vector<int>> folds(num_folds);
  for (const auto& rows : by_class) {
    for (size_t i = 0; i < rows.size(); ++i) {
      folds[i % num_folds].push_back(rows[i]);
    }
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

}  // namespace dfs::data
