#ifndef DFS_DATA_FEATURE_CONSTRUCTION_H_
#define DFS_DATA_FEATURE_CONSTRUCTION_H_

#include "data/dataset.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::data {

/// Options for pairwise feature construction.
struct FeatureConstructionOptions {
  /// Upper bound on generated features. <= 0 means min(d*(d-1)/2, 4*d).
  int max_constructed = 0;
  /// Candidate pairs are ranked by |corr(x_i * x_j, y)| minus the best
  /// single-parent correlation — only pairs whose *product* carries signal
  /// beyond their parents are kept, and only if the margin exceeds this.
  double min_gain = 0.01;
};

/// The fitted construction: which feature pairs were selected. Apply it to
/// other splits of the same feature space so train/validation/test share
/// one augmented schema.
struct ProductFeaturePlan {
  std::vector<std::pair<int, int>> pairs;
};

/// Feature construction (the paper's Section-7 future-work item): augments
/// a dataset with products of feature pairs, which expose multiplicative
/// (XOR-like) relationships that selection alone cannot uncover. Generated
/// columns are named "a*b" and min-max scaled like everything else; the
/// result feeds directly into the normal DFS flow, where feature selection
/// prunes unhelpful constructions again. When `plan` is non-null the chosen
/// pairs are recorded for ApplyProductFeatures.
StatusOr<Dataset> ConstructProductFeatures(
    const Dataset& dataset, const FeatureConstructionOptions& options = {},
    ProductFeaturePlan* plan = nullptr);

/// Applies a fitted plan to another split of the same feature space (the
/// pair selection was fitted elsewhere; only the product columns are
/// recomputed and rescaled here).
StatusOr<Dataset> ApplyProductFeatures(const Dataset& dataset,
                                       const ProductFeaturePlan& plan);

}  // namespace dfs::data

#endif  // DFS_DATA_FEATURE_CONSTRUCTION_H_
