#include "data/raw_dataset.h"

#include <cstdlib>

#include "util/string_util.h"

namespace dfs::data {
namespace {

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

StatusOr<std::vector<int>> ParseBinaryColumn(const CsvTable& table,
                                             int column_index,
                                             const std::string& what) {
  std::vector<int> values;
  values.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    const std::string cell = Strip(row[column_index]);
    if (cell == "0") {
      values.push_back(0);
    } else if (cell == "1") {
      values.push_back(1);
    } else {
      return InvalidArgumentError(what + " column must be binary 0/1, got '" +
                                  cell + "'");
    }
  }
  return values;
}

}  // namespace

StatusOr<RawDataset> RawDatasetFromCsv(const CsvTable& table,
                                       const std::string& target_column,
                                       const std::string& sensitive_column,
                                       const std::string& name) {
  const int target_index = table.ColumnIndex(target_column);
  if (target_index < 0) {
    return InvalidArgumentError("target column not found: " + target_column);
  }
  const int sensitive_index = table.ColumnIndex(sensitive_column);
  if (sensitive_index < 0) {
    return InvalidArgumentError("sensitive column not found: " +
                                sensitive_column);
  }

  RawDataset dataset;
  dataset.name = name;
  dataset.sensitive_attribute_name = sensitive_column;
  DFS_ASSIGN_OR_RETURN(dataset.target,
                       ParseBinaryColumn(table, target_index, "target"));
  DFS_ASSIGN_OR_RETURN(dataset.sensitive,
                       ParseBinaryColumn(table, sensitive_index, "sensitive"));

  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == target_index || c == sensitive_index) continue;
    // Decide type: numeric if every non-empty cell parses as a number.
    bool numeric = true;
    for (const auto& row : table.rows) {
      const std::string cell = Strip(row[c]);
      double unused;
      if (!cell.empty() && !ParseDouble(cell, &unused)) {
        numeric = false;
        break;
      }
    }
    RawColumn column;
    column.name = table.header[c];
    column.type = numeric ? ColumnType::kNumeric : ColumnType::kCategorical;
    for (const auto& row : table.rows) {
      const std::string cell = Strip(row[c]);
      if (numeric) {
        double value = std::nan("");
        if (!cell.empty()) ParseDouble(cell, &value);
        column.numeric_values.push_back(value);
      } else {
        column.categorical_values.push_back(cell);
      }
    }
    dataset.columns.push_back(std::move(column));
  }
  return dataset;
}

}  // namespace dfs::data
