#include "data/dataset.h"

#include <algorithm>
#include <numeric>

namespace dfs::data {

StatusOr<Dataset> Dataset::Create(std::string name,
                                  std::vector<std::string> feature_names,
                                  std::vector<std::vector<double>> columns,
                                  std::vector<int> labels,
                                  std::vector<int> groups) {
  if (feature_names.size() != columns.size()) {
    return InvalidArgumentError("feature_names/columns size mismatch");
  }
  if (labels.size() != groups.size()) {
    return InvalidArgumentError("labels/groups size mismatch");
  }
  for (const auto& column : columns) {
    if (column.size() != labels.size()) {
      return InvalidArgumentError("column length does not match labels");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return InvalidArgumentError("labels must be binary (0/1)");
    }
  }
  for (int group : groups) {
    if (group != 0 && group != 1) {
      return InvalidArgumentError("groups must be binary (0/1)");
    }
  }
  Dataset dataset;
  dataset.name_ = std::move(name);
  dataset.feature_names_ = std::move(feature_names);
  dataset.columns_ = std::move(columns);
  dataset.labels_ = std::move(labels);
  dataset.groups_ = std::move(groups);
  return dataset;
}

linalg::Matrix Dataset::ToMatrix(
    const std::vector<int>& feature_indices) const {
  linalg::Matrix matrix;
  GatherInto(feature_indices, &matrix);
  return matrix;
}

namespace {

// Row-block size for the tiled gather: bound the destination window each
// column pass touches to ~1 MiB so it stays cache-resident at XL widths
// (DESIGN.md §2i). Any positive block size yields bit-identical output —
// tiling only reorders stores — so this is purely a bandwidth knob.
constexpr size_t kGatherWindowBytes = 1 << 20;

template <typename Src, typename T>
void GatherTiled(const std::vector<const Src*>& sources, int n, size_t k,
                 int block_rows, T* dst) {
  int block = block_rows;
  if (block <= 0) {
    const size_t by_window =
        kGatherWindowBytes / (std::max<size_t>(k, 1) * sizeof(T));
    block = static_cast<int>(
        std::clamp<size_t>(by_window, 64, static_cast<size_t>(
                                              std::max(n, 1))));
  }
  for (int r0 = 0; r0 < n; r0 += block) {
    const int r1 = std::min(n, r0 + block);
    T* block_base = dst + static_cast<size_t>(r0) * k;
    for (size_t j = 0; j < k; ++j) {
      // Contiguous read of the source column slice; stride-k writes land
      // inside the bounded destination window.
      const Src* src = sources[j] + r0;
      T* cell = block_base + j;
      for (int r = r0; r < r1; ++r, cell += k) {
        *cell = static_cast<T>(*src++);
      }
    }
  }
}

}  // namespace

void Dataset::GatherInto(const std::vector<int>& feature_indices,
                         linalg::Matrix* out, int block_rows) const {
  DFS_CHECK(out != nullptr);
  const int n = num_rows();
  const size_t k = feature_indices.size();
  out->Resize(n, static_cast<int>(k));
  // Column-pointer table in thread-local scratch: one bounds check per
  // column (inside Column), and — like the destination matrix — no heap
  // allocation once a thread has seen its widest mask (the §2e warm-path
  // contract; gathers run concurrently on shared datasets, so the scratch
  // cannot live on the const instance).
  // DFS_THREAD_LOCAL_OK: per-thread gather scratch; the dataset is shared.
  thread_local std::vector<const double*> sources;
  sources.resize(k);  // DFS_ALLOC_OK: reusable thread-local scratch
  for (size_t j = 0; j < k; ++j) {
    sources[j] = Column(feature_indices[j]).data();
  }
  GatherTiled(sources, n, k, block_rows, out->MutableData());
}

void Dataset::GatherInto(const std::vector<int>& feature_indices,
                         linalg::Matrix32* out, int block_rows) const {
  DFS_CHECK(out != nullptr);
  const int n = num_rows();
  const size_t k = feature_indices.size();
  out->Resize(n, static_cast<int>(k));
  if (has_f32_mirror()) {
    // DFS_THREAD_LOCAL_OK: per-thread gather scratch; the dataset is shared.
    thread_local std::vector<const float*> sources_f32;
    sources_f32.resize(k);  // DFS_ALLOC_OK: reusable thread-local scratch
    for (size_t j = 0; j < k; ++j) {
      const int f = feature_indices[j];
      DFS_CHECK(f >= 0 && f < num_features());
      sources_f32[j] = columns_f32_[f].data();
    }
    GatherTiled(sources_f32, n, k, block_rows, out->MutableData());
    return;
  }
  // DFS_THREAD_LOCAL_OK: per-thread gather scratch; the dataset is shared.
  thread_local std::vector<const double*> sources;
  sources.resize(k);  // DFS_ALLOC_OK: reusable thread-local scratch
  for (size_t j = 0; j < k; ++j) {
    sources[j] = Column(feature_indices[j]).data();
  }
  GatherTiled(sources, n, k, block_rows, out->MutableData());
}

void Dataset::BuildF32Mirror() {
  if (has_f32_mirror()) return;
  columns_f32_.resize(columns_.size());
  for (size_t f = 0; f < columns_.size(); ++f) {
    const std::vector<double>& column = columns_[f];
    columns_f32_[f].resize(column.size());
    for (size_t r = 0; r < column.size(); ++r) {
      columns_f32_[f][r] = static_cast<float>(column[r]);
    }
  }
}

std::vector<int> Dataset::AllFeatures() const {
  std::vector<int> indices(num_features());
  std::iota(indices.begin(), indices.end(), 0);
  return indices;
}

Dataset Dataset::SelectRows(const std::vector<int>& row_indices) const {
  Dataset subset;
  subset.name_ = name_;
  subset.feature_names_ = feature_names_;
  subset.columns_.resize(columns_.size());
  for (size_t f = 0; f < columns_.size(); ++f) {
    subset.columns_[f].reserve(row_indices.size());
    for (int r : row_indices) {
      DFS_CHECK(r >= 0 && r < num_rows());
      subset.columns_[f].push_back(columns_[f][r]);
    }
  }
  subset.labels_.reserve(row_indices.size());
  subset.groups_.reserve(row_indices.size());
  for (int r : row_indices) {
    subset.labels_.push_back(labels_[r]);
    subset.groups_.push_back(groups_[r]);
  }
  return subset;
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  double positives = 0.0;
  for (int label : labels_) positives += label;
  return positives / static_cast<double>(labels_.size());
}

}  // namespace dfs::data
