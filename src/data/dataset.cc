#include "data/dataset.h"

#include <numeric>

namespace dfs::data {

StatusOr<Dataset> Dataset::Create(std::string name,
                                  std::vector<std::string> feature_names,
                                  std::vector<std::vector<double>> columns,
                                  std::vector<int> labels,
                                  std::vector<int> groups) {
  if (feature_names.size() != columns.size()) {
    return InvalidArgumentError("feature_names/columns size mismatch");
  }
  if (labels.size() != groups.size()) {
    return InvalidArgumentError("labels/groups size mismatch");
  }
  for (const auto& column : columns) {
    if (column.size() != labels.size()) {
      return InvalidArgumentError("column length does not match labels");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return InvalidArgumentError("labels must be binary (0/1)");
    }
  }
  for (int group : groups) {
    if (group != 0 && group != 1) {
      return InvalidArgumentError("groups must be binary (0/1)");
    }
  }
  Dataset dataset;
  dataset.name_ = std::move(name);
  dataset.feature_names_ = std::move(feature_names);
  dataset.columns_ = std::move(columns);
  dataset.labels_ = std::move(labels);
  dataset.groups_ = std::move(groups);
  return dataset;
}

linalg::Matrix Dataset::ToMatrix(
    const std::vector<int>& feature_indices) const {
  linalg::Matrix matrix;
  GatherInto(feature_indices, &matrix);
  return matrix;
}

void Dataset::GatherInto(const std::vector<int>& feature_indices,
                         linalg::Matrix* out) const {
  DFS_CHECK(out != nullptr);
  const int n = num_rows();
  const size_t k = feature_indices.size();
  out->Resize(n, static_cast<int>(k));
  double* dst = out->MutableData();
  for (size_t j = 0; j < k; ++j) {
    // One bounds check per column; the element loop is a contiguous read
    // of the source column with a stride-k write.
    const std::vector<double>& column = Column(feature_indices[j]);
    const double* src = column.data();
    double* cell = dst + j;
    for (int r = 0; r < n; ++r, cell += k) *cell = src[r];
  }
}

std::vector<int> Dataset::AllFeatures() const {
  std::vector<int> indices(num_features());
  std::iota(indices.begin(), indices.end(), 0);
  return indices;
}

Dataset Dataset::SelectRows(const std::vector<int>& row_indices) const {
  Dataset subset;
  subset.name_ = name_;
  subset.feature_names_ = feature_names_;
  subset.columns_.resize(columns_.size());
  for (size_t f = 0; f < columns_.size(); ++f) {
    subset.columns_[f].reserve(row_indices.size());
    for (int r : row_indices) {
      DFS_CHECK(r >= 0 && r < num_rows());
      subset.columns_[f].push_back(columns_[f][r]);
    }
  }
  subset.labels_.reserve(row_indices.size());
  subset.groups_.reserve(row_indices.size());
  for (int r : row_indices) {
    subset.labels_.push_back(labels_[r]);
    subset.groups_.push_back(groups_[r]);
  }
  return subset;
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  double positives = 0.0;
  for (int label : labels_) positives += label;
  return positives / static_cast<double>(labels_.size());
}

}  // namespace dfs::data
