#include "data/feature_construction.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace dfs::data {
namespace {

// Product column for pair (a, b), min-max rescaled into [0, 1]; empty when
// the product is constant.
std::vector<double> ScaledProduct(const Dataset& dataset, int a, int b) {
  const int n = dataset.num_rows();
  std::vector<double> product(n);
  for (int r = 0; r < n; ++r) {
    product[r] = dataset.Value(r, a) * dataset.Value(r, b);
  }
  auto [lo_it, hi_it] = std::minmax_element(product.begin(), product.end());
  if (*hi_it <= *lo_it) return {};
  const double lo = *lo_it;
  const double hi = *hi_it;
  for (double& v : product) v = (v - lo) / (hi - lo);
  return product;
}

StatusOr<Dataset> WithProductColumns(
    const Dataset& dataset, const std::vector<std::pair<int, int>>& pairs,
    std::vector<std::vector<double>> product_columns) {
  std::vector<std::string> names = dataset.feature_names();
  std::vector<std::vector<double>> columns;
  columns.reserve(dataset.num_features() + pairs.size());
  for (int f = 0; f < dataset.num_features(); ++f) {
    columns.push_back(dataset.Column(f));
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    names.push_back(dataset.feature_names()[pairs[i].first] + "*" +
                    dataset.feature_names()[pairs[i].second]);
    columns.push_back(std::move(product_columns[i]));
  }
  return Dataset::Create(dataset.name() + "+products", std::move(names),
                         std::move(columns), dataset.labels(),
                         dataset.groups());
}

}  // namespace

StatusOr<Dataset> ConstructProductFeatures(
    const Dataset& dataset, const FeatureConstructionOptions& options,
    ProductFeaturePlan* plan) {
  const int d = dataset.num_features();
  const int n = dataset.num_rows();
  if (n == 0) return InvalidArgumentError("empty dataset");

  const int budget = options.max_constructed > 0
                         ? options.max_constructed
                         : std::min(d * (d - 1) / 2, 4 * d);

  std::vector<double> labels(dataset.labels().begin(),
                             dataset.labels().end());
  // Parent correlations, reused for the gain criterion.
  std::vector<double> parent_correlation(d);
  for (int f = 0; f < d; ++f) {
    parent_correlation[f] =
        std::fabs(PearsonCorrelation(dataset.Column(f), labels));
  }

  struct Candidate {
    std::pair<int, int> pair;
    double gain;
    std::vector<double> column;
  };
  std::vector<Candidate> candidates;
  for (int a = 0; a < d; ++a) {
    for (int b = a + 1; b < d; ++b) {
      std::vector<double> column = ScaledProduct(dataset, a, b);
      if (column.empty()) continue;  // constant product carries nothing
      // Only keep pairs whose *product* correlates with the label beyond
      // either parent alone (the multiplicative-signal criterion).
      const double correlation =
          std::fabs(PearsonCorrelation(column, labels));
      const double gain = correlation - std::max(parent_correlation[a],
                                                 parent_correlation[b]);
      if (gain >= options.min_gain) {
        candidates.push_back({{a, b}, gain, std::move(column)});
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.gain > y.gain;
                   });
  if (static_cast<int>(candidates.size()) > budget) {
    candidates.resize(budget);
  }

  std::vector<std::pair<int, int>> pairs;
  std::vector<std::vector<double>> columns;
  for (auto& candidate : candidates) {
    pairs.push_back(candidate.pair);
    columns.push_back(std::move(candidate.column));
  }
  if (plan != nullptr) plan->pairs = pairs;
  return WithProductColumns(dataset, pairs, std::move(columns));
}

StatusOr<Dataset> ApplyProductFeatures(const Dataset& dataset,
                                       const ProductFeaturePlan& plan) {
  if (dataset.num_rows() == 0) return InvalidArgumentError("empty dataset");
  std::vector<std::vector<double>> columns;
  for (const auto& [a, b] : plan.pairs) {
    if (a < 0 || b < 0 || a >= dataset.num_features() ||
        b >= dataset.num_features()) {
      return InvalidArgumentError("plan pair out of range");
    }
    std::vector<double> column = ScaledProduct(dataset, a, b);
    if (column.empty()) {
      // Constant on this split: keep schema alignment with an all-zero
      // column.
      column.assign(dataset.num_rows(), 0.0);
    }
    columns.push_back(std::move(column));
  }
  return WithProductColumns(dataset, plan.pairs, std::move(columns));
}

}  // namespace dfs::data
