#include "core/engine.h"

#include <algorithm>

#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "ml/dp/dp_classifier.h"
#include "ml/grid_search.h"
#include "ml/permutation_importance.h"
#include "obs/trace.h"

namespace dfs::core {
namespace {

/// Engine-wide instruments, resolved once (hot path then touches only
/// atomics). Per-strategy instruments are resolved per Run instead.
struct EngineMetrics {
  obs::Counter& runs;
  obs::Counter& successes;
  obs::Counter& cancellations;
  obs::Counter& evaluations;
  obs::Counter& parallel_evaluations;
  obs::Counter& cache_hits;
  obs::Counter& train_failures;
  obs::Histogram& run_seconds;
  obs::Histogram& evaluation_seconds;
  obs::Histogram& fit_seconds;
  obs::Histogram& cancel_latency_seconds;
  obs::Histogram& batch_size;

  // DFS_ALLOC_BOUNDARY: one-time static initialization of the
  // instrument references; every later call returns the same object.
  static EngineMetrics& Get() DFS_ALLOC_BOUNDARY {
    auto& registry = obs::MetricsRegistry::Global();
    static EngineMetrics* metrics = new EngineMetrics{
        registry.counter("engine.runs"),
        registry.counter("engine.successes"),
        registry.counter("engine.cancellations"),
        registry.counter("engine.evaluations"),
        registry.counter("engine.parallel_evaluations"),
        registry.counter("engine.cache_hits"),
        registry.counter("engine.train_failures"),
        registry.histogram("engine.run_seconds"),
        registry.histogram("engine.evaluation_seconds"),
        registry.histogram("engine.fit_seconds"),
        registry.histogram("engine.cancel_latency_seconds"),
        // Candidate counts, not latencies: power-of-two buckets cover the
        // sweep widths strategies actually submit.
        registry.histogram("engine.batch_size",
                           {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
    };
    return *metrics;
  }
};

}  // namespace

DfsEngine::DfsEngine(MlScenario scenario, const EngineOptions& options)
    : scenario_(std::move(scenario)),
      options_(options),
      rng_(options.seed),
      batch_threads_(options.num_threads > 0 ? options.num_threads
                                             : HardwareThreadBudget()) {
  if (F32Active()) {
    // Build the f32 column mirrors up front, before any concurrent
    // GatherInto traffic (BuildF32Mirror is not thread-safe). Only the
    // measurement splits are mirrored; training always gathers f64.
    scenario_.split.validation.BuildF32Mirror();
    scenario_.split.test.BuildF32Mirror();
  }
}

bool DfsEngine::F32Active() const {
  return options_.use_f32_eval &&
         !scenario_.constraint_set.min_safety.has_value();
}

int DfsEngine::num_features() const {
  return scenario_.split.train.num_features();
}

int DfsEngine::max_feature_count() const {
  return scenario_.constraint_set.MaxFeatureCount(num_features());
}

const constraints::ConstraintSet& DfsEngine::constraint_set() const {
  return scenario_.constraint_set;
}

const data::Dataset& DfsEngine::train_data() const {
  return scenario_.split.train;
}

bool DfsEngine::ExternallyCancelled() const {
  const bool cancelled =
      options_.stop_token != nullptr &&
      options_.stop_token->load(std::memory_order_relaxed);
  // First observation starts the cancellation-latency clock: the serve
  // promise is "a cancelled job returns within about one evaluation", and
  // engine.cancel_latency_seconds is that promise measured. Batch workers
  // poll concurrently, so the one-time stamp is mutex-guarded behind an
  // atomic fast path.
  if (cancelled && !cancel_seen_.load(std::memory_order_acquire)) {
    util::MutexLock lock(cancel_mu_);
    if (!cancel_observed_.has_value()) cancel_observed_.emplace();
    cancel_seen_.store(true, std::memory_order_release);
  }
  return cancelled;
}

bool DfsEngine::ShouldStop() const {
  if (ExternallyCancelled()) return true;
  // In utility mode a satisfying subset does not end the search: the budget
  // is spent maximizing F1 subject to the constraints (Eq. 2).
  if (options_.maximize_f1_utility) return deadline_.Expired();
  return success_found_ || deadline_.Expired();
}

double DfsEngine::RemainingSeconds() const {
  return std::max(0.0, deadline_.RemainingSeconds());
}

Rng& DfsEngine::rng() { return rng_; }

uint64_t DfsEngine::EvalSeed(const fs::FeatureMask& mask) const {
  // SplitMix64 finalizer over (run seed, mask hash): a well-mixed stream per
  // mask, deterministic across thread counts and evaluation order, and
  // distinct from the DP-classifier seed (seed ^ hash) used in TrainModel.
  uint64_t z = options_.seed + 0x9E3779B97F4A7C15ULL * fs::MaskHash(mask);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::unique_ptr<DfsEngine::EvalScratch> DfsEngine::AcquireScratch() {
  {
    util::MutexLock lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      auto scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<EvalScratch>();
}

void DfsEngine::ReleaseScratch(std::unique_ptr<EvalScratch> scratch) {
  if (scratch == nullptr) return;
  scratch->validation_gathered = false;
  util::MutexLock lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

StatusOr<std::unique_ptr<ml::Classifier>> DfsEngine::TrainModel(
    const std::vector<int>& features, EvalScratch& scratch) {
  obs::ScopedTimer fit_timer(EngineMetrics::Get().fit_seconds);
  const auto& split = scenario_.split;
  scratch.validation_gathered = false;
  split.train.GatherInto(features, &scratch.train_x);
  const auto& train_y = split.train.labels();
  const bool is_private =
      scenario_.constraint_set.privacy_epsilon.has_value();
  const double epsilon =
      scenario_.constraint_set.privacy_epsilon.value_or(0.0);

  std::vector<ml::Hyperparameters> grid;
  if (options_.use_hpo) {
    grid = ml::HyperparameterGrid(scenario_.model);
  } else {
    grid.push_back(ml::Hyperparameters());
  }
  // Validation is gathered only when the HPO loop actually scores on it;
  // the gather is then reused by Measure via scratch.validation_gathered.
  const bool f32 = F32Active();
  if (grid.size() > 1) {
    if (f32) {
      split.validation.GatherInto(features, &scratch.validation_x32);
    } else {
      split.validation.GatherInto(features, &scratch.validation_x);
    }
    scratch.validation_gathered = true;
  }

  std::unique_ptr<ml::Classifier> best_model;
  double best_f1 = -1.0;
  for (const auto& params : grid) {
    std::unique_ptr<ml::Classifier> model =
        is_private
            ? ml::CreateDpClassifier(scenario_.model, params, epsilon,
                                     options_.seed ^ fs::MaskHash(
                                         fs::IndicesToMask(num_features(),
                                                           features)))
            : ml::CreateClassifier(scenario_.model, params);
    DFS_RETURN_IF_ERROR(model->Fit(scratch.train_x, train_y));
    if (grid.size() == 1) return model;
    if (f32) {
      model->PredictBatch32(scratch.validation_x32, &scratch.predictions);
    } else {
      model->PredictBatch(scratch.validation_x, &scratch.predictions);
    }
    const double f1 =
        metrics::F1Score(split.validation.labels(), scratch.predictions);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_model = std::move(model);
    }
  }
  if (best_model == nullptr) return InternalError("no model trained");
  return best_model;
}

constraints::MetricValues DfsEngine::Measure(const ml::Classifier& model,
                                             const std::vector<int>& features,
                                             const data::Dataset& split,
                                             const linalg::Matrix& x, Rng& rng,
                                             EvalScratch& scratch) {
  constraints::MetricValues values;
  values.selected_features = static_cast<int>(features.size());
  values.total_features = num_features();
  values.feature_fraction =
      static_cast<double>(features.size()) / std::max(1, num_features());

  model.PredictBatch(x, &scratch.predictions);
  values.f1 = metrics::F1Score(split.labels(), scratch.predictions);
  if (scenario_.constraint_set.min_equal_opportunity.has_value()) {
    values.equal_opportunity = metrics::EqualOpportunity(
        split.labels(), scratch.predictions, split.groups());
  }
  if (scenario_.constraint_set.min_safety.has_value()) {
    values.safety = metrics::EmpiricalRobustness(model, x, split.labels(),
                                                 rng, options_.robustness);
  }
  return values;
}

constraints::MetricValues DfsEngine::Measure32(
    const ml::Classifier& model, const std::vector<int>& features,
    const data::Dataset& split, const linalg::Matrix32& x,
    EvalScratch& scratch) {
  // F32Active() rules out the safety constraint, whose attack needs an
  // f64 matrix to perturb; everything else measures off hard predictions.
  DFS_DCHECK(!scenario_.constraint_set.min_safety.has_value());
  constraints::MetricValues values;
  values.selected_features = static_cast<int>(features.size());
  values.total_features = num_features();
  values.feature_fraction =
      static_cast<double>(features.size()) / std::max(1, num_features());

  model.PredictBatch32(x, &scratch.predictions);
  values.f1 = metrics::F1Score(split.labels(), scratch.predictions);
  if (scenario_.constraint_set.min_equal_opportunity.has_value()) {
    values.equal_opportunity = metrics::EqualOpportunity(
        split.labels(), scratch.predictions, split.groups());
  }
  return values;
}

DfsEngine::EvaluatedMask DfsEngine::EvaluateUncached(
    const fs::FeatureMask& mask, const std::vector<int>& features) {
  EngineMetrics& metrics = EngineMetrics::Get();
  EvaluatedMask result;
  fs::EvalOutcome& outcome = result.outcome;

  Stopwatch eval_stopwatch;
  ScratchLease scratch(*this);
  auto model = TrainModel(features, *scratch);
  if (!model.ok()) {
    DFS_LOG(WARNING) << "training failed: " << model.status().ToString();
    metrics.train_failures.Increment();
    return result;
  }
  // Per-evaluation RNG stream (robustness attacks): split from the run seed
  // by mask so the measured values are identical no matter which thread —
  // or how many threads — ran the evaluation.
  Rng eval_rng(EvalSeed(mask));

  outcome.evaluated = true;
  // Under HPO the TrainModel loop already gathered validation for this
  // feature set; otherwise gather it here — exactly once either way.
  const bool f32 = F32Active();
  if (!scratch->validation_gathered) {
    if (f32) {
      scenario_.split.validation.GatherInto(features,
                                            &scratch->validation_x32);
    } else {
      scenario_.split.validation.GatherInto(features, &scratch->validation_x);
    }
  }
  outcome.validation =
      f32 ? Measure32(**model, features, scenario_.split.validation,
                      scratch->validation_x32, *scratch)
          : Measure(**model, features, scenario_.split.validation,
                    scratch->validation_x, eval_rng, *scratch);
  outcome.distance = scenario_.constraint_set.Distance(outcome.validation);
  outcome.objective = scenario_.constraint_set.Objective(
      outcome.validation, options_.maximize_f1_utility);
  outcome.satisfied_validation =
      scenario_.constraint_set.Satisfied(outcome.validation);

  // Figure-2 workflow: only subsets that satisfy validation are confirmed
  // on test, so the test gather happens only behind this gate. (Repeated
  // test-set checking is the paper's protocol; the test metrics are
  // reported, not searched over, except for this gate.)
  if (outcome.satisfied_validation) {
    if (f32) {
      scenario_.split.test.GatherInto(features, &scratch->test_x32);
      result.test_values = Measure32(**model, features, scenario_.split.test,
                                     scratch->test_x32, *scratch);
    } else {
      scenario_.split.test.GatherInto(features, &scratch->test_x);
      result.test_values = Measure(**model, features, scenario_.split.test,
                                   scratch->test_x, eval_rng, *scratch);
    }
    result.have_test_values = true;
    outcome.success = scenario_.constraint_set.Satisfied(result.test_values);
  }

  // Wall-clock of the evaluation proper (train + measure + confirm);
  // reduction-side bookkeeping is excluded, cache hits never get here.
  outcome.seconds = eval_stopwatch.ElapsedSeconds();
  metrics.evaluation_seconds.Record(outcome.seconds);
  if (strategy_eval_seconds_ != nullptr) {
    strategy_eval_seconds_->Record(outcome.seconds);
  }
  return result;
}

void DfsEngine::RecordOutcome(const fs::FeatureMask& mask,
                              const EvaluatedMask& result,
                              bool charge_evaluation) {
  const fs::EvalOutcome& outcome = result.outcome;
  if (charge_evaluation) {
    ++result_.evaluations;
    EngineMetrics::Get().evaluations.Increment();
    if (strategy_evaluations_ != nullptr) strategy_evaluations_->Increment();
  }

  // Track the best subset for result reporting / failure analysis.
  const bool improves = outcome.objective < best_objective_;
  const bool first_success = outcome.success && !success_found_;
  // After a success, the recorded subset is only replaced by *better
  // successful* subsets (relevant in utility mode, where search continues).
  if (first_success ||
      (improves && (!success_found_ ||
                    (options_.maximize_f1_utility && outcome.success)))) {
    best_objective_ = outcome.objective;
    result_.selected = mask;
    result_.validation_values = outcome.validation;
    result_.best_distance_validation = outcome.distance;
    if (result.have_test_values) {
      result_.test_values = result.test_values;
      result_.best_distance_test =
          scenario_.constraint_set.Distance(result.test_values);
      result_.test_f1 = result.test_values.f1;
    } else {
      result_.best_distance_test = 1e18;  // recomputed at end of Run
      result_.test_f1 = 0.0;
    }
  }
  if (outcome.success && !success_found_) {
    success_found_ = true;
    result_.success = true;
    result_.search_seconds = stopwatch_.ElapsedSeconds();
  }

  if (options_.record_trace && charge_evaluation) {
    TracePoint point;
    point.seconds = stopwatch_.ElapsedSeconds();
    point.selected_features = fs::CountSelected(mask);
    point.objective = outcome.objective;
    point.distance = outcome.distance;
    point.satisfied_validation = outcome.satisfied_validation;
    point.success = outcome.success;
    result_.trace.push_back(point);
  }
}

void DfsEngine::EvaluateSlot(const fs::FeatureMask& mask, BatchSlot& slot) {
  if (deadline_.Expired() || ExternallyCancelled()) {
    slot.kind = SlotKind::kSkipped;
    return;
  }
  if (static_cast<int>(mask.size()) != num_features()) {
    DFS_LOG(WARNING) << "mask size mismatch";
    slot.kind = SlotKind::kSkipped;
    return;
  }
  const std::vector<int> features = fs::MaskToIndices(mask);
  if (features.empty()) {
    slot.kind = SlotKind::kSkipped;
    return;
  }

  if (options_.enable_eval_cache) {
    switch (cache_.Acquire(mask, &slot.result.outcome)) {
      case ShardedEvalCache::Acquired::kHit:
        slot.kind = SlotKind::kCacheHit;
        return;
      case ShardedEvalCache::Acquired::kAbandoned:
        // The concurrent owner failed; training is deterministic per mask,
        // so retrying would fail the same way. Report unevaluated.
        slot.kind = SlotKind::kAbandoned;
        return;
      case ShardedEvalCache::Acquired::kOwner:
        break;
    }
    // We own the in-flight L1 slot from here: the guard abandons it if we
    // unwind without resolving, so waiters never block behind a dead owner.
    ShardedEvalCache::OwnerGuard owner(&cache_, mask);

    // L2: the shared cross-run cache, keyed to this evaluation context by
    // the serve layer. Lookup never blocks (a pending entry reads as a
    // miss), so holding L1 ownership across this probe cannot deadlock.
    ShardedEvalCache* shared = options_.shared_cache.get();
    if (shared != nullptr && shared->Lookup(mask, &slot.result.outcome)) {
      owner.Publish(slot.result.outcome);
      slot.kind = SlotKind::kSharedHit;
      return;
    }

    slot.result = EvaluateUncached(mask, features);
    if (slot.result.outcome.evaluated) {
      owner.Publish(slot.result.outcome);
      if (shared != nullptr) shared->InsertPublished(mask, slot.result.outcome);
    } else {
      owner.Abandon();  // failed trainings are not cached
    }
    slot.kind = slot.result.outcome.evaluated ? SlotKind::kEvaluated
                                              : SlotKind::kSkipped;
    return;
  }

  slot.result = EvaluateUncached(mask, features);
  slot.kind = slot.result.outcome.evaluated ? SlotKind::kEvaluated
                                            : SlotKind::kSkipped;
}

void DfsEngine::ReduceSlot(const fs::FeatureMask& mask, const BatchSlot& slot,
                           bool parallel) {
  EngineMetrics& metrics = EngineMetrics::Get();
  switch (slot.kind) {
    case SlotKind::kCacheHit:
      ++result_.cache_hits;
      metrics.cache_hits.Increment();
      break;
    case SlotKind::kSharedHit:
      // A hit for the counters, but the mask is new to this run, so the
      // outcome still drives best-subset tracking and success recording —
      // without charging an evaluation (no training happened).
      ++result_.cache_hits;
      metrics.cache_hits.Increment();
      RecordOutcome(mask, slot.result, /*charge_evaluation=*/false);
      break;
    case SlotKind::kEvaluated:
      if (parallel) metrics.parallel_evaluations.Increment();
      RecordOutcome(mask, slot.result, /*charge_evaluation=*/true);
      break;
    case SlotKind::kSkipped:
    case SlotKind::kAbandoned:
      break;
  }
}

fs::EvalOutcome DfsEngine::Evaluate(const fs::FeatureMask& mask) {
  BatchSlot slot;
  EvaluateSlot(mask, slot);
  ReduceSlot(mask, slot, /*parallel=*/false);
  return slot.result.outcome;
}

std::vector<fs::EvalOutcome> DfsEngine::EvaluateBatch(
    std::span<const fs::FeatureMask> masks) {
  EngineMetrics& metrics = EngineMetrics::Get();
  std::vector<fs::EvalOutcome> outcomes(masks.size());
  if (masks.empty()) return outcomes;
  metrics.batch_size.Record(static_cast<double>(masks.size()));

  const int threads =
      std::min(batch_threads_, static_cast<int>(masks.size()));
  if (threads <= 1) {
    for (size_t i = 0; i < masks.size(); ++i) outcomes[i] = Evaluate(masks[i]);
    return outcomes;
  }

  EnsurePool();
  std::vector<BatchSlot> slots(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) {
    pool_->Schedule([this, &mask = masks[i], &slot = slots[i]] {
      EvaluateSlot(mask, slot);
    });
  }
  pool_->Wait();

  // Reduce in submission order: the stateful bookkeeping (best-subset
  // tracking, success recording, cache-hit totals, trace) is applied
  // exactly as a serial sweep would have, so parallel runs select
  // byte-identical masks (tie-breaks unchanged).
  for (size_t i = 0; i < masks.size(); ++i) {
    ReduceSlot(masks[i], slots[i], /*parallel=*/true);
    outcomes[i] = slots[i].result.outcome;
  }
  return outcomes;
}

void DfsEngine::EnsurePool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(batch_threads_);
}

StatusOr<std::vector<double>> DfsEngine::FittedImportances(
    const fs::FeatureMask& mask) {
  const std::vector<int> features = fs::MaskToIndices(mask);
  if (features.empty()) return InvalidArgumentError("empty mask");
  // Default parameters: importances guide the search; HPO-quality fits are
  // not worth the cost here (matching RFE practice).
  const bool is_private = scenario_.constraint_set.privacy_epsilon.has_value();
  std::unique_ptr<ml::Classifier> model =
      is_private ? ml::CreateDpClassifier(
                       scenario_.model, ml::Hyperparameters(),
                       *scenario_.constraint_set.privacy_epsilon,
                       options_.seed)
                 : ml::CreateClassifier(scenario_.model,
                                        ml::Hyperparameters());
  ScratchLease scratch(*this);
  scenario_.split.train.GatherInto(features, &scratch->train_x);
  DFS_RETURN_IF_ERROR(
      model->Fit(scratch->train_x, scenario_.split.train.labels()));
  auto native = model->FeatureImportances();
  if (native.has_value()) return *native;
  // Fallback: permutation importance on the validation split (the costly
  // path the paper attributes to NB under RFE).
  scenario_.split.validation.GatherInto(features, &scratch->validation_x);
  return ml::PermutationImportance(*model, scratch->validation_x,
                                   scenario_.split.validation.labels(),
                                   /*repeats=*/1, rng_);
}

RunResult DfsEngine::Run(fs::FeatureSelectionStrategy& strategy) {
  // Reset per-run state.
  result_ = RunResult();
  cache_.Clear();
  success_found_ = false;
  best_objective_ = 1e18;
  cancel_observed_.reset();
  cancel_seen_.store(false, std::memory_order_release);
  deadline_ =
      Deadline::AfterSeconds(scenario_.constraint_set.max_search_seconds);
  stopwatch_.Restart();

  // Per-strategy instruments ("strategy.<label>.*") attribute evaluation
  // counts and timing to the strategy driving this run; the lookup cost is
  // once per run, not per evaluation.
  EngineMetrics& metrics = EngineMetrics::Get();
  auto& registry = obs::MetricsRegistry::Global();
  const std::string label = obs::SanitizeLabel(strategy.name());
  strategy_evaluations_ =
      &registry.counter("strategy." + label + ".evaluations");
  strategy_eval_seconds_ =
      &registry.histogram("strategy." + label + ".evaluation_seconds");
  registry.counter("strategy." + label + ".runs").Increment();
  metrics.runs.Increment();
  obs::TraceSpan run_span("engine.run", strategy.name());

  strategy.Run(*this);

  strategy_evaluations_ = nullptr;
  strategy_eval_seconds_ = nullptr;

  result_.cancelled = ExternallyCancelled();
  metrics.run_seconds.Record(stopwatch_.ElapsedSeconds());
  registry.histogram("strategy." + label + ".run_seconds")
      .Record(stopwatch_.ElapsedSeconds());
  if (result_.cancelled) {
    metrics.cancellations.Increment();
    if (cancel_observed_.has_value()) {
      metrics.cancel_latency_seconds.Record(
          cancel_observed_->ElapsedSeconds());
    }
  }
  if (!success_found_) {
    result_.search_seconds = stopwatch_.ElapsedSeconds();
    result_.timed_out = !result_.cancelled && deadline_.Expired();
    result_.search_exhausted = !result_.timed_out && !result_.cancelled;
  } else if (options_.maximize_f1_utility) {
    // Utility mode runs to the deadline; the reported time is the full
    // search time.
    result_.search_seconds = stopwatch_.ElapsedSeconds();
  }
  // Measure the best subset on test once when the search never did: the
  // Table-4 failure analysis, and successes served from a shared L2 cache
  // (only the validation-side outcome is spilled — docs/CACHE.md). A
  // cancelled run skips it — cancellation promises a prompt return, and
  // the extra training would delay it by another evaluation.
  if (!result_.cancelled && !result_.selected.empty() &&
      fs::CountSelected(result_.selected) > 0 &&
      result_.best_distance_test >= 1e17) {
    const std::vector<int> features = fs::MaskToIndices(result_.selected);
    ScratchLease scratch(*this);
    auto model = TrainModel(features, *scratch);
    if (model.ok()) {
      Rng final_rng(EvalSeed(result_.selected));
      if (F32Active()) {
        scenario_.split.test.GatherInto(features, &scratch->test_x32);
        result_.test_values =
            Measure32(**model, features, scenario_.split.test,
                      scratch->test_x32, *scratch);
      } else {
        scenario_.split.test.GatherInto(features, &scratch->test_x);
        result_.test_values =
            Measure(**model, features, scenario_.split.test, scratch->test_x,
                    final_rng, *scratch);
      }
      result_.best_distance_test =
          scenario_.constraint_set.Distance(result_.test_values);
      result_.test_f1 = result_.test_values.f1;
    }
  }
  if (result_.success) metrics.successes.Increment();
  return result_;
}

}  // namespace dfs::core
