#include "core/engine.h"

#include <algorithm>

#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "ml/dp/dp_classifier.h"
#include "ml/grid_search.h"
#include "ml/permutation_importance.h"
#include "obs/trace.h"

namespace dfs::core {
namespace {

/// Engine-wide instruments, resolved once (hot path then touches only
/// atomics). Per-strategy instruments are resolved per Run instead.
struct EngineMetrics {
  obs::Counter& runs;
  obs::Counter& successes;
  obs::Counter& cancellations;
  obs::Counter& evaluations;
  obs::Counter& cache_hits;
  obs::Counter& train_failures;
  obs::Histogram& run_seconds;
  obs::Histogram& evaluation_seconds;
  obs::Histogram& fit_seconds;
  obs::Histogram& cancel_latency_seconds;

  static EngineMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static EngineMetrics* metrics = new EngineMetrics{
        registry.counter("engine.runs"),
        registry.counter("engine.successes"),
        registry.counter("engine.cancellations"),
        registry.counter("engine.evaluations"),
        registry.counter("engine.cache_hits"),
        registry.counter("engine.train_failures"),
        registry.histogram("engine.run_seconds"),
        registry.histogram("engine.evaluation_seconds"),
        registry.histogram("engine.fit_seconds"),
        registry.histogram("engine.cancel_latency_seconds"),
    };
    return *metrics;
  }
};

}  // namespace

DfsEngine::DfsEngine(MlScenario scenario, const EngineOptions& options)
    : scenario_(std::move(scenario)), options_(options), rng_(options.seed) {}

int DfsEngine::num_features() const {
  return scenario_.split.train.num_features();
}

int DfsEngine::max_feature_count() const {
  return scenario_.constraint_set.MaxFeatureCount(num_features());
}

const constraints::ConstraintSet& DfsEngine::constraint_set() const {
  return scenario_.constraint_set;
}

const data::Dataset& DfsEngine::train_data() const {
  return scenario_.split.train;
}

bool DfsEngine::ExternallyCancelled() const {
  const bool cancelled =
      options_.stop_token != nullptr &&
      options_.stop_token->load(std::memory_order_relaxed);
  // First observation starts the cancellation-latency clock: the serve
  // promise is "a cancelled job returns within about one evaluation", and
  // engine.cancel_latency_seconds is that promise measured.
  if (cancelled && !cancel_observed_.has_value()) {
    cancel_observed_.emplace();
  }
  return cancelled;
}

bool DfsEngine::ShouldStop() const {
  if (ExternallyCancelled()) return true;
  // In utility mode a satisfying subset does not end the search: the budget
  // is spent maximizing F1 subject to the constraints (Eq. 2).
  if (options_.maximize_f1_utility) return deadline_.Expired();
  return success_found_ || deadline_.Expired();
}

double DfsEngine::RemainingSeconds() const {
  return std::max(0.0, deadline_.RemainingSeconds());
}

Rng& DfsEngine::rng() { return rng_; }

StatusOr<std::unique_ptr<ml::Classifier>> DfsEngine::TrainModel(
    const std::vector<int>& features) {
  obs::ScopedTimer fit_timer(EngineMetrics::Get().fit_seconds);
  const auto& split = scenario_.split;
  const linalg::Matrix train_x = split.train.ToMatrix(features);
  const auto& train_y = split.train.labels();
  const bool is_private =
      scenario_.constraint_set.privacy_epsilon.has_value();
  const double epsilon =
      scenario_.constraint_set.privacy_epsilon.value_or(0.0);

  std::vector<ml::Hyperparameters> grid;
  if (options_.use_hpo) {
    grid = ml::HyperparameterGrid(scenario_.model);
  } else {
    grid.push_back(ml::Hyperparameters());
  }

  std::unique_ptr<ml::Classifier> best_model;
  double best_f1 = -1.0;
  const linalg::Matrix validation_x = split.validation.ToMatrix(features);
  for (const auto& params : grid) {
    std::unique_ptr<ml::Classifier> model =
        is_private
            ? ml::CreateDpClassifier(scenario_.model, params, epsilon,
                                     options_.seed ^ fs::MaskHash(
                                         fs::IndicesToMask(num_features(),
                                                           features)))
            : ml::CreateClassifier(scenario_.model, params);
    DFS_RETURN_IF_ERROR(model->Fit(train_x, train_y));
    if (grid.size() == 1) return model;
    const double f1 = metrics::F1Score(
        split.validation.labels(), model->PredictBatch(validation_x));
    if (f1 > best_f1) {
      best_f1 = f1;
      best_model = std::move(model);
    }
  }
  if (best_model == nullptr) return InternalError("no model trained");
  return best_model;
}

constraints::MetricValues DfsEngine::Measure(const ml::Classifier& model,
                                             const std::vector<int>& features,
                                             const data::Dataset& split) {
  constraints::MetricValues values;
  values.selected_features = static_cast<int>(features.size());
  values.total_features = num_features();
  values.feature_fraction =
      static_cast<double>(features.size()) / std::max(1, num_features());

  const linalg::Matrix x = split.ToMatrix(features);
  const std::vector<int> predictions = model.PredictBatch(x);
  values.f1 = metrics::F1Score(split.labels(), predictions);
  if (scenario_.constraint_set.min_equal_opportunity.has_value()) {
    values.equal_opportunity =
        metrics::EqualOpportunity(split.labels(), predictions, split.groups());
  }
  if (scenario_.constraint_set.min_safety.has_value()) {
    values.safety = metrics::EmpiricalRobustness(model, x, split.labels(),
                                                 rng_, options_.robustness);
  }
  return values;
}

fs::EvalOutcome DfsEngine::Evaluate(const fs::FeatureMask& mask) {
  EngineMetrics& metrics = EngineMetrics::Get();
  fs::EvalOutcome outcome;
  if (deadline_.Expired() || ExternallyCancelled()) return outcome;
  if (static_cast<int>(mask.size()) != num_features()) {
    DFS_LOG(WARNING) << "mask size mismatch";
    return outcome;
  }
  const std::vector<int> features = fs::MaskToIndices(mask);
  if (features.empty()) return outcome;

  if (options_.enable_eval_cache) {
    auto it = cache_.find(mask);
    if (it != cache_.end()) {
      ++result_.cache_hits;
      metrics.cache_hits.Increment();
      return it->second;
    }
  }

  Stopwatch eval_stopwatch;
  auto model = TrainModel(features);
  if (!model.ok()) {
    DFS_LOG(WARNING) << "training failed: " << model.status().ToString();
    metrics.train_failures.Increment();
    return outcome;
  }
  ++result_.evaluations;
  metrics.evaluations.Increment();
  if (strategy_evaluations_ != nullptr) strategy_evaluations_->Increment();

  outcome.evaluated = true;
  outcome.validation = Measure(**model, features, scenario_.split.validation);
  outcome.distance = scenario_.constraint_set.Distance(outcome.validation);
  outcome.objective = scenario_.constraint_set.Objective(
      outcome.validation, options_.maximize_f1_utility);
  outcome.satisfied_validation =
      scenario_.constraint_set.Satisfied(outcome.validation);

  // Figure-2 workflow: only subsets that satisfy validation are confirmed
  // on test. (Repeated test-set checking is the paper's protocol; the test
  // metrics are reported, not searched over, except for this gate.)
  constraints::MetricValues test_values;
  bool have_test_values = false;
  if (outcome.satisfied_validation) {
    test_values = Measure(**model, features, scenario_.split.test);
    have_test_values = true;
    outcome.success = scenario_.constraint_set.Satisfied(test_values);
  }

  // Wall-clock of the evaluation proper (train + measure + confirm);
  // the bookkeeping below is excluded, cache hits never get here.
  outcome.seconds = eval_stopwatch.ElapsedSeconds();
  metrics.evaluation_seconds.Record(outcome.seconds);
  if (strategy_eval_seconds_ != nullptr) {
    strategy_eval_seconds_->Record(outcome.seconds);
  }

  // Track the best subset for result reporting / failure analysis.
  const bool improves = outcome.objective < best_objective_;
  const bool first_success = outcome.success && !success_found_;
  // After a success, the recorded subset is only replaced by *better
  // successful* subsets (relevant in utility mode, where search continues).
  if (first_success ||
      (improves && (!success_found_ ||
                    (options_.maximize_f1_utility && outcome.success)))) {
    best_objective_ = outcome.objective;
    result_.selected = mask;
    result_.validation_values = outcome.validation;
    result_.best_distance_validation = outcome.distance;
    if (have_test_values) {
      result_.test_values = test_values;
      result_.best_distance_test =
          scenario_.constraint_set.Distance(test_values);
      result_.test_f1 = test_values.f1;
    } else {
      result_.best_distance_test = 1e18;  // recomputed at end of Run
      result_.test_f1 = 0.0;
    }
  }
  if (outcome.success && !success_found_) {
    success_found_ = true;
    result_.success = true;
    result_.search_seconds = stopwatch_.ElapsedSeconds();
  }

  if (options_.record_trace) {
    TracePoint point;
    point.seconds = stopwatch_.ElapsedSeconds();
    point.selected_features = static_cast<int>(features.size());
    point.objective = outcome.objective;
    point.distance = outcome.distance;
    point.satisfied_validation = outcome.satisfied_validation;
    point.success = outcome.success;
    result_.trace.push_back(point);
  }
  if (options_.enable_eval_cache) cache_.emplace(mask, outcome);
  return outcome;
}

StatusOr<std::vector<double>> DfsEngine::FittedImportances(
    const fs::FeatureMask& mask) {
  const std::vector<int> features = fs::MaskToIndices(mask);
  if (features.empty()) return InvalidArgumentError("empty mask");
  // Default parameters: importances guide the search; HPO-quality fits are
  // not worth the cost here (matching RFE practice).
  const bool is_private = scenario_.constraint_set.privacy_epsilon.has_value();
  std::unique_ptr<ml::Classifier> model =
      is_private ? ml::CreateDpClassifier(
                       scenario_.model, ml::Hyperparameters(),
                       *scenario_.constraint_set.privacy_epsilon,
                       options_.seed)
                 : ml::CreateClassifier(scenario_.model,
                                        ml::Hyperparameters());
  const linalg::Matrix train_x = scenario_.split.train.ToMatrix(features);
  DFS_RETURN_IF_ERROR(model->Fit(train_x, scenario_.split.train.labels()));
  auto native = model->FeatureImportances();
  if (native.has_value()) return *native;
  // Fallback: permutation importance on the validation split (the costly
  // path the paper attributes to NB under RFE).
  const linalg::Matrix validation_x =
      scenario_.split.validation.ToMatrix(features);
  return ml::PermutationImportance(*model, validation_x,
                                   scenario_.split.validation.labels(),
                                   /*repeats=*/1, rng_);
}

RunResult DfsEngine::Run(fs::FeatureSelectionStrategy& strategy) {
  // Reset per-run state.
  result_ = RunResult();
  cache_.clear();
  success_found_ = false;
  best_objective_ = 1e18;
  cancel_observed_.reset();
  deadline_ =
      Deadline::AfterSeconds(scenario_.constraint_set.max_search_seconds);
  stopwatch_.Restart();

  // Per-strategy instruments ("strategy.<label>.*") attribute evaluation
  // counts and timing to the strategy driving this run; the lookup cost is
  // once per run, not per evaluation.
  EngineMetrics& metrics = EngineMetrics::Get();
  auto& registry = obs::MetricsRegistry::Global();
  const std::string label = obs::SanitizeLabel(strategy.name());
  strategy_evaluations_ =
      &registry.counter("strategy." + label + ".evaluations");
  strategy_eval_seconds_ =
      &registry.histogram("strategy." + label + ".evaluation_seconds");
  registry.counter("strategy." + label + ".runs").Increment();
  metrics.runs.Increment();
  obs::TraceSpan run_span("engine.run", strategy.name());

  strategy.Run(*this);

  strategy_evaluations_ = nullptr;
  strategy_eval_seconds_ = nullptr;

  result_.cancelled = ExternallyCancelled();
  metrics.run_seconds.Record(stopwatch_.ElapsedSeconds());
  registry.histogram("strategy." + label + ".run_seconds")
      .Record(stopwatch_.ElapsedSeconds());
  if (result_.cancelled) {
    metrics.cancellations.Increment();
    if (cancel_observed_.has_value()) {
      metrics.cancel_latency_seconds.Record(
          cancel_observed_->ElapsedSeconds());
    }
  }
  if (!success_found_) {
    result_.search_seconds = stopwatch_.ElapsedSeconds();
    result_.timed_out = !result_.cancelled && deadline_.Expired();
    result_.search_exhausted = !result_.timed_out && !result_.cancelled;
    // Failure analysis: measure the best subset on test once (Table 4). A
    // cancelled run skips it — cancellation promises a prompt return, and
    // the extra training would delay it by another evaluation.
    if (!result_.cancelled && !result_.selected.empty() &&
        fs::CountSelected(result_.selected) > 0 &&
        result_.best_distance_test >= 1e17) {
      const std::vector<int> features = fs::MaskToIndices(result_.selected);
      auto model = TrainModel(features);
      if (model.ok()) {
        result_.test_values =
            Measure(**model, features, scenario_.split.test);
        result_.best_distance_test =
            scenario_.constraint_set.Distance(result_.test_values);
        result_.test_f1 = result_.test_values.f1;
      }
    }
  } else if (options_.maximize_f1_utility) {
    // Utility mode runs to the deadline; the reported time is the full
    // search time.
    result_.search_seconds = stopwatch_.ElapsedSeconds();
  }
  if (result_.success) metrics.successes.Increment();
  return result_;
}

}  // namespace dfs::core
