#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/math_util.h"

namespace dfs::core {
namespace {

constexpr double kDistanceSentinel = 1e17;

// Satisfiable scenarios grouped by dataset name.
std::map<std::string, std::vector<const ScenarioRecord*>>
SatisfiableByDataset(const std::vector<ScenarioRecord>& records) {
  std::map<std::string, std::vector<const ScenarioRecord*>> groups;
  for (const auto& record : records) {
    if (record.Satisfiable()) groups[record.dataset_name].push_back(&record);
  }
  return groups;
}

// The strictly fastest successful time on a scenario; negative if none.
double FastestTime(const ScenarioRecord& record) {
  double fastest = -1.0;
  for (const auto& outcome : record.outcomes) {
    if (!outcome.success) continue;
    if (fastest < 0.0 || outcome.seconds < fastest) fastest = outcome.seconds;
  }
  return fastest;
}

}  // namespace

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd stats;
  stats.mean = Mean(values);
  stats.stddev = SampleStdDev(values);
  return stats;
}

std::map<std::string, double> CoverageByDataset(
    const std::vector<ScenarioRecord>& records, fs::StrategyId id) {
  std::map<std::string, double> coverage;
  for (const auto& [dataset, group] : SatisfiableByDataset(records)) {
    int solved = 0;
    for (const ScenarioRecord* record : group) {
      const StrategyOutcome* outcome = record->OutcomeOf(id);
      if (outcome != nullptr && outcome->success) ++solved;
    }
    coverage[dataset] = static_cast<double>(solved) / group.size();
  }
  return coverage;
}

MeanStd CoverageStats(const std::vector<ScenarioRecord>& records,
                      fs::StrategyId id) {
  std::vector<double> values;
  for (const auto& [unused, value] : CoverageByDataset(records, id)) {
    values.push_back(value);
  }
  return ComputeMeanStd(values);
}

MeanStd FastestStats(const std::vector<ScenarioRecord>& records,
                     fs::StrategyId id) {
  std::vector<double> values;
  for (const auto& [unused, group] : SatisfiableByDataset(records)) {
    int fastest_count = 0;
    for (const ScenarioRecord* record : group) {
      const double fastest = FastestTime(*record);
      const StrategyOutcome* outcome = record->OutcomeOf(id);
      if (fastest >= 0.0 && outcome != nullptr && outcome->success &&
          outcome->seconds <= fastest) {
        ++fastest_count;
      }
    }
    values.push_back(static_cast<double>(fastest_count) / group.size());
  }
  return ComputeMeanStd(values);
}

double FilteredCoverage(
    const std::vector<ScenarioRecord>& records, fs::StrategyId id,
    const std::function<bool(const ScenarioRecord&)>& filter) {
  int total = 0;
  int solved = 0;
  for (const auto& record : records) {
    if (!record.Satisfiable() || !filter(record)) continue;
    ++total;
    const StrategyOutcome* outcome = record.OutcomeOf(id);
    if (outcome != nullptr && outcome->success) ++solved;
  }
  return total > 0 ? static_cast<double>(solved) / total : 0.0;
}

FailureDistances FailureDistanceStats(
    const std::vector<ScenarioRecord>& records, fs::StrategyId id) {
  FailureDistances result;
  std::vector<double> validation, test;
  for (const auto& record : records) {
    if (!record.Satisfiable()) continue;
    const StrategyOutcome* outcome = record.OutcomeOf(id);
    if (outcome == nullptr || outcome->success) continue;
    ++result.failed_cases;
    if (outcome->distance_validation < kDistanceSentinel) {
      validation.push_back(outcome->distance_validation);
    }
    if (outcome->distance_test < kDistanceSentinel) {
      test.push_back(outcome->distance_test);
    }
  }
  result.validation = ComputeMeanStd(validation);
  result.test = ComputeMeanStd(test);
  return result;
}

MeanStd NormalizedF1Stats(const std::vector<ScenarioRecord>& records,
                          fs::StrategyId id) {
  // normalized mean F1 (Section 6.3): per scenario normalize by the best
  // strategy's F1, average per dataset, then across datasets.
  std::map<std::string, std::vector<double>> per_dataset;
  for (const auto& record : records) {
    double best = 0.0;
    for (const auto& outcome : record.outcomes) {
      best = std::max(best, outcome.test_f1);
    }
    if (best <= 0.0) continue;
    const StrategyOutcome* outcome = record.OutcomeOf(id);
    if (outcome == nullptr) continue;
    per_dataset[record.dataset_name].push_back(outcome->test_f1 / best);
  }
  std::vector<double> dataset_means;
  for (const auto& [unused, values] : per_dataset) {
    dataset_means.push_back(Mean(values));
  }
  return ComputeMeanStd(dataset_means);
}

namespace {

// Generic greedy set construction: at each step add the candidate that
// maximizes `pooled_metric` of the grown set.
std::vector<CombinationStep> GreedyCombination(
    const std::vector<ScenarioRecord>& records,
    const std::vector<fs::StrategyId>& candidates,
    const std::function<bool(const ScenarioRecord&,
                             const std::set<fs::StrategyId>&)>& counts) {
  auto pooled_stats = [&](const std::set<fs::StrategyId>& chosen) {
    std::vector<double> values;
    for (const auto& [unused, group] : SatisfiableByDataset(records)) {
      int hits = 0;
      for (const ScenarioRecord* record : group) {
        if (counts(*record, chosen)) ++hits;
      }
      values.push_back(static_cast<double>(hits) / group.size());
    }
    return ComputeMeanStd(values);
  };

  std::vector<CombinationStep> steps;
  std::set<fs::StrategyId> chosen;
  std::vector<fs::StrategyId> remaining = candidates;
  while (!remaining.empty()) {
    fs::StrategyId best_id = remaining.front();
    MeanStd best_stats;
    double best_mean = -1.0;
    for (fs::StrategyId id : remaining) {
      std::set<fs::StrategyId> trial = chosen;
      trial.insert(id);
      const MeanStd stats = pooled_stats(trial);
      if (stats.mean > best_mean) {
        best_mean = stats.mean;
        best_stats = stats;
        best_id = id;
      }
    }
    chosen.insert(best_id);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_id));
    steps.push_back({best_id, best_stats});
    if (best_stats.mean >= 1.0 - 1e-12) break;  // full coverage reached
  }
  return steps;
}

}  // namespace

std::vector<CombinationStep> GreedyCoverageCombination(
    const std::vector<ScenarioRecord>& records,
    const std::vector<fs::StrategyId>& candidates) {
  return GreedyCombination(
      records, candidates,
      [](const ScenarioRecord& record, const std::set<fs::StrategyId>& chosen) {
        for (fs::StrategyId id : chosen) {
          const StrategyOutcome* outcome = record.OutcomeOf(id);
          if (outcome != nullptr && outcome->success) return true;
        }
        return false;
      });
}

std::vector<CombinationStep> GreedyFastestCombination(
    const std::vector<ScenarioRecord>& records,
    const std::vector<fs::StrategyId>& candidates) {
  return GreedyCombination(
      records, candidates,
      [](const ScenarioRecord& record, const std::set<fs::StrategyId>& chosen) {
        const double fastest = FastestTime(record);
        if (fastest < 0.0) return false;
        for (fs::StrategyId id : chosen) {
          const StrategyOutcome* outcome = record.OutcomeOf(id);
          if (outcome != nullptr && outcome->success &&
              outcome->seconds <= fastest) {
            return true;
          }
        }
        return false;
      });
}

}  // namespace dfs::core
