#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "data/benchmark_suite.h"
#include "data/split.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "metrics/robustness.h"
#include "ml/cross_validation.h"
#include "ml/dp/dp_classifier.h"
#include "util/math_util.h"

namespace dfs::core {

std::vector<std::string> ScenarioFeatures::Names() {
  return {
      "log_rows",         "log_features",     "model_is_lr",
      "model_is_nb",      "model_is_dt",      "min_f1",
      "max_feature_fraction", "min_eo",       "min_safety",
      "privacy_epsilon",  "has_privacy",      "log_max_search_seconds",
      "landmark_f1_slack", "landmark_eo_slack", "landmark_safety_slack",
      "landmark_dp_f1_slack",
  };
}

StatusOr<ScenarioFeatures> FeaturizeScenario(
    const data::Dataset& dataset, ml::ModelKind model,
    const constraints::ConstraintSet& constraint_set,
    const OptimizerOptions& options) {
  Rng rng(options.seed ^ 0xFEA7FEA7ULL);

  ScenarioFeatures features;
  auto& v = features.values;
  v.push_back(std::log(1.0 + dataset.num_rows()));
  v.push_back(std::log(1.0 + dataset.num_features()));
  v.push_back(model == ml::ModelKind::kLogisticRegression ? 1.0 : 0.0);
  v.push_back(model == ml::ModelKind::kNaiveBayes ? 1.0 : 0.0);
  v.push_back(model == ml::ModelKind::kDecisionTree ? 1.0 : 0.0);
  // Raw constraint thresholds, with the "no constraint" defaults of the
  // template (Listing 1): fraction 1 (all features allowed), EO/safety 0,
  // privacy off.
  v.push_back(constraint_set.min_f1);
  v.push_back(constraint_set.max_feature_fraction.value_or(1.0));
  v.push_back(constraint_set.min_equal_opportunity.value_or(0.0));
  v.push_back(constraint_set.min_safety.value_or(0.0));
  v.push_back(constraint_set.privacy_epsilon.value_or(0.0));
  v.push_back(constraint_set.privacy_epsilon.has_value() ? 1.0 : 0.0);
  v.push_back(std::log(constraint_set.max_search_seconds));

  // Subsampling-based landmarking (Fürnkranz & Petrak 2001): estimate how
  // far the full feature set is from each threshold on a small stratified
  // sample, as the hardness prior ρ_hardness.
  const data::Dataset sample =
      data::StratifiedSample(dataset, options.landmark_sample_size, rng);
  const linalg::Matrix x = sample.ToMatrix(sample.AllFeatures());

  const auto prototype = ml::CreateClassifier(model, ml::Hyperparameters());
  double cv_f1 = 0.0;
  {
    auto result = ml::CrossValidatedF1(*prototype, x, sample.labels(),
                                       options.landmark_folds, rng);
    if (result.ok()) cv_f1 = result.value();
  }
  v.push_back(cv_f1 - constraint_set.min_f1);

  // EO / safety landmarks: fit once on the sample and measure in-sample
  // (cheap, biased, but comparable across scenarios — it is a prior).
  double eo_landmark = 1.0;
  double safety_landmark = 1.0;
  {
    auto fitted = prototype->Clone();
    if (fitted->Fit(x, sample.labels()).ok()) {
      const std::vector<int> predictions = fitted->PredictBatch(x);
      eo_landmark = metrics::EqualOpportunity(sample.labels(), predictions,
                                              sample.groups());
      if (constraint_set.min_safety.has_value()) {
        metrics::RobustnessOptions robustness;
        robustness.max_attacked_rows = 8;
        robustness.attack.max_queries = 60;
        safety_landmark = metrics::EmpiricalRobustness(
            *fitted, x, sample.labels(), rng, robustness);
      }
    }
  }
  v.push_back(eo_landmark - constraint_set.min_equal_opportunity.value_or(0.0));
  v.push_back(safety_landmark - constraint_set.min_safety.value_or(0.0));

  // DP hardness: CV F1 of the ε-private model when privacy is requested.
  double dp_slack = 0.0;
  if (constraint_set.privacy_epsilon.has_value()) {
    const auto dp_prototype = ml::CreateDpClassifier(
        model, ml::Hyperparameters(), *constraint_set.privacy_epsilon,
        options.seed);
    auto result = ml::CrossValidatedF1(*dp_prototype, x, sample.labels(),
                                       options.landmark_folds, rng);
    const double dp_f1 = result.ok() ? result.value() : 0.0;
    dp_slack = dp_f1 - constraint_set.min_f1;
  }
  v.push_back(dp_slack);

  DFS_CHECK_EQ(v.size(), ScenarioFeatures::Names().size());
  return features;
}

Status DfsOptimizer::Train(const std::vector<TrainingExample>& examples,
                           const std::vector<fs::StrategyId>& strategies) {
  if (examples.empty()) return InvalidArgumentError("no training examples");
  strategies_ = strategies;
  models_.clear();
  constant_probability_.clear();

  const int n = static_cast<int>(examples.size());
  const int d = static_cast<int>(examples.front().features.values.size());
  linalg::Matrix x(n, d);
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(examples[i].features.values.size()) != d) {
      return InvalidArgumentError("inconsistent feature vector sizes");
    }
    for (int c = 0; c < d; ++c) {
      x(i, c) = examples[i].features.values[c];
    }
  }

  for (fs::StrategyId id : strategies_) {
    std::vector<int> y(n, 0);
    int positives = 0;
    for (int i = 0; i < n; ++i) {
      auto it = examples[i].outcomes.find(id);
      y[i] = (it != examples[i].outcomes.end() && it->second) ? 1 : 0;
      positives += y[i];
    }
    success_prior_[id] = static_cast<double>(positives) / n;
    if (positives == 0 || positives == n) {
      // Degenerate label: remember the constant empirical probability.
      constant_probability_[id] = positives == 0 ? 0.0 : 1.0;
      continue;
    }
    ml::RandomForestOptions forest = options_.forest;
    forest.seed = options_.seed + static_cast<uint64_t>(id) * 131;
    auto model = std::make_unique<ml::RandomForest>(forest);
    DFS_RETURN_IF_ERROR(model->Fit(x, y));
    models_[id] = std::move(model);
  }
  return OkStatus();
}

StatusOr<std::map<fs::StrategyId, double>>
DfsOptimizer::PredictProbabilities(const ScenarioFeatures& features) const {
  if (strategies_.empty()) return FailedPreconditionError("not trained");
  std::map<fs::StrategyId, double> probabilities;
  for (fs::StrategyId id : strategies_) {
    auto model_it = models_.find(id);
    double probability;
    if (model_it != models_.end()) {
      probability = model_it->second->PredictProba(features.values);
      // Shrink toward the strategy's global training success rate; with
      // small meta-training pools the per-scenario forest is noisy.
      auto prior_it = success_prior_.find(id);
      if (prior_it != success_prior_.end()) {
        probability = (1.0 - options_.prior_blend) * probability +
                      options_.prior_blend * prior_it->second;
      }
    } else {
      auto constant_it = constant_probability_.find(id);
      probability = constant_it != constant_probability_.end()
                        ? constant_it->second
                        : 0.0;
    }
    probabilities[id] = probability;
  }
  return probabilities;
}

StatusOr<fs::StrategyId> DfsOptimizer::Choose(
    const ScenarioFeatures& features) const {
  DFS_ASSIGN_OR_RETURN(auto probabilities, PredictProbabilities(features));
  fs::StrategyId best = strategies_.front();
  double best_probability = -1.0;
  for (fs::StrategyId id : strategies_) {
    if (probabilities[id] > best_probability) {
      best_probability = probabilities[id];
      best = id;
    }
  }
  return best;
}

StatusOr<std::string> DfsOptimizer::Serialize() const {
  if (strategies_.empty()) return FailedPreconditionError("not trained");
  std::ostringstream out;
  // max_digits10 so priors/constants round-trip exactly: a restored
  // optimizer must produce bit-identical probabilities (the router's
  // snapshot-replay contract compares them byte-for-byte).
  out << std::setprecision(17);
  out << "dfs-optimizer v1\n";
  out << options_.landmark_sample_size << " " << options_.landmark_folds
      << " " << options_.prior_blend << " " << options_.seed << "\n";
  out << strategies_.size() << "\n";
  for (fs::StrategyId id : strategies_) {
    out << fs::StrategyIdToString(id) << "\n";
    const double prior =
        success_prior_.count(id) ? success_prior_.at(id) : 0.0;
    auto model_it = models_.find(id);
    if (model_it != models_.end()) {
      const std::string forest = model_it->second->Serialize();
      out << "model " << prior << " " << forest.size() << "\n" << forest;
    } else {
      const double constant = constant_probability_.count(id)
                                  ? constant_probability_.at(id)
                                  : 0.0;
      out << "constant " << prior << " " << constant << "\n";
    }
  }
  return out.str();
}

StatusOr<DfsOptimizer> DfsOptimizer::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "dfs-optimizer v1") {
    return InvalidArgumentError("not a serialized DFS optimizer");
  }
  OptimizerOptions options;
  size_t num_strategies = 0;
  in >> options.landmark_sample_size >> options.landmark_folds >>
      options.prior_blend >> options.seed >> num_strategies;
  in.ignore();
  if (!in || num_strategies == 0 || num_strategies > 256) {
    return InvalidArgumentError("corrupt optimizer header");
  }
  DfsOptimizer optimizer(options);
  for (size_t s = 0; s < num_strategies; ++s) {
    std::string name;
    std::getline(in, name);
    DFS_ASSIGN_OR_RETURN(fs::StrategyId id, fs::StrategyIdFromString(name));
    optimizer.strategies_.push_back(id);
    std::string kind;
    double prior = 0.0;
    in >> kind >> prior;
    optimizer.success_prior_[id] = prior;
    if (kind == "model") {
      size_t forest_bytes = 0;
      in >> forest_bytes;
      in.ignore();
      if (!in || forest_bytes > 1u << 28) {
        return InvalidArgumentError("corrupt forest length");
      }
      std::string blob(forest_bytes, '\0');
      in.read(blob.data(), static_cast<std::streamsize>(forest_bytes));
      if (!in) return InvalidArgumentError("truncated forest blob");
      DFS_ASSIGN_OR_RETURN(ml::RandomForest forest,
                           ml::RandomForest::Deserialize(blob));
      optimizer.models_[id] =
          std::make_unique<ml::RandomForest>(std::move(forest));
    } else if (kind == "constant") {
      double constant = 0.0;
      in >> constant;
      in.ignore();
      if (!in) return InvalidArgumentError("corrupt constant record");
      optimizer.constant_probability_[id] = constant;
    } else {
      return InvalidArgumentError("unknown record kind: " + kind);
    }
  }
  return optimizer;
}

Status DfsOptimizer::SaveToFile(const std::string& path) const {
  DFS_ASSIGN_OR_RETURN(const std::string text, Serialize());
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot write file: " + path);
  out << text;
  return OkStatus();
}

StatusOr<DfsOptimizer> DfsOptimizer::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

uint64_t FnvMixBytes(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  return FnvMixBytes(hash, &value, sizeof(value));
}

uint64_t FnvMix(uint64_t hash, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(hash, bits);
}

}  // namespace

uint64_t ScenarioFingerprint(const std::string& dataset_name, int num_rows,
                             int num_features, ml::ModelKind model,
                             const constraints::ConstraintSet& constraint_set) {
  uint64_t hash = FnvMixBytes(kFnvOffset, dataset_name.data(),
                              dataset_name.size());
  hash = FnvMix(hash, static_cast<uint64_t>(num_rows));
  hash = FnvMix(hash, static_cast<uint64_t>(num_features));
  hash = FnvMix(hash, static_cast<uint64_t>(model));
  hash = FnvMix(hash, constraint_set.min_f1);
  // Absent optionals hash as -1, outside every threshold's valid range,
  // so "unset" never collides with a real 0 threshold.
  hash = FnvMix(hash, constraint_set.max_feature_fraction.value_or(-1.0));
  hash = FnvMix(hash, constraint_set.min_equal_opportunity.value_or(-1.0));
  hash = FnvMix(hash, constraint_set.min_safety.value_or(-1.0));
  hash = FnvMix(hash, constraint_set.privacy_epsilon.value_or(-1.0));
  hash = FnvMix(hash, constraint_set.max_search_seconds);
  return hash;
}

std::vector<DfsOptimizer::TrainingExample> ExamplesFromOutcomeRecords(
    const std::vector<OutcomeRecord>& records) {
  std::vector<DfsOptimizer::TrainingExample> examples;
  std::map<uint64_t, size_t> index_by_fingerprint;
  for (const OutcomeRecord& record : records) {
    auto [it, inserted] =
        index_by_fingerprint.try_emplace(record.fingerprint, examples.size());
    if (inserted) {
      DfsOptimizer::TrainingExample example;
      example.features = record.features;
      examples.push_back(std::move(example));
    }
    examples[it->second].outcomes[record.strategy] = record.success;
  }
  return examples;
}

StatusOr<std::vector<DfsOptimizer::TrainingExample>> BuildTrainingExamples(
    const ExperimentPool& pool, const OptimizerOptions& options) {
  std::vector<OutcomeRecord> flat;
  // Datasets regenerate deterministically from the pool config.
  std::vector<std::optional<data::Dataset>> datasets(data::BenchmarkSize());
  uint64_t ordinal = 0;
  for (const auto& record : pool.records()) {
    auto& slot = datasets[record.dataset_index];
    if (!slot.has_value()) {
      DFS_ASSIGN_OR_RETURN(
          auto dataset,
          data::GenerateBenchmarkDataset(record.dataset_index,
                                         pool.config().seed,
                                         pool.config().row_scale));
      slot = std::move(dataset);
    }
    DFS_ASSIGN_OR_RETURN(
        ScenarioFeatures features,
        FeaturizeScenario(*slot, record.model, record.constraint_set,
                          options));
    // The pool's training unit is the record: salt the fingerprint with the
    // record ordinal so two records describing the same scenario shape stay
    // separate examples (LODO indexes examples parallel to records).
    ++ordinal;
    const uint64_t fingerprint =
        ScenarioFingerprint(record.dataset_name, slot->num_rows(),
                            slot->num_features(), record.model,
                            record.constraint_set) ^
        (ordinal * 0x9E3779B97F4A7C15ULL);
    if (record.outcomes.empty()) {
      // Keep the record as an (all-failure) example, exactly as before the
      // OutcomeRecord pathway: the baseline id is outside every Train call's
      // strategy set, so only the example's presence matters.
      flat.push_back({fingerprint, features,
                      fs::StrategyId::kOriginalFeatureSet, false});
      continue;
    }
    for (const auto& outcome : record.outcomes) {
      flat.push_back({fingerprint, features, outcome.id, outcome.success});
    }
  }
  return ExamplesFromOutcomeRecords(flat);
}

namespace {

struct MeanStdAccumulator {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
  double MeanValue() const { return Mean(values); }
  double StdValue() const { return SampleStdDev(values); }
};

// Precision/recall/F1 of binary predictions against actual outcomes.
void BinaryPrf(const std::vector<int>& actual, const std::vector<int>& predicted,
               double* precision, double* recall, double* f1) {
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (predicted[i] == 1 && actual[i] == 1) ++tp;
    if (predicted[i] == 1 && actual[i] == 0) ++fp;
    if (predicted[i] == 0 && actual[i] == 1) ++fn;
  }
  *precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  *recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  *f1 = *precision + *recall > 0
            ? 2.0 * *precision * *recall / (*precision + *recall)
            : 0.0;
}

}  // namespace

StatusOr<OptimizerLodoResult> EvaluateOptimizerLodo(
    const ExperimentPool& pool, const OptimizerOptions& options) {
  DFS_ASSIGN_OR_RETURN(auto examples, BuildTrainingExamples(pool, options));
  const auto& records = pool.records();
  DFS_CHECK_EQ(examples.size(), records.size());

  // The optimizer chooses among the real strategies, never the baseline.
  std::vector<fs::StrategyId> strategies;
  for (fs::StrategyId id : pool.config().strategies) {
    if (id != fs::StrategyId::kOriginalFeatureSet) strategies.push_back(id);
  }
  if (strategies.empty()) {
    return InvalidArgumentError("pool has no selectable strategies");
  }

  std::set<std::string> datasets;
  for (const auto& record : records) datasets.insert(record.dataset_name);
  if (datasets.size() < 2) {
    return FailedPreconditionError(
        "leave-one-dataset-out needs at least two datasets in the pool");
  }

  OptimizerLodoResult result;
  MeanStdAccumulator coverage_acc, fastest_acc;
  std::map<fs::StrategyId, MeanStdAccumulator> precision_acc, recall_acc,
      f1_acc;

  for (const std::string& held_out : datasets) {
    std::vector<DfsOptimizer::TrainingExample> train_examples;
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].dataset_name != held_out) {
        train_examples.push_back(examples[i]);
      }
    }
    if (train_examples.empty()) continue;
    DfsOptimizer optimizer(options);
    DFS_RETURN_IF_ERROR(optimizer.Train(train_examples, strategies));

    int satisfiable = 0, covered = 0, fastest_hits = 0;
    std::map<fs::StrategyId, std::vector<int>> actual, predicted;
    for (size_t i = 0; i < records.size(); ++i) {
      const ScenarioRecord& record = records[i];
      if (record.dataset_name != held_out) continue;
      DFS_ASSIGN_OR_RETURN(auto probabilities,
                           optimizer.PredictProbabilities(examples[i].features));
      // Per-strategy success prediction at the 0.5 threshold (Table 9).
      for (fs::StrategyId id : strategies) {
        const StrategyOutcome* outcome = record.OutcomeOf(id);
        if (outcome == nullptr) continue;
        actual[id].push_back(outcome->success ? 1 : 0);
        predicted[id].push_back(probabilities[id] >= 0.5 ? 1 : 0);
      }
      if (!record.Satisfiable()) continue;
      ++satisfiable;
      // The optimizer's pick.
      fs::StrategyId chosen = strategies.front();
      double best_probability = -1.0;
      for (fs::StrategyId id : strategies) {
        if (probabilities[id] > best_probability) {
          best_probability = probabilities[id];
          chosen = id;
        }
      }
      const StrategyOutcome* outcome = record.OutcomeOf(chosen);
      if (outcome != nullptr && outcome->success) {
        ++covered;
        double fastest = -1.0;
        for (const auto& other : record.outcomes) {
          if (other.success &&
              (fastest < 0.0 || other.seconds < fastest)) {
            fastest = other.seconds;
          }
        }
        if (outcome->seconds <= fastest) ++fastest_hits;
      }
    }
    if (satisfiable > 0) {
      const double coverage = static_cast<double>(covered) / satisfiable;
      result.coverage_by_dataset[held_out] = coverage;
      coverage_acc.Add(coverage);
      fastest_acc.Add(static_cast<double>(fastest_hits) / satisfiable);
    }
    for (fs::StrategyId id : strategies) {
      if (actual[id].empty()) continue;
      double precision, recall, f1;
      BinaryPrf(actual[id], predicted[id], &precision, &recall, &f1);
      precision_acc[id].Add(precision);
      recall_acc[id].Add(recall);
      f1_acc[id].Add(f1);
    }
  }

  result.coverage_mean = coverage_acc.MeanValue();
  result.coverage_stddev = coverage_acc.StdValue();
  result.fastest_mean = fastest_acc.MeanValue();
  result.fastest_stddev = fastest_acc.StdValue();
  for (fs::StrategyId id : strategies) {
    OptimizerLodoResult::StrategyScores scores;
    scores.precision_mean = precision_acc[id].MeanValue();
    scores.precision_stddev = precision_acc[id].StdValue();
    scores.recall_mean = recall_acc[id].MeanValue();
    scores.recall_stddev = recall_acc[id].StdValue();
    scores.f1_mean = f1_acc[id].MeanValue();
    scores.f1_stddev = f1_acc[id].StdValue();
    result.per_strategy[id] = scores;
  }
  return result;
}

}  // namespace dfs::core
