#ifndef DFS_CORE_SCENARIO_SAMPLER_H_
#define DFS_CORE_SCENARIO_SAMPLER_H_

#include "constraints/constraint_set.h"
#include "ml/classifier.h"
#include "util/rng.h"

namespace dfs::core {

/// Knobs of the constraint-space template (Listing 1). The paper samples
/// max search time in [10 s, 3 h]; this library defaults to a scaled-down
/// window so the full study runs on one machine — the DFS_TIME_SCALE
/// environment variable (read by the harnesses) stretches it back.
struct SamplerOptions {
  double min_search_seconds = 0.04;
  double max_search_seconds = 0.60;
  /// Probability that each optional constraint is present (hp.choice with
  /// two arms in Listing 1).
  double optional_probability = 0.5;
};

/// A draw from the ML-scenario space: dataset x model x constraint set.
struct SampledScenario {
  int dataset_index = 0;
  ml::ModelKind model = ml::ModelKind::kLogisticRegression;
  constraints::ConstraintSet constraint_set;
};

/// Domain-aware randomized "fuzzing" of the scenario space (Section 6.1,
/// following the SQLsmith idea): classifier ~ {LR, DT, NB}; min F1 ~
/// U(0.5, 1); optional max feature fraction ~ U(0, 1); optional min EO and
/// min safety ~ U(0.8, 1); optional privacy ε ~ LogNormal(0, 1); max search
/// time ~ U(min, max seconds).
SampledScenario SampleScenario(int num_datasets, const SamplerOptions& options,
                               Rng& rng);

}  // namespace dfs::core

#endif  // DFS_CORE_SCENARIO_SAMPLER_H_
