#ifndef DFS_CORE_ENGINE_H_
#define DFS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/scenario.h"
#include "fs/eval_context.h"
#include "fs/strategy.h"
#include "metrics/robustness.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace dfs::core {

/// Engine configuration shared across a benchmark run.
struct EngineOptions {
  /// Run the Section-6.1 grid search per evaluation (the "Parameter
  /// Optimization" columns of Table 3); default parameters otherwise.
  bool use_hpo = false;
  /// Eq. (2) utility mode: once constraints hold, keep maximizing F1 until
  /// the budget runs out (the Table-4 utility benchmark).
  bool maximize_f1_utility = false;
  /// Memoize evaluations per feature mask (ablated in bench_micro).
  bool enable_eval_cache = true;
  /// Adversarial-attack configuration for the safety metric.
  metrics::RobustnessOptions robustness;
  /// Seed for evaluation-side randomness (attacks, DP noise, permutation
  /// importances).
  uint64_t seed = 42;
  /// Record one trace point per (uncached) evaluation in RunResult::trace;
  /// off by default to keep benchmark memory flat.
  bool record_trace = false;
  /// External cancellation token. When set and flipped to true by another
  /// thread, the search stops at the next evaluation boundary: ShouldStop()
  /// turns true and Evaluate() refuses further work, so a running Run()
  /// returns within one wrapper evaluation. Used by the serve subsystem to
  /// cancel RUNNING jobs.
  std::shared_ptr<std::atomic<bool>> stop_token;
};

/// One evaluation in a recorded search trace: when it happened, what was
/// proposed, and how close it came (used for convergence analysis and by
/// the CLI's --trace output).
struct TracePoint {
  double seconds = 0.0;           ///< since search start
  int selected_features = 0;
  double objective = 0.0;         ///< Eq. (2) value
  double distance = 0.0;          ///< Eq. (1) value
  bool satisfied_validation = false;
  bool success = false;
};

/// Outcome of running one FS strategy on one ML scenario (one cell of the
/// benchmark).
struct RunResult {
  /// s(Z) != empty-set: a subset satisfied all constraints on validation
  /// and test within the search-time budget.
  bool success = false;
  /// The satisfying subset (success) or the best-objective subset seen.
  fs::FeatureMask selected;
  constraints::MetricValues validation_values;
  constraints::MetricValues test_values;
  /// Wall-clock seconds until success (or until the search ended).
  double search_seconds = 0.0;
  bool timed_out = false;
  /// The run was stopped by EngineOptions::stop_token before finishing.
  bool cancelled = false;
  /// Eq. (1) distances of the best subset — the Table-4 failure analysis.
  double best_distance_validation = 1e18;
  double best_distance_test = 1e18;
  /// Test F1 of the returned subset (Table 4's utility benchmark).
  double test_f1 = 0.0;
  /// The strategy ran out of search space before the deadline (used by the
  /// failure analysis in Section 6.3).
  bool search_exhausted = false;
  int evaluations = 0;
  int cache_hits = 0;
  /// Per-evaluation search trace (only when EngineOptions::record_trace).
  std::vector<TracePoint> trace;
};

/// The DFS engine: implements the Figure-2 workflow. It owns the wrapper
/// evaluation (train [+ HPO] -> validate constraints -> confirm on test),
/// the evaluation cache, the search-time deadline, and success recording;
/// strategies drive it through the fs::EvalContext interface.
class DfsEngine : public fs::EvalContext {
 public:
  /// The scenario is copied: the engine's lifetime is then independent of
  /// the caller's (temporaries are safe to pass).
  DfsEngine(MlScenario scenario, const EngineOptions& options);

  /// Runs `strategy` against the scenario and reports the outcome. Resets
  /// engine state, so one engine can race several strategies sequentially.
  RunResult Run(fs::FeatureSelectionStrategy& strategy);

  // --- fs::EvalContext ------------------------------------------------
  int num_features() const override;
  int max_feature_count() const override;
  const constraints::ConstraintSet& constraint_set() const override;
  const data::Dataset& train_data() const override;
  bool ShouldStop() const override;
  double RemainingSeconds() const override;
  Rng& rng() override;
  fs::EvalOutcome Evaluate(const fs::FeatureMask& mask) override;
  StatusOr<std::vector<double>> FittedImportances(
      const fs::FeatureMask& mask) override;

 private:
  struct MaskHasher {
    size_t operator()(const fs::FeatureMask& mask) const {
      return static_cast<size_t>(fs::MaskHash(mask));
    }
  };

  /// Trains the scenario's model (DP variant when the privacy constraint is
  /// active; grid-searched when HPO is on) on the selected columns.
  StatusOr<std::unique_ptr<ml::Classifier>> TrainModel(
      const std::vector<int>& features);

  /// Measures the constraint metrics of `model` on one split.
  constraints::MetricValues Measure(const ml::Classifier& model,
                                    const std::vector<int>& features,
                                    const data::Dataset& split);

  /// True once the external stop token (if any) has been flipped. Also
  /// stamps the first observation (see cancel_observed_).
  bool ExternallyCancelled() const;

  MlScenario scenario_;
  EngineOptions options_;
  Rng rng_;

  // Per-Run state.
  Deadline deadline_ = Deadline::Infinite();
  Stopwatch stopwatch_;
  bool success_found_ = false;
  RunResult result_;
  double best_objective_ = 1e18;
  std::unordered_map<fs::FeatureMask, fs::EvalOutcome, MaskHasher> cache_;

  // dfs::obs instrumentation (see DESIGN.md §2c). Per-strategy handles are
  // looked up once per Run ("strategy.<label>.*"); null between runs.
  // cancel_observed_ stamps the first time the stop token is seen flipped,
  // so Run can report observation→return cancellation latency; mutable
  // because the observation happens inside const ShouldStop() (the engine
  // runs one strategy on one thread, so there is no concurrent mutation).
  obs::Counter* strategy_evaluations_ = nullptr;
  obs::Histogram* strategy_eval_seconds_ = nullptr;
  mutable std::optional<Stopwatch> cancel_observed_;
};

}  // namespace dfs::core

#endif  // DFS_CORE_ENGINE_H_
