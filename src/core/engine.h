#ifndef DFS_CORE_ENGINE_H_
#define DFS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/eval_cache.h"
#include "core/scenario.h"
#include "fs/eval_context.h"
#include "fs/strategy.h"
#include "metrics/robustness.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dfs::core {

/// Engine configuration shared across a benchmark run.
struct EngineOptions {
  /// Run the Section-6.1 grid search per evaluation (the "Parameter
  /// Optimization" columns of Table 3); default parameters otherwise.
  bool use_hpo = false;
  /// Eq. (2) utility mode: once constraints hold, keep maximizing F1 until
  /// the budget runs out (the Table-4 utility benchmark).
  bool maximize_f1_utility = false;
  /// Memoize evaluations per feature mask (ablated in bench_micro).
  bool enable_eval_cache = true;
  /// Adversarial-attack configuration for the safety metric.
  metrics::RobustnessOptions robustness;
  /// Seed for evaluation-side randomness (attacks, DP noise, permutation
  /// importances).
  uint64_t seed = 42;
  /// Record one trace point per (uncached) evaluation in RunResult::trace;
  /// off by default to keep benchmark memory flat.
  bool record_trace = false;
  /// Opt-in f32 evaluation mode (DESIGN.md §2i): validation/test feature
  /// matrices are gathered as float32 and predictions run the
  /// mixed-precision kernels (f64 model parameters x f32 rows, f64
  /// accumulation). Training always stays f64, so the only deviation from
  /// the default mode is the storage quantization of measured rows —
  /// selections are NOT byte-identical to f64 runs (the §2d contract
  /// binds each mode to itself). Ignored when the safety constraint is
  /// active: the robustness attack perturbs gathered rows in f64.
  bool use_f32_eval = false;
  /// Threads for EvaluateBatch candidate sweeps. 0 = the process-wide
  /// budget (DFS_THREADS env, default hardware_concurrency); 1 = serial.
  /// Parallel runs select byte-identical masks to serial runs — see the
  /// determinism contract in DESIGN.md.
  int num_threads = 0;
  /// External cancellation token. When set and flipped to true by another
  /// thread, the search stops at the next evaluation boundary: ShouldStop()
  /// turns true and Evaluate() refuses further work, so a running Run()
  /// returns within one wrapper evaluation. Used by the serve subsystem to
  /// cancel RUNNING jobs.
  std::shared_ptr<std::atomic<bool>> stop_token;
  /// Optional shared L2 cache consulted behind the engine's private
  /// per-run cache: on an L1 miss the owner probes it (non-blocking
  /// Lookup) before training, and publishes fresh outcomes back into it.
  /// The caller owns keying — attach only a cache whose fingerprint
  /// matches this engine's evaluation context (dataset, model, constraint
  /// set, seed; see EvalCacheOptions::fingerprint), because outcomes are
  /// reused verbatim. Ignored when enable_eval_cache is false. Used by
  /// dfs::serve to share evaluations across jobs and daemon restarts.
  std::shared_ptr<ShardedEvalCache> shared_cache;
};

/// One evaluation in a recorded search trace: when it happened, what was
/// proposed, and how close it came (used for convergence analysis and by
/// the CLI's --trace output).
struct TracePoint {
  double seconds = 0.0;           ///< since search start
  int selected_features = 0;
  double objective = 0.0;         ///< Eq. (2) value
  double distance = 0.0;          ///< Eq. (1) value
  bool satisfied_validation = false;
  bool success = false;
};

/// Outcome of running one FS strategy on one ML scenario (one cell of the
/// benchmark).
struct RunResult {
  /// s(Z) != empty-set: a subset satisfied all constraints on validation
  /// and test within the search-time budget.
  bool success = false;
  /// The satisfying subset (success) or the best-objective subset seen.
  fs::FeatureMask selected;
  constraints::MetricValues validation_values;
  constraints::MetricValues test_values;
  /// Wall-clock seconds until success (or until the search ended).
  double search_seconds = 0.0;
  bool timed_out = false;
  /// The run was stopped by EngineOptions::stop_token before finishing.
  bool cancelled = false;
  /// Eq. (1) distances of the best subset — the Table-4 failure analysis.
  double best_distance_validation = 1e18;
  double best_distance_test = 1e18;
  /// Test F1 of the returned subset (Table 4's utility benchmark).
  double test_f1 = 0.0;
  /// The strategy ran out of search space before the deadline (used by the
  /// failure analysis in Section 6.3).
  bool search_exhausted = false;
  int evaluations = 0;
  int cache_hits = 0;
  /// Per-evaluation search trace (only when EngineOptions::record_trace).
  std::vector<TracePoint> trace;
};

/// The DFS engine: implements the Figure-2 workflow. It owns the wrapper
/// evaluation (train [+ HPO] -> validate constraints -> confirm on test),
/// the evaluation cache, the search-time deadline, and success recording;
/// strategies drive it through the fs::EvalContext interface.
///
/// Concurrency model: one strategy drives the engine from one thread.
/// EvaluateBatch fans the per-mask training/measurement out over an
/// internal pool (EngineOptions::num_threads), but all result reduction —
/// best-subset tracking, success recording, cache-hit accounting, trace —
/// happens on the calling thread in submission order, so a parallel run
/// selects byte-identical masks to a serial one (DESIGN.md has the full
/// ordering/determinism contract).
class DfsEngine : public fs::EvalContext {
 public:
  /// The scenario is copied: the engine's lifetime is then independent of
  /// the caller's (temporaries are safe to pass).
  DfsEngine(MlScenario scenario, const EngineOptions& options);

  /// Runs `strategy` against the scenario and reports the outcome. Resets
  /// engine state, so one engine can race several strategies sequentially.
  RunResult Run(fs::FeatureSelectionStrategy& strategy);

  // --- fs::EvalContext ------------------------------------------------
  int num_features() const override;
  int max_feature_count() const override;
  const constraints::ConstraintSet& constraint_set() const override;
  const data::Dataset& train_data() const override;
  bool ShouldStop() const override;
  double RemainingSeconds() const override;
  Rng& rng() override;
  fs::EvalOutcome Evaluate(const fs::FeatureMask& mask) override;
  std::vector<fs::EvalOutcome> EvaluateBatch(
      std::span<const fs::FeatureMask> masks) override;
  StatusOr<std::vector<double>> FittedImportances(
      const fs::FeatureMask& mask) override;

 private:
  /// An evaluation plus the test-split values the reduction step needs for
  /// result bookkeeping (test metrics are reported, never searched over, so
  /// they stay out of the strategy-facing EvalOutcome).
  struct EvaluatedMask {
    fs::EvalOutcome outcome;
    constraints::MetricValues test_values;
    bool have_test_values = false;
  };

  /// How one slot of a parallel batch resolved; consumed by the in-order
  /// reduction. kSharedHit is a first-in-run mask served from the shared
  /// L2 cache: a cache hit for the counters, but — unlike an L1 kCacheHit,
  /// whose mask was already reduced this run — it still flows through
  /// RecordOutcome for best-subset tracking and success recording.
  enum class SlotKind {
    kSkipped,
    kEvaluated,
    kCacheHit,
    kSharedHit,
    kAbandoned,
  };

  struct BatchSlot {
    EvaluatedMask result;
    SlotKind kind = SlotKind::kSkipped;
  };

  /// Reusable per-evaluation buffers (the "evaluation memory contract",
  /// DESIGN.md §2e). One scratch is leased per in-flight evaluation;
  /// Dataset::GatherInto reshapes the matrices in place and
  /// Classifier::PredictBatch writes into `predictions`, so once every
  /// worker has seen its largest mask the steady-state evaluation path
  /// performs no heap allocation for gathers or batch predictions.
  struct EvalScratch {
    linalg::Matrix train_x;
    linalg::Matrix validation_x;
    linalg::Matrix test_x;
    /// f32 twins of the measurement matrices, used only in f32 eval mode
    /// (train_x has no twin: training is always f64).
    linalg::Matrix32 validation_x32;
    linalg::Matrix32 test_x32;
    std::vector<int> predictions;
    /// Set by TrainModel when the HPO loop already gathered validation_x
    /// (or validation_x32 in f32 mode) for the current feature set;
    /// Measure then skips the second gather.
    bool validation_gathered = false;
  };

  /// RAII lease of one EvalScratch from the engine's pool. Scratches are
  /// recycled, never destroyed, for the engine's lifetime; the pool high-
  /// water mark is the batch concurrency.
  class ScratchLease {
   public:
    explicit ScratchLease(DfsEngine& engine)
        : engine_(engine), scratch_(engine.AcquireScratch()) {}
    ~ScratchLease() { engine_.ReleaseScratch(std::move(scratch_)); }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    EvalScratch& operator*() { return *scratch_; }
    EvalScratch* operator->() { return scratch_.get(); }

   private:
    DfsEngine& engine_;
    std::unique_ptr<EvalScratch> scratch_;
  };

  std::unique_ptr<EvalScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<EvalScratch> scratch);

  /// Trains the scenario's model (DP variant when the privacy constraint is
  /// active; grid-searched when HPO is on) on the selected columns, using
  /// `scratch` for the gathered train (and, under HPO, validation)
  /// matrices. The returned classifier owns all its state — it never
  /// borrows from `scratch`.
  // DFS_ALLOC_BOUNDARY: model construction allocates by design; §2e
  // covers gathers and predictions, not training (DESIGN.md §2k).
  StatusOr<std::unique_ptr<ml::Classifier>> TrainModel(
      const std::vector<int>& features,
      EvalScratch& scratch) DFS_ALLOC_BOUNDARY;

  /// Measures the constraint metrics of `model` on one split whose selected
  /// columns are already gathered in `x`, drawing any evaluation-side
  /// randomness (the robustness attack) from `rng`. Predictions go through
  /// scratch.predictions — no allocation on the steady-state path.
  DFS_HOT constraints::MetricValues Measure(const ml::Classifier& model,
                                            const std::vector<int>& features,
                                            const data::Dataset& split,
                                            const linalg::Matrix& x, Rng& rng,
                                            EvalScratch& scratch);

  /// f32-mode Measure: predictions run PredictBatch32 over the f32 gather.
  /// Never called with the safety constraint active (F32Active guards).
  DFS_HOT constraints::MetricValues Measure32(const ml::Classifier& model,
                                              const std::vector<int>& features,
                                              const data::Dataset& split,
                                              const linalg::Matrix32& x,
                                              EvalScratch& scratch);

  /// True when this engine measures through f32 storage (the option is on
  /// and no safety constraint forces the f64 fallback).
  bool F32Active() const;

  /// Seed of the per-evaluation RNG stream: split deterministically from
  /// the run seed by mask, so an evaluation's randomness is independent of
  /// which thread runs it and of how many ran before it.
  uint64_t EvalSeed(const fs::FeatureMask& mask) const;

  /// The pure per-mask work (train + measure + confirm-on-test). Touches
  /// only immutable run state and atomic obs instruments — safe to call
  /// from batch workers concurrently.
  DFS_HOT EvaluatedMask EvaluateUncached(const fs::FeatureMask& mask,
                                         const std::vector<int>& features);

  /// The stateful reduction for one evaluated mask: evaluation counters,
  /// best-subset tracking, success recording, trace. Caller-thread only,
  /// in submission order. `charge_evaluation` is false for shared-cache
  /// hits: the outcome still drives best-subset/success bookkeeping, but no
  /// training happened, so evaluation counters and the trace stay untouched.
  void RecordOutcome(const fs::FeatureMask& mask, const EvaluatedMask& result,
                     bool charge_evaluation);

  /// Worker body of one parallel batch slot (deadline/cancel check, cache
  /// acquire, evaluate, publish).
  void EvaluateSlot(const fs::FeatureMask& mask, BatchSlot& slot);

  /// Applies one resolved slot to the per-run state (cache-hit accounting
  /// or RecordOutcome). Caller-thread only, in submission order.
  void ReduceSlot(const fs::FeatureMask& mask, const BatchSlot& slot,
                  bool parallel);

  /// Lazily creates the batch pool (first parallel batch of the engine's
  /// lifetime).
  void EnsurePool();

  /// True once the external stop token (if any) has been flipped. Also
  /// stamps the first observation (see cancel_observed_).
  bool ExternallyCancelled() const;

  MlScenario scenario_;
  EngineOptions options_;
  Rng rng_;
  /// Resolved thread budget for EvaluateBatch (>= 1).
  int batch_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  /// Free list of evaluation scratches (leased via ScratchLease);
  /// survives across Runs so repeated searches stay warm.
  util::Mutex scratch_mu_;
  std::vector<std::unique_ptr<EvalScratch>> scratch_pool_
      DFS_GUARDED_BY(scratch_mu_);

  // Per-Run state.
  Deadline deadline_ = Deadline::Infinite();
  Stopwatch stopwatch_;
  bool success_found_ = false;
  RunResult result_;
  double best_objective_ = 1e18;
  ShardedEvalCache cache_;

  // dfs::obs instrumentation (see DESIGN.md §2c). Per-strategy handles are
  // looked up once per Run ("strategy.<label>.*"); null between runs.
  // cancel_observed_ stamps the first time the stop token is seen flipped,
  // so Run can report observation→return cancellation latency. Stamping is
  // guarded by cancel_mu_ (batch workers poll the token concurrently) with
  // cancel_seen_ as the lock-free fast path; Run reads the stamp only after
  // all workers have drained.
  obs::Counter* strategy_evaluations_ = nullptr;
  obs::Histogram* strategy_eval_seconds_ = nullptr;
  mutable std::atomic<bool> cancel_seen_{false};
  mutable util::Mutex cancel_mu_;
  mutable std::optional<Stopwatch> cancel_observed_
      DFS_GUARDED_BY(cancel_mu_);
};

}  // namespace dfs::core

#endif  // DFS_CORE_ENGINE_H_
