#ifndef DFS_CORE_EVAL_CACHE_H_
#define DFS_CORE_EVAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/eval_context.h"
#include "fs/feature_subset.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace dfs::core {

/// Version of the binary spill format written by ShardedEvalCache::Serialize
/// and EvalCacheRegistry::SaveToFile. Bump on any layout change; readers
/// reject other versions. docs/CACHE.md specifies the byte-level layout and
/// states this same number — scripts/check_docs.py keeps the two in sync.
inline constexpr uint32_t kEvalCacheFormatVersion = 1;

/// Construction-time configuration of a ShardedEvalCache.
struct EvalCacheOptions {
  /// Mutex stripes; lookups/inserts for different masks rarely contend.
  int num_shards = 16;
  /// Front each shard with a lock-free blocked Bloom filter so Lookup
  /// answers most negative probes from one relaxed atomic load, never
  /// touching the shard mutex. Advisory only: a false positive falls
  /// through to the locked map probe; false negatives cannot occur for a
  /// resident mask (every insert sets the filter bits under the same lock
  /// that publishes the map slot).
  bool enable_filter = true;
  /// Filter bits budgeted per resident entry before a shard's filter is
  /// grown (doubled and rebuilt under the shard mutex). 0 = the
  /// DFS_EVAL_CACHE_FILTER_BITS env knob (default 16).
  int filter_bits_per_entry = 0;
  /// Fingerprint of the evaluation context whose outcomes this cache may
  /// hold (dataset + model + constraint set + seed + engine semantics —
  /// the serve layer computes it per job). Stamped into the spill header;
  /// RestoreState rejects a blob whose fingerprint differs.
  uint64_t fingerprint = 0;
};

/// Snapshot of one cache's (or, aggregated, a registry's) activity.
/// Counters cover the shared-surface operations (Lookup/InsertPublished
/// and spill/restore); the in-flight dedup path (Acquire/Publish/Abandon)
/// keeps its accounting in the engine ("engine.cache_hits").
struct EvalCacheStats {
  uint64_t hits = 0;      ///< Lookup served a published entry
  uint64_t misses = 0;    ///< Lookup found nothing published
  uint64_t filter_negatives = 0;  ///< misses answered without a lock
  uint64_t filter_false_positives = 0;  ///< filter said maybe, map said no
  uint64_t inserts = 0;   ///< published entries added via InsertPublished
  uint64_t spills = 0;    ///< serialize/save operations (registry level)
  uint64_t restores = 0;  ///< restore/load operations (registry level)
  size_t caches = 0;      ///< caches in the registry (registry level)
  size_t entries = 0;     ///< resident entries, published or in flight
  std::vector<size_t> shard_entries;  ///< per-shard occupancy
};

/// Concurrent memo table for wrapper evaluations, mutex-striped into N
/// shards keyed by fs::MaskHash so parallel batch workers rarely contend on
/// the same lock, with each shard fronted by a lock-free approximate-
/// membership filter (see EvalCacheOptions::enable_filter).
///
/// The cache also deduplicates *in-flight* work: the first thread to ask
/// for an unseen mask becomes its owner (Acquire returns kOwner) and must
/// later Publish the outcome or Abandon the entry; any thread asking for
/// the same mask meanwhile blocks until the owner resolves it. That
/// preserves the serial engine's hit accounting — when one batch contains
/// a mask twice, the duplicate is a cache hit, never a second training —
/// which is what keeps parallel runs' cache-hit totals byte-identical to
/// num_threads=1 runs.
///
/// Failed evaluations are not cached (Abandon removes the pending entry),
/// matching the serial engine: a failed training is retried if the mask
/// comes back later. Wrap ownership in an OwnerGuard so an owner that
/// unwinds without resolving (a throwing evaluation) abandons eagerly
/// instead of leaving waiters blocked behind a dead owner forever.
///
/// Persistence: Serialize/RestoreState (and the SaveToFile/LoadFromFile
/// convenience pair) spill the published entries to the versioned,
/// checksummed binary format specified in docs/CACHE.md. Stale blobs —
/// wrong suite version or wrong context fingerprint — are rejected loudly
/// with a non-OK Status, never silently merged.
class ShardedEvalCache {
 public:
  enum class Acquired {
    kOwner,      ///< Not present: caller must evaluate, then Publish/Abandon.
    kHit,        ///< Present (possibly after waiting): *outcome filled in.
    kAbandoned,  ///< The in-flight owner abandoned it; not a hit, not cached.
  };

  explicit ShardedEvalCache(EvalCacheOptions options = {});

  ShardedEvalCache(const ShardedEvalCache&) = delete;
  ShardedEvalCache& operator=(const ShardedEvalCache&) = delete;

  /// Looks up `mask`. kHit fills `*outcome` (blocking first if the entry is
  /// still being computed by another thread). kOwner registers a pending
  /// entry owned by the caller, which must Publish() or Abandon() it —
  /// other threads block on the entry until then.
  [[nodiscard]] Acquired Acquire(const fs::FeatureMask& mask,
                                 fs::EvalOutcome* outcome);

  /// Resolves a pending entry with its outcome and wakes waiters.
  void Publish(const fs::FeatureMask& mask, const fs::EvalOutcome& outcome);

  /// Removes a pending entry (evaluation failed or was skipped); waiters
  /// observe kAbandoned. The mask can be re-acquired afterwards. The
  /// mask's filter bits stay set — deletions are impossible in a Bloom
  /// filter — which only costs a future false positive (mutex probe).
  void Abandon(const fs::FeatureMask& mask);

  /// RAII ownership of an in-flight entry: construct after Acquire returned
  /// kOwner, then resolve through the guard. If the guard is destroyed
  /// unresolved — the owner unwound without publishing — the entry is
  /// abandoned so a retry of the same mask becomes the new owner instead of
  /// serializing behind a dead one.
  class OwnerGuard {
   public:
    OwnerGuard(ShardedEvalCache* cache, const fs::FeatureMask& mask)
        : cache_(cache), mask_(&mask) {}
    ~OwnerGuard() {
      if (cache_ != nullptr) cache_->Abandon(*mask_);
    }
    OwnerGuard(const OwnerGuard&) = delete;
    OwnerGuard& operator=(const OwnerGuard&) = delete;

    void Publish(const fs::EvalOutcome& outcome) {
      cache_->Publish(*mask_, outcome);
      cache_ = nullptr;
    }
    void Abandon() {
      cache_->Abandon(*mask_);
      cache_ = nullptr;
    }

   private:
    ShardedEvalCache* cache_;
    const fs::FeatureMask* mask_;
  };

  /// Non-blocking read-only probe for a *published* entry. When the
  /// membership filter rules the mask out, this is a handful of relaxed
  /// atomic loads — no mutex. A pending (in-flight) entry reads as a miss:
  /// Lookup never waits, so a shared cache consulted from inside another
  /// cache's ownership window cannot deadlock.
  bool Lookup(const fs::FeatureMask& mask, fs::EvalOutcome* outcome);

  /// Inserts an already-computed outcome (the restore path, and the engine
  /// publishing into a shared cache). First writer wins: returns false and
  /// changes nothing when the mask is already resident (published or in
  /// flight) — with a shared evaluation context every writer would insert
  /// byte-identical values anyway (DESIGN.md §2d/§2h).
  bool InsertPublished(const fs::FeatureMask& mask,
                       const fs::EvalOutcome& outcome);

  /// Drops every entry and resets the filters. Must not race
  /// Acquire/Publish (the engine clears only between runs, when no batch
  /// is in flight).
  void Clear();

  /// Number of entries, published or still in flight (linearizes per shard
  /// only; test helper).
  size_t size() const;

  uint64_t fingerprint() const { return options_.fingerprint; }

  EvalCacheStats Stats() const;

  /// Spills every published entry to the binary format in docs/CACHE.md.
  /// Pending entries are skipped (their outcome does not exist yet). Each
  /// shard is locked in turn, so a concurrent writer may land in or miss
  /// the blob — serialize at quiescence for a consistent cut.
  std::string Serialize() const;

  /// Merges a spilled blob's entries into this cache (first writer wins).
  /// Rejects, without touching the cache: wrong magic/format version or a
  /// truncated or checksum-corrupt blob (InvalidArgument), and stale blobs
  /// whose suite version or context fingerprint differ from this cache's
  /// (FailedPrecondition).
  Status RestoreState(const std::string& blob);

  Status SaveToFile(const std::string& path) const;
  /// NotFound when `path` does not exist (callers start cold); otherwise
  /// RestoreState's rejection rules apply.
  Status LoadFromFile(const std::string& path);

 private:
  /// Entry fields are protected by the owning Shard's mu (held across
  /// every access, including the post-wait reads in Acquire). That
  /// relationship crosses a shared_ptr, which GUARDED_BY cannot express —
  /// the TSan fleet covers what the static analysis cannot see here.
  struct Entry {
    bool ready = false;
    bool abandoned = false;
    fs::EvalOutcome outcome;
  };

  /// One generation of a shard's blocked Bloom filter: a power-of-two
  /// array of 64-bit words. Readers probe with relaxed loads through the
  /// shard's atomic pointer; writers (insert, grow, rebuild) run under the
  /// shard mutex.
  struct Filter {
    explicit Filter(size_t word_count) : words(word_count) {}
    std::vector<std::atomic<uint64_t>> words;
  };

  struct Shard {
    mutable util::Mutex mu;
    util::CondVar resolved;
    std::unordered_map<fs::FeatureMask, std::shared_ptr<Entry>,
                       fs::MaskHasher>
        entries DFS_GUARDED_BY(mu);
    /// Live filter generation, or null when filtering is disabled. Retired
    /// generations stay alive in `filters` for the cache's lifetime so a
    /// lock-free reader can never touch freed memory; doubling growth
    /// bounds the retired total below the live array's size.
    std::atomic<Filter*> filter{nullptr};
    std::vector<std::unique_ptr<Filter>> filters DFS_GUARDED_BY(mu);
  };

  Shard& ShardFor(const fs::FeatureMask& mask) {
    return shards_[fs::MaskHash(mask) % shards_.size()];
  }
  const Shard& ShardFor(const fs::FeatureMask& mask) const {
    return shards_[fs::MaskHash(mask) % shards_.size()];
  }

  /// Lock-free membership probe; true means "maybe resident" (fall through
  /// to the locked map probe), false means "definitely not resident".
  bool FilterMightContain(const Shard& shard, uint64_t hash) const;
  /// Sets the mask's filter bits, growing (doubling + rebuilding from the
  /// shard map) first when the resident count outruns the bit budget.
  void FilterInsertLocked(Shard& shard, uint64_t hash)
      DFS_REQUIRES(shard.mu);
  /// Installs a fresh filter generation sized for `word_count` words.
  Filter* FilterInstallLocked(Shard& shard, size_t word_count)
      DFS_REQUIRES(shard.mu);

  EvalCacheOptions options_;
  std::vector<Shard> shards_;

  // Shared-surface accounting (see EvalCacheStats). Relaxed: totals, not
  // synchronization.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> filter_negatives_{0};
  mutable std::atomic<uint64_t> filter_false_positives_{0};
  mutable std::atomic<uint64_t> inserts_{0};
};

/// Process-level collection of shared eval caches, one per evaluation-
/// context fingerprint, plus the container-file spill that lets the whole
/// collection survive a daemon restart (dfs_serverd --eval-cache-state).
class EvalCacheRegistry {
 public:
  explicit EvalCacheRegistry(EvalCacheOptions defaults = {});

  EvalCacheRegistry(const EvalCacheRegistry&) = delete;
  EvalCacheRegistry& operator=(const EvalCacheRegistry&) = delete;

  /// The shared cache for `fingerprint`, created on first use from the
  /// registry's default options.
  std::shared_ptr<ShardedEvalCache> GetOrCreate(uint64_t fingerprint);

  /// Writes every cache's spill blob into one container file (docs/CACHE.md
  /// "Registry container"). Call at quiescence for a consistent cut.
  Status SaveToFile(const std::string& path) const;

  /// Restores a container file, creating caches as needed and merging
  /// entries (first writer wins). Returns the number of entries restored.
  /// NotFound when the file does not exist; any stale or corrupt member
  /// blob rejects the whole file (nothing before it is kept half-merged —
  /// blobs are validated before any merge happens).
  StatusOr<size_t> LoadFromFile(const std::string& path);

  /// LoadFromFile's decode/validate/merge core over an in-memory
  /// container (`source` labels error messages). Exposed so tests and
  /// the fuzz harnesses can drive the decoder without touching disk.
  StatusOr<size_t> RestoreFromString(const std::string& container,
                                     const std::string& source = "<memory>");

  /// Aggregated stats: counters summed over caches, shard occupancy summed
  /// elementwise, plus the registry-level cache count and spill/restore
  /// operation counters.
  EvalCacheStats Stats() const;

  size_t size() const;

 private:
  EvalCacheOptions defaults_;
  mutable util::Mutex mu_;
  std::map<uint64_t, std::shared_ptr<ShardedEvalCache>> caches_
      DFS_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> spills_{0};
  mutable std::atomic<uint64_t> restores_{0};
};

}  // namespace dfs::core

#endif  // DFS_CORE_EVAL_CACHE_H_
