#ifndef DFS_CORE_EVAL_CACHE_H_
#define DFS_CORE_EVAL_CACHE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "fs/eval_context.h"
#include "fs/feature_subset.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs::core {

/// Concurrent memo table for wrapper evaluations, mutex-striped into N
/// shards keyed by fs::MaskHash so parallel batch workers rarely contend on
/// the same lock.
///
/// The cache also deduplicates *in-flight* work: the first thread to ask
/// for an unseen mask becomes its owner (Acquire returns kOwner) and must
/// later Publish the outcome or Abandon the entry; any thread asking for
/// the same mask meanwhile blocks until the owner resolves it. That
/// preserves the serial engine's hit accounting — when one batch contains
/// a mask twice, the duplicate is a cache hit, never a second training —
/// which is what keeps parallel runs' cache-hit totals byte-identical to
/// num_threads=1 runs.
///
/// Failed evaluations are not cached (Abandon removes the pending entry),
/// matching the serial engine: a failed training is retried if the mask
/// comes back later.
class ShardedEvalCache {
 public:
  enum class Acquired {
    kOwner,      ///< Not present: caller must evaluate, then Publish/Abandon.
    kHit,        ///< Present (possibly after waiting): *outcome filled in.
    kAbandoned,  ///< The in-flight owner abandoned it; not a hit, not cached.
  };

  explicit ShardedEvalCache(int num_shards = 16);

  ShardedEvalCache(const ShardedEvalCache&) = delete;
  ShardedEvalCache& operator=(const ShardedEvalCache&) = delete;

  /// Looks up `mask`. kHit fills `*outcome` (blocking first if the entry is
  /// still being computed by another thread). kOwner registers a pending
  /// entry owned by the caller, which must Publish() or Abandon() it —
  /// other threads block on the entry until then.
  [[nodiscard]] Acquired Acquire(const fs::FeatureMask& mask,
                                 fs::EvalOutcome* outcome);

  /// Resolves a pending entry with its outcome and wakes waiters.
  void Publish(const fs::FeatureMask& mask, const fs::EvalOutcome& outcome);

  /// Removes a pending entry (evaluation failed or was skipped); waiters
  /// observe kAbandoned. The mask can be re-acquired afterwards.
  void Abandon(const fs::FeatureMask& mask);

  /// Drops every entry. Must not race Acquire/Publish (the engine clears
  /// only between runs, when no batch is in flight).
  void Clear();

  /// Number of entries, published or still in flight (linearizes per shard
  /// only; test helper).
  size_t size() const;

 private:
  /// Entry fields are protected by the owning Shard's mu (held across
  /// every access, including the post-wait reads in Acquire). That
  /// relationship crosses a shared_ptr, which GUARDED_BY cannot express —
  /// the TSan fleet covers what the static analysis cannot see here.
  struct Entry {
    bool ready = false;
    bool abandoned = false;
    fs::EvalOutcome outcome;
  };

  struct Shard {
    mutable util::Mutex mu;
    util::CondVar resolved;
    std::unordered_map<fs::FeatureMask, std::shared_ptr<Entry>,
                       fs::MaskHasher>
        entries DFS_GUARDED_BY(mu);
  };

  Shard& ShardFor(const fs::FeatureMask& mask) {
    return shards_[fs::MaskHash(mask) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace dfs::core

#endif  // DFS_CORE_EVAL_CACHE_H_
