#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "core/suite_version.h"
#include "data/benchmark_suite.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dfs::core {
namespace {

uint64_t HashMix(uint64_t hash, uint64_t value) {
  hash ^= value + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  return hash;
}

uint64_t HashDouble(uint64_t hash, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return HashMix(hash, bits);
}

ml::ModelKind ModelFromString(const std::string& name) {
  if (name == "LR") return ml::ModelKind::kLogisticRegression;
  if (name == "NB") return ml::ModelKind::kNaiveBayes;
  if (name == "DT") return ml::ModelKind::kDecisionTree;
  return ml::ModelKind::kLinearSvm;
}

std::string OptToString(const std::optional<double>& value) {
  return value.has_value() ? FormatDouble(*value, 9) : "-";
}

std::optional<double> OptFromString(const std::string& text) {
  if (text == "-") return std::nullopt;
  return std::atof(text.c_str());
}

}  // namespace

ExperimentConfig::ExperimentConfig() {
  strategies = fs::AllStrategiesWithBaseline();
  // Scaled-down attack so safety-constrained evaluations stay interactive.
  robustness.max_attacked_rows = 12;
  robustness.attack.max_queries = 120;
}

uint64_t ExperimentConfig::Hash() const {
  uint64_t hash = 0xDF5DF5DF5ULL + kSuiteVersion;
  hash = HashMix(hash, static_cast<uint64_t>(num_scenarios));
  hash = HashMix(hash, use_hpo ? 1 : 0);
  hash = HashMix(hash, utility_mode ? 1 : 0);
  hash = HashMix(hash, seed);
  hash = HashDouble(hash, time_scale);
  hash = HashDouble(hash, row_scale);
  hash = HashDouble(hash, sampler.min_search_seconds);
  hash = HashDouble(hash, sampler.max_search_seconds);
  hash = HashDouble(hash, sampler.optional_probability);
  hash = HashMix(hash, static_cast<uint64_t>(robustness.max_attacked_rows));
  hash = HashMix(hash, static_cast<uint64_t>(robustness.attack.max_queries));
  for (fs::StrategyId id : strategies) {
    hash = HashMix(hash, static_cast<uint64_t>(id) + 1);
  }
  return hash;
}

bool ScenarioRecord::Satisfiable() const {
  for (const auto& outcome : outcomes) {
    if (outcome.success) return true;
  }
  return false;
}

const StrategyOutcome* ScenarioRecord::OutcomeOf(fs::StrategyId id) const {
  for (const auto& outcome : outcomes) {
    if (outcome.id == id) return &outcome;
  }
  return nullptr;
}

StatusOr<ExperimentPool> ExperimentPool::Run(const ExperimentConfig& config,
                                             bool verbose) {
  ExperimentPool pool;
  pool.config_ = config;

  // Phase 1 (serial): sample every scenario from the shared sampler RNG and
  // generate each benchmark dataset exactly once. Sampling order is the
  // contract that keeps scenario s identical regardless of parallelism.
  Rng sampler_rng(config.seed);
  std::vector<std::optional<data::Dataset>> datasets(data::BenchmarkSize());
  std::vector<SampledScenario> sampled_scenarios;
  sampled_scenarios.reserve(config.num_scenarios);
  for (int s = 0; s < config.num_scenarios; ++s) {
    SamplerOptions sampler = config.sampler;
    sampler.min_search_seconds *= config.time_scale;
    sampler.max_search_seconds *= config.time_scale;
    SampledScenario sampled =
        SampleScenario(data::BenchmarkSize(), sampler, sampler_rng);
    auto& dataset_slot = datasets[sampled.dataset_index];
    if (!dataset_slot.has_value()) {
      DFS_ASSIGN_OR_RETURN(
          auto dataset,
          data::GenerateBenchmarkDataset(sampled.dataset_index, config.seed,
                                         config.row_scale));
      dataset_slot = std::move(dataset);
    }
    sampled_scenarios.push_back(std::move(sampled));
  }

  // Phase 2 (parallel): each scenario runs independently — it has its own
  // derived seeds and its own engine — so the outer loop is a plain
  // ParallelFor. The process thread budget is split between the outer loop
  // and each engine's inner EvaluateBatch parallelism so the two layers do
  // not multiply into oversubscription. Records land in a pre-sized vector
  // indexed by scenario id, so results are positionally identical to the
  // serial order no matter which scenario finishes first.
  const int budget = HardwareThreadBudget();
  const int outer = std::max(1, std::min(budget, config.num_scenarios));
  pool.records_.resize(config.num_scenarios);
  std::vector<Status> statuses(config.num_scenarios, OkStatus());

  ParallelFor(config.num_scenarios, outer, [&](int s) {
    const SampledScenario& sampled = sampled_scenarios[s];
    const data::Dataset& dataset = *datasets[sampled.dataset_index];

    ScenarioRecord record;
    record.scenario_id = s;
    record.dataset_index = sampled.dataset_index;
    record.dataset_name = dataset.name();
    record.model = sampled.model;
    record.constraint_set = sampled.constraint_set;
    record.rows = dataset.num_rows();
    record.features = dataset.num_features();

    Rng split_rng(config.seed * 7919 + s);
    auto scenario = MakeScenario(dataset, sampled.model,
                                 sampled.constraint_set, split_rng);
    if (!scenario.ok()) {
      statuses[s] = scenario.status();
      return;
    }

    EngineOptions engine_options;
    engine_options.use_hpo = config.use_hpo;
    engine_options.maximize_f1_utility = config.utility_mode;
    engine_options.robustness = config.robustness;
    engine_options.seed = config.seed * 104729 + s;
    engine_options.num_threads = std::max(1, budget / outer);
    DfsEngine engine(*scenario, engine_options);

    for (size_t i = 0; i < config.strategies.size(); ++i) {
      const fs::StrategyId id = config.strategies[i];
      auto strategy =
          fs::CreateStrategy(id, engine_options.seed * 31 + i + 1);
      const RunResult result = engine.Run(*strategy);
      StrategyOutcome outcome;
      outcome.id = id;
      outcome.success = result.success;
      outcome.seconds = result.search_seconds;
      outcome.distance_validation = result.best_distance_validation;
      outcome.distance_test = result.best_distance_test;
      outcome.test_f1 = result.test_f1;
      outcome.timed_out = result.timed_out;
      outcome.search_exhausted = result.search_exhausted;
      outcome.evaluations = result.evaluations;
      record.outcomes.push_back(outcome);
    }
    if (verbose) {
      int successes = 0;
      for (const auto& outcome : record.outcomes) {
        successes += outcome.success ? 1 : 0;
      }
      // Completion order scrambles under parallelism; the scenario id keeps
      // the lines attributable.
      DFS_LOG(ERROR) << "scenario " << s + 1 << "/" << config.num_scenarios
                     << " [" << record.dataset_name << ", "
                     << ml::ModelKindToString(record.model) << ", "
                     << record.constraint_set.ToString() << "] solved by "
                     << successes << "/" << record.outcomes.size();
    }
    pool.records_[s] = std::move(record);
  });

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return pool;
}

StatusOr<ExperimentPool> ExperimentPool::RunOrLoad(
    const ExperimentConfig& config, const std::string& cache_path,
    bool verbose) {
  if (std::filesystem::exists(cache_path)) {
    auto loaded = LoadCsv(cache_path, config);
    if (loaded.ok()) return loaded;
    DFS_LOG(WARNING) << "stale cache " << cache_path << " ("
                     << loaded.status().ToString() << "), recomputing";
  }
  DFS_ASSIGN_OR_RETURN(ExperimentPool pool, Run(config, verbose));
  std::filesystem::path path(cache_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  DFS_RETURN_IF_ERROR(pool.SaveCsv(cache_path));
  return pool;
}

Status ExperimentPool::SaveCsv(const std::string& path) const {
  CsvTable table;
  table.header = {"config_hash", "scenario_id", "dataset_index",
                  "dataset_name", "model", "min_f1", "max_search_seconds",
                  "max_feature_fraction", "min_eo", "min_safety",
                  "privacy_epsilon", "rows", "features", "strategy",
                  "success", "seconds", "distance_validation",
                  "distance_test", "test_f1", "timed_out",
                  "search_exhausted", "evaluations"};
  const std::string hash = std::to_string(config_.Hash());
  for (const auto& record : records_) {
    for (const auto& outcome : record.outcomes) {
      table.rows.push_back({
          hash,
          std::to_string(record.scenario_id),
          std::to_string(record.dataset_index),
          record.dataset_name,
          ml::ModelKindToString(record.model),
          FormatDouble(record.constraint_set.min_f1, 9),
          FormatDouble(record.constraint_set.max_search_seconds, 9),
          OptToString(record.constraint_set.max_feature_fraction),
          OptToString(record.constraint_set.min_equal_opportunity),
          OptToString(record.constraint_set.min_safety),
          OptToString(record.constraint_set.privacy_epsilon),
          std::to_string(record.rows),
          std::to_string(record.features),
          fs::StrategyIdToString(outcome.id),
          outcome.success ? "1" : "0",
          FormatDouble(outcome.seconds, 9),
          FormatDouble(outcome.distance_validation, 9),
          FormatDouble(outcome.distance_test, 9),
          FormatDouble(outcome.test_f1, 9),
          outcome.timed_out ? "1" : "0",
          outcome.search_exhausted ? "1" : "0",
          std::to_string(outcome.evaluations),
      });
    }
  }
  return WriteCsvFile(table, path);
}

StatusOr<ExperimentPool> ExperimentPool::LoadCsv(
    const std::string& path, const ExperimentConfig& config) {
  DFS_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  const std::string expected_hash = std::to_string(config.Hash());

  ExperimentPool pool;
  pool.config_ = config;
  ScenarioRecord* current = nullptr;
  for (const auto& row : table.rows) {
    if (row[0] != expected_hash) {
      return FailedPreconditionError("cache config hash mismatch");
    }
    const int scenario_id = std::atoi(row[1].c_str());
    if (current == nullptr || current->scenario_id != scenario_id) {
      ScenarioRecord record;
      record.scenario_id = scenario_id;
      record.dataset_index = std::atoi(row[2].c_str());
      record.dataset_name = row[3];
      record.model = ModelFromString(row[4]);
      record.constraint_set.min_f1 = std::atof(row[5].c_str());
      record.constraint_set.max_search_seconds = std::atof(row[6].c_str());
      record.constraint_set.max_feature_fraction = OptFromString(row[7]);
      record.constraint_set.min_equal_opportunity = OptFromString(row[8]);
      record.constraint_set.min_safety = OptFromString(row[9]);
      record.constraint_set.privacy_epsilon = OptFromString(row[10]);
      record.rows = std::atoi(row[11].c_str());
      record.features = std::atoi(row[12].c_str());
      pool.records_.push_back(std::move(record));
      current = &pool.records_.back();
    }
    StrategyOutcome outcome;
    DFS_ASSIGN_OR_RETURN(outcome.id, fs::StrategyIdFromString(row[13]));
    outcome.success = row[14] == "1";
    outcome.seconds = std::atof(row[15].c_str());
    outcome.distance_validation = std::atof(row[16].c_str());
    outcome.distance_test = std::atof(row[17].c_str());
    outcome.test_f1 = std::atof(row[18].c_str());
    outcome.timed_out = row[19] == "1";
    outcome.search_exhausted = row[20] == "1";
    outcome.evaluations = std::atoi(row[21].c_str());
    current->outcomes.push_back(outcome);
  }
  if (static_cast<int>(pool.records_.size()) != config.num_scenarios) {
    return FailedPreconditionError("cache scenario count mismatch");
  }
  return pool;
}

void ApplyEnvironmentOverrides(ExperimentConfig& config) {
  if (const char* env = std::getenv("DFS_SCENARIOS")) {
    const int value = std::atoi(env);
    if (value > 0) config.num_scenarios = value;
  }
  if (const char* env = std::getenv("DFS_TIME_SCALE")) {
    const double value = std::atof(env);
    if (value > 0) config.time_scale = value;
  }
  if (const char* env = std::getenv("DFS_DATA_SCALE")) {
    const double value = std::atof(env);
    if (value > 0) config.row_scale = value;
  }
  if (const char* env = std::getenv("DFS_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(env));
  }
}

}  // namespace dfs::core
