#include "core/eval_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/suite_version.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace dfs::core {
namespace {

/// Shared-cache-surface instruments (docs/PROTOCOL.md instrument registry,
/// "cache.*"). Resolved once; the lookup hot path then touches atomics only.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& filter_negatives;
  obs::Counter& filter_false_positives;
  obs::Counter& inserts;
  obs::Counter& spills;
  obs::Counter& restores;
  obs::Counter& restored_entries;

  static CacheMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static CacheMetrics* metrics = new CacheMetrics{
        registry.counter("cache.hits"),
        registry.counter("cache.misses"),
        registry.counter("cache.filter_negatives"),
        registry.counter("cache.filter_false_positives"),
        registry.counter("cache.inserts"),
        registry.counter("cache.spills"),
        registry.counter("cache.restores"),
        registry.counter("cache.restored_entries"),
    };
    return *metrics;
  }
};

/// Default filter bit budget per resident entry; DFS_EVAL_CACHE_FILTER_BITS
/// overrides (documented in EXPERIMENTS.md). Read once per process.
int DefaultFilterBitsPerEntry() {
  static const int bits = [] {
    if (const char* env = std::getenv("DFS_EVAL_CACHE_FILTER_BITS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return std::min(parsed, 1024);
    }
    return 16;
  }();
  return bits;
}

/// First filter generation per shard: 64 words = 4096 bits, enough for the
/// first ~256 entries at the default budget before the first doubling.
constexpr size_t kInitialFilterWords = 64;

/// Remix fs::MaskHash for filter probing. Shard selection consumes the
/// hash's low bits (hash % num_shards), so within one shard they are
/// nearly constant; the finalizer (Murmur3's) spreads the surviving
/// entropy back across all 64 bits before word/bit selection.
uint64_t FilterHash(uint64_t hash) {
  uint64_t h = hash;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

/// The blocked-Bloom probe pattern: one word, three bits inside it. The
/// word index comes from the high bits, the bit positions from disjoint
/// low-bit fields, so one cheap remix feeds the whole probe.
struct FilterProbe {
  size_t word;
  uint64_t bits;
};

FilterProbe ProbeFor(uint64_t hash, size_t word_count) {
  const uint64_t h = FilterHash(hash);
  FilterProbe probe;
  probe.word = static_cast<size_t>(h >> 40) & (word_count - 1);
  probe.bits = (1ULL << (h & 63)) | (1ULL << ((h >> 6) & 63)) |
               (1ULL << ((h >> 12) & 63));
  return probe;
}

// ---------------------------------------------------------------------------
// Binary spill encoding (docs/CACHE.md). Little-endian on every supported
// target; the fixed-width append/read helpers keep the layout explicit.

constexpr char kCacheMagic[8] = {'D', 'F', 'S', 'C', 'A', 'C', 'H', 'E'};
constexpr char kRegistryMagic[8] = {'D', 'F', 'S', 'C', 'R', 'E', 'G', '1'};
constexpr uint64_t kChecksumSeed = 0xCBF29CE484222325ULL;  // FNV-1a offset

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string* out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked little-endian reader over a blob.
class Reader {
 public:
  explicit Reader(const std::string& blob) : blob_(blob) {}

  bool ReadBytes(void* out, size_t n) {
    if (offset_ + n > blob_.size()) return false;
    std::memcpy(out, blob_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  bool ReadU32(uint32_t* out) {
    unsigned char bytes[4];
    if (!ReadBytes(bytes, 4)) return false;
    *out = 0;
    for (int i = 0; i < 4; ++i) *out |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    return true;
  }
  bool ReadU64(uint64_t* out) {
    unsigned char bytes[8];
    if (!ReadBytes(bytes, 8)) return false;
    *out = 0;
    for (int i = 0; i < 8; ++i) *out |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    return true;
  }
  bool ReadF64(double* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
  }
  bool Skip(size_t n) {
    if (offset_ + n > blob_.size()) return false;
    offset_ += n;
    return true;
  }
  size_t offset() const { return offset_; }
  size_t remaining() const { return blob_.size() - offset_; }

 private:
  const std::string& blob_;
  size_t offset_ = 0;
};

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t hash = kChecksumSeed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// One entry: bit-packed mask (LSB-first within each byte) + the
/// fs::EvalOutcome fields in declaration order.
void AppendEntry(std::string* out, const fs::FeatureMask& mask,
                 const fs::EvalOutcome& outcome) {
  AppendU32(out, static_cast<uint32_t>(mask.size()));
  const size_t bytes = (mask.size() + 7) / 8;
  for (size_t b = 0; b < bytes; ++b) {
    unsigned char packed = 0;
    for (size_t bit = 0; bit < 8; ++bit) {
      const size_t index = b * 8 + bit;
      if (index < mask.size() && mask[index]) packed |= (1u << bit);
    }
    out->push_back(static_cast<char>(packed));
  }
  unsigned char flags = 0;
  if (outcome.evaluated) flags |= 1u;
  if (outcome.satisfied_validation) flags |= 2u;
  if (outcome.success) flags |= 4u;
  out->push_back(static_cast<char>(flags));
  AppendF64(out, outcome.seconds);
  AppendF64(out, outcome.distance);
  AppendF64(out, outcome.objective);
  AppendF64(out, outcome.validation.f1);
  AppendF64(out, outcome.validation.equal_opportunity);
  AppendF64(out, outcome.validation.safety);
  AppendF64(out, outcome.validation.feature_fraction);
  AppendU32(out, static_cast<uint32_t>(outcome.validation.selected_features));
  AppendU32(out, static_cast<uint32_t>(outcome.validation.total_features));
}

bool ReadEntry(Reader* reader, fs::FeatureMask* mask,
               fs::EvalOutcome* outcome) {
  uint32_t mask_bits;
  if (!reader->ReadU32(&mask_bits)) return false;
  // A mask wider than the blob is left to hold cannot be legitimate; the
  // cap turns a corrupt width into a clean "truncated" rejection instead
  // of a giant allocation.
  if (mask_bits > 8 * reader->remaining()) return false;
  mask->assign(mask_bits, 0);
  const size_t bytes = (mask_bits + 7) / 8;
  for (size_t b = 0; b < bytes; ++b) {
    unsigned char packed;
    if (!reader->ReadBytes(&packed, 1)) return false;
    for (size_t bit = 0; bit < 8; ++bit) {
      const size_t index = b * 8 + bit;
      if (index < mask_bits) (*mask)[index] = (packed >> bit) & 1u;
    }
  }
  unsigned char flags;
  if (!reader->ReadBytes(&flags, 1)) return false;
  outcome->evaluated = (flags & 1u) != 0;
  outcome->satisfied_validation = (flags & 2u) != 0;
  outcome->success = (flags & 4u) != 0;
  uint32_t selected, total;
  if (!reader->ReadF64(&outcome->seconds) ||
      !reader->ReadF64(&outcome->distance) ||
      !reader->ReadF64(&outcome->objective) ||
      !reader->ReadF64(&outcome->validation.f1) ||
      !reader->ReadF64(&outcome->validation.equal_opportunity) ||
      !reader->ReadF64(&outcome->validation.safety) ||
      !reader->ReadF64(&outcome->validation.feature_fraction) ||
      !reader->ReadU32(&selected) || !reader->ReadU32(&total)) {
    return false;
  }
  outcome->validation.selected_features = static_cast<int>(selected);
  outcome->validation.total_features = static_cast<int>(total);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedEvalCache

ShardedEvalCache::ShardedEvalCache(EvalCacheOptions options)
    : options_(options),
      shards_(std::max(1, options.num_shards)) {
  options_.num_shards = static_cast<int>(shards_.size());
  if (options_.filter_bits_per_entry <= 0) {
    options_.filter_bits_per_entry = DefaultFilterBitsPerEntry();
  }
  if (options_.enable_filter) {
    for (Shard& shard : shards_) {
      util::MutexLock lock(shard.mu);
      FilterInstallLocked(shard, kInitialFilterWords);
    }
  }
}

bool ShardedEvalCache::FilterMightContain(const Shard& shard,
                                          uint64_t hash) const {
  const Filter* filter = shard.filter.load(std::memory_order_acquire);
  if (filter == nullptr) return true;  // filtering disabled: always probe
  const FilterProbe probe = ProbeFor(hash, filter->words.size());
  const uint64_t word =
      filter->words[probe.word].load(std::memory_order_relaxed);
  return (word & probe.bits) == probe.bits;
}

ShardedEvalCache::Filter* ShardedEvalCache::FilterInstallLocked(
    Shard& shard, size_t word_count) {
  shard.filters.push_back(std::make_unique<Filter>(word_count));
  Filter* fresh = shard.filters.back().get();
  // Publish after the words are zero-initialized; readers acquire-load the
  // pointer, so they never see a half-built array.
  shard.filter.store(fresh, std::memory_order_release);
  return fresh;
}

void ShardedEvalCache::FilterInsertLocked(Shard& shard, uint64_t hash) {
  Filter* filter = shard.filter.load(std::memory_order_relaxed);
  if (filter == nullptr) return;
  // Grow when the resident set outruns the bit budget: double and rebuild
  // from the map (the only exact membership source — old generations also
  // hold bits for abandoned masks). The retired generation stays alive for
  // concurrent readers; doubling keeps total retired memory below the live
  // array's.
  const size_t budget_bits =
      shard.entries.size() * static_cast<size_t>(options_.filter_bits_per_entry);
  if (budget_bits > filter->words.size() * 64) {
    filter = FilterInstallLocked(shard, filter->words.size() * 2);
    for (const auto& [mask, entry] : shard.entries) {
      const FilterProbe probe =
          ProbeFor(fs::MaskHash(mask), filter->words.size());
      filter->words[probe.word].fetch_or(probe.bits,
                                         std::memory_order_relaxed);
    }
  }
  const FilterProbe probe = ProbeFor(hash, filter->words.size());
  filter->words[probe.word].fetch_or(probe.bits, std::memory_order_relaxed);
}

ShardedEvalCache::Acquired ShardedEvalCache::Acquire(
    const fs::FeatureMask& mask, fs::EvalOutcome* outcome) {
  const uint64_t hash = fs::MaskHash(mask);
  Shard& shard = shards_[hash % shards_.size()];
  util::MutexLock lock(shard.mu);
  auto it = shard.entries.find(mask);
  if (it == shard.entries.end()) {
    shard.entries.emplace(mask, std::make_shared<Entry>());
    FilterInsertLocked(shard, hash);
    return Acquired::kOwner;
  }
  // Hold our own reference: Abandon() erases the map slot while we wait.
  std::shared_ptr<Entry> entry = it->second;
  while (!entry->ready && !entry->abandoned) shard.resolved.Wait(lock);
  if (entry->abandoned) return Acquired::kAbandoned;
  *outcome = entry->outcome;
  return Acquired::kHit;
}

void ShardedEvalCache::Publish(const fs::FeatureMask& mask,
                               const fs::EvalOutcome& outcome) {
  Shard& shard = ShardFor(mask);
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(mask);
    DFS_CHECK(it != shard.entries.end()) << "Publish without Acquire";
    DFS_CHECK(!it->second->ready) << "Publish twice";
    it->second->outcome = outcome;
    it->second->ready = true;
  }
  shard.resolved.NotifyAll();
}

void ShardedEvalCache::Abandon(const fs::FeatureMask& mask) {
  Shard& shard = ShardFor(mask);
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(mask);
    DFS_CHECK(it != shard.entries.end()) << "Abandon without Acquire";
    it->second->abandoned = true;
    shard.entries.erase(it);
  }
  shard.resolved.NotifyAll();
}

bool ShardedEvalCache::Lookup(const fs::FeatureMask& mask,
                              fs::EvalOutcome* outcome) {
  CacheMetrics& metrics = CacheMetrics::Get();
  const uint64_t hash = fs::MaskHash(mask);
  const Shard& shard = shards_[hash % shards_.size()];
  if (!FilterMightContain(shard, hash)) {
    filter_negatives_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.filter_negatives.Increment();
    metrics.misses.Increment();
    return false;
  }
  bool resident = false;
  bool hit = false;
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(mask);
    if (it != shard.entries.end()) {
      resident = true;
      if (it->second->ready) {
        *outcome = it->second->outcome;
        hit = true;
      }
      // Pending entries read as a miss: Lookup never blocks.
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.hits.Increment();
    return true;
  }
  if (!resident) {
    // Filter said maybe, the map said no: the documented false-positive
    // fallthrough (docs/CACHE.md) — also the steady state for abandoned
    // masks, whose bits can never be cleared.
    filter_false_positives_.fetch_add(1, std::memory_order_relaxed);
    metrics.filter_false_positives.Increment();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics.misses.Increment();
  return false;
}

bool ShardedEvalCache::InsertPublished(const fs::FeatureMask& mask,
                                       const fs::EvalOutcome& outcome) {
  const uint64_t hash = fs::MaskHash(mask);
  Shard& shard = shards_[hash % shards_.size()];
  bool inserted = false;
  {
    util::MutexLock lock(shard.mu);
    auto [it, fresh] = shard.entries.try_emplace(mask);
    if (fresh) {
      auto entry = std::make_shared<Entry>();
      entry->ready = true;
      entry->outcome = outcome;
      it->second = std::move(entry);
      FilterInsertLocked(shard, hash);
      inserted = true;
    }
  }
  if (inserted) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().inserts.Increment();
  }
  return inserted;
}

void ShardedEvalCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    shard.entries.clear();
    if (options_.enable_filter) {
      FilterInstallLocked(shard, kInitialFilterWords);
    }
  }
}

size_t ShardedEvalCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

EvalCacheStats ShardedEvalCache::Stats() const {
  EvalCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.filter_negatives = filter_negatives_.load(std::memory_order_relaxed);
  stats.filter_false_positives =
      filter_false_positives_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.caches = 1;
  stats.shard_entries.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    stats.shard_entries.push_back(shard.entries.size());
    stats.entries += shard.entries.size();
  }
  return stats;
}

std::string ShardedEvalCache::Serialize() const {
  // Payload first (the checksum covers exactly these bytes), header after.
  std::string payload;
  uint64_t entry_count = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    for (const auto& [mask, entry] : shard.entries) {
      if (!entry->ready) continue;  // pending: no outcome to spill yet
      AppendEntry(&payload, mask, entry->outcome);
      ++entry_count;
    }
  }
  std::string blob;
  blob.reserve(48 + payload.size());
  blob.append(kCacheMagic, sizeof(kCacheMagic));
  AppendU32(&blob, kEvalCacheFormatVersion);
  AppendU32(&blob, 0);  // reserved
  AppendU64(&blob, kSuiteVersion);
  AppendU64(&blob, options_.fingerprint);
  AppendU64(&blob, entry_count);
  AppendU64(&blob, Fnv1a(payload.data(), payload.size()));
  blob += payload;
  return blob;
}

Status ShardedEvalCache::RestoreState(const std::string& blob) {
  Reader reader(blob);
  char magic[8];
  if (!reader.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kCacheMagic, sizeof(magic)) != 0) {
    return InvalidArgumentError("not an eval-cache spill (bad magic)");
  }
  uint32_t version, reserved;
  uint64_t suite, fingerprint, entry_count, checksum;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&reserved) ||
      !reader.ReadU64(&suite) || !reader.ReadU64(&fingerprint) ||
      !reader.ReadU64(&entry_count) || !reader.ReadU64(&checksum)) {
    return InvalidArgumentError("truncated eval-cache spill header");
  }
  if (version != kEvalCacheFormatVersion) {
    return InvalidArgumentError(
        "unsupported eval-cache format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kEvalCacheFormatVersion) + ")");
  }
  if (suite != kSuiteVersion) {
    return FailedPreconditionError(
        "stale eval-cache spill: suite version " + std::to_string(suite) +
        " != current " + std::to_string(kSuiteVersion) +
        " (evaluation semantics changed; delete the spill)");
  }
  if (fingerprint != options_.fingerprint) {
    return FailedPreconditionError(
        "stale eval-cache spill: context fingerprint mismatch (spill " +
        std::to_string(fingerprint) + ", cache " +
        std::to_string(options_.fingerprint) +
        "); outcomes from a different dataset/model/constraint context "
        "must not be merged");
  }
  const size_t payload_offset = reader.offset();
  if (Fnv1a(blob.data() + payload_offset, blob.size() - payload_offset) !=
      checksum) {
    return InvalidArgumentError(
        "corrupt eval-cache spill: payload checksum mismatch");
  }
  // Decode everything before merging anything, so a truncated payload
  // cannot leave the cache half-restored. The entry count lives in the
  // header, OUTSIDE the checksum (which covers the payload only), so it
  // must be sanity-checked before it sizes an allocation: every entry is
  // at least kMinEntryBytes, so a count the remaining bytes cannot hold
  // is corrupt no matter what the payload says.
  constexpr uint64_t kMinEntryBytes = 69;  // u32 mask width + flags +
                                           // 7 f64 + 2 u32, empty mask
  if (entry_count > reader.remaining() / kMinEntryBytes) {
    return InvalidArgumentError(
        "corrupt eval-cache spill: header claims " +
        std::to_string(entry_count) + " entries but only " +
        std::to_string(reader.remaining()) + " payload bytes follow");
  }
  std::vector<std::pair<fs::FeatureMask, fs::EvalOutcome>> decoded;
  decoded.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    fs::FeatureMask mask;
    fs::EvalOutcome outcome;
    if (!ReadEntry(&reader, &mask, &outcome)) {
      return InvalidArgumentError(
          "truncated eval-cache spill: entry " + std::to_string(i) + " of " +
          std::to_string(entry_count) + " is cut short");
    }
    decoded.emplace_back(std::move(mask), outcome);
  }
  if (reader.remaining() != 0) {
    return InvalidArgumentError(
        "corrupt eval-cache spill: " + std::to_string(reader.remaining()) +
        " trailing bytes after the last entry");
  }
  uint64_t restored = 0;
  for (const auto& [mask, outcome] : decoded) {
    if (InsertPublished(mask, outcome)) ++restored;
  }
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.restores.Increment();
  metrics.restored_entries.Increment(restored);
  return OkStatus();
}

Status ShardedEvalCache::SaveToFile(const std::string& path) const {
  const std::string blob = Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot write file: " + path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return InternalError("short write: " + path);
  CacheMetrics::Get().spills.Increment();
  return OkStatus();
}

Status ShardedEvalCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return RestoreState(buffer.str());
}

// ---------------------------------------------------------------------------
// EvalCacheRegistry

EvalCacheRegistry::EvalCacheRegistry(EvalCacheOptions defaults)
    : defaults_(defaults) {}

std::shared_ptr<ShardedEvalCache> EvalCacheRegistry::GetOrCreate(
    uint64_t fingerprint) {
  util::MutexLock lock(mu_);
  auto it = caches_.find(fingerprint);
  if (it != caches_.end()) return it->second;
  EvalCacheOptions options = defaults_;
  options.fingerprint = fingerprint;
  auto cache = std::make_shared<ShardedEvalCache>(options);
  caches_.emplace(fingerprint, cache);
  return cache;
}

Status EvalCacheRegistry::SaveToFile(const std::string& path) const {
  std::vector<std::shared_ptr<ShardedEvalCache>> caches;
  {
    util::MutexLock lock(mu_);
    caches.reserve(caches_.size());
    for (const auto& [fingerprint, cache] : caches_) caches.push_back(cache);
  }
  std::string container;
  container.append(kRegistryMagic, sizeof(kRegistryMagic));
  AppendU32(&container, kEvalCacheFormatVersion);
  AppendU32(&container, static_cast<uint32_t>(caches.size()));
  for (const auto& cache : caches) {
    const std::string blob = cache->Serialize();
    AppendU64(&container, blob.size());
    container += blob;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot write file: " + path);
  out.write(container.data(),
            static_cast<std::streamsize>(container.size()));
  if (!out) return InternalError("short write: " + path);
  spills_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().spills.Increment();
  return OkStatus();
}

StatusOr<size_t> EvalCacheRegistry::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return RestoreFromString(buffer.str(), path);
}

StatusOr<size_t> EvalCacheRegistry::RestoreFromString(
    const std::string& container, const std::string& source) {
  Reader reader(container);
  char magic[8];
  if (!reader.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kRegistryMagic, sizeof(magic)) != 0) {
    return InvalidArgumentError(
        "not an eval-cache registry container (bad magic): " + source);
  }
  uint32_t version, cache_count;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&cache_count)) {
    return InvalidArgumentError("truncated registry container header: " +
                                source);
  }
  if (version != kEvalCacheFormatVersion) {
    return InvalidArgumentError(
        "unsupported eval-cache format version " + std::to_string(version) +
        " in " + source);
  }
  // The member count is not covered by any checksum; cap it by what the
  // remaining bytes could possibly hold (each member costs at least its
  // u64 length prefix) before it sizes an allocation.
  if (cache_count > reader.remaining() / sizeof(uint64_t)) {
    return InvalidArgumentError(
        "corrupt registry container: header claims " +
        std::to_string(cache_count) + " member blobs but only " +
        std::to_string(reader.remaining()) + " bytes follow in " + source);
  }
  // Slice out every member blob before restoring any, so one stale or
  // corrupt member rejects the whole file instead of leaving it
  // half-merged.
  std::vector<std::string> blobs;
  blobs.reserve(cache_count);
  for (uint32_t i = 0; i < cache_count; ++i) {
    uint64_t length;
    if (!reader.ReadU64(&length) || length > reader.remaining()) {
      return InvalidArgumentError("truncated registry container: " + source);
    }
    blobs.emplace_back(container, reader.offset(),
                       static_cast<size_t>(length));
    reader.Skip(static_cast<size_t>(length));  // bounds-checked above
  }
  if (reader.remaining() != 0) {
    return InvalidArgumentError(
        "corrupt registry container: trailing bytes in " + source);
  }
  // Validate all blobs against throwaway caches first (RestoreState
  // itself is all-or-nothing per blob, but the registry promises it for
  // the whole file).
  for (const std::string& blob : blobs) {
    Reader header(blob);
    char member_magic[8];
    uint32_t member_version = 0, reserved = 0;
    uint64_t suite = 0, fingerprint = 0;
    if (!header.ReadBytes(member_magic, sizeof(member_magic)) ||
        !header.ReadU32(&member_version) || !header.ReadU32(&reserved) ||
        !header.ReadU64(&suite) || !header.ReadU64(&fingerprint)) {
      return InvalidArgumentError("truncated member spill in " + source);
    }
    EvalCacheOptions probe_options = defaults_;
    probe_options.fingerprint = fingerprint;
    ShardedEvalCache probe(probe_options);
    DFS_RETURN_IF_ERROR(probe.RestoreState(blob));
  }
  size_t restored = 0;
  for (const std::string& blob : blobs) {
    Reader header(blob);
    char member_magic[8];
    uint32_t member_version = 0, reserved = 0;
    uint64_t suite = 0, fingerprint = 0;
    header.ReadBytes(member_magic, sizeof(member_magic));
    header.ReadU32(&member_version);
    header.ReadU32(&reserved);
    header.ReadU64(&suite);
    header.ReadU64(&fingerprint);
    auto cache = GetOrCreate(fingerprint);
    const size_t before = cache->size();
    DFS_RETURN_IF_ERROR(cache->RestoreState(blob));
    restored += cache->size() - before;
  }
  restores_.fetch_add(1, std::memory_order_relaxed);
  return restored;
}

EvalCacheStats EvalCacheRegistry::Stats() const {
  std::vector<std::shared_ptr<ShardedEvalCache>> caches;
  {
    util::MutexLock lock(mu_);
    caches.reserve(caches_.size());
    for (const auto& [fingerprint, cache] : caches_) caches.push_back(cache);
  }
  EvalCacheStats total;
  total.caches = caches.size();
  total.spills = spills_.load(std::memory_order_relaxed);
  total.restores = restores_.load(std::memory_order_relaxed);
  for (const auto& cache : caches) {
    const EvalCacheStats stats = cache->Stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.filter_negatives += stats.filter_negatives;
    total.filter_false_positives += stats.filter_false_positives;
    total.inserts += stats.inserts;
    total.entries += stats.entries;
    if (total.shard_entries.size() < stats.shard_entries.size()) {
      total.shard_entries.resize(stats.shard_entries.size(), 0);
    }
    for (size_t i = 0; i < stats.shard_entries.size(); ++i) {
      total.shard_entries[i] += stats.shard_entries[i];
    }
  }
  return total;
}

size_t EvalCacheRegistry::size() const {
  util::MutexLock lock(mu_);
  return caches_.size();
}

}  // namespace dfs::core
