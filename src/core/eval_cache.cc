#include "core/eval_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace dfs::core {

ShardedEvalCache::ShardedEvalCache(int num_shards)
    : shards_(std::max(1, num_shards)) {}

ShardedEvalCache::Acquired ShardedEvalCache::Acquire(
    const fs::FeatureMask& mask, fs::EvalOutcome* outcome) {
  Shard& shard = ShardFor(mask);
  util::MutexLock lock(shard.mu);
  auto it = shard.entries.find(mask);
  if (it == shard.entries.end()) {
    shard.entries.emplace(mask, std::make_shared<Entry>());
    return Acquired::kOwner;
  }
  // Hold our own reference: Abandon() erases the map slot while we wait.
  std::shared_ptr<Entry> entry = it->second;
  while (!entry->ready && !entry->abandoned) shard.resolved.Wait(lock);
  if (entry->abandoned) return Acquired::kAbandoned;
  *outcome = entry->outcome;
  return Acquired::kHit;
}

void ShardedEvalCache::Publish(const fs::FeatureMask& mask,
                               const fs::EvalOutcome& outcome) {
  Shard& shard = ShardFor(mask);
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(mask);
    DFS_CHECK(it != shard.entries.end()) << "Publish without Acquire";
    DFS_CHECK(!it->second->ready) << "Publish twice";
    it->second->outcome = outcome;
    it->second->ready = true;
  }
  shard.resolved.NotifyAll();
}

void ShardedEvalCache::Abandon(const fs::FeatureMask& mask) {
  Shard& shard = ShardFor(mask);
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(mask);
    DFS_CHECK(it != shard.entries.end()) << "Abandon without Acquire";
    it->second->abandoned = true;
    shard.entries.erase(it);
  }
  shard.resolved.NotifyAll();
}

void ShardedEvalCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    shard.entries.clear();
  }
}

size_t ShardedEvalCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace dfs::core
