#ifndef DFS_CORE_SCENARIO_H_
#define DFS_CORE_SCENARIO_H_

#include <string>

#include "constraints/constraint_set.h"
#include "data/dataset.h"
#include "data/split.h"
#include "ml/classifier.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::core {

/// An ML scenario Z = (φ, D, D_train, D_val, D_test, C) — Section 2.1: the
/// complete declarative task handed to the DFS system.
struct MlScenario {
  std::string dataset_name;
  data::DataSplit split;
  ml::ModelKind model = ml::ModelKind::kLogisticRegression;
  constraints::ConstraintSet constraint_set;
};

/// Builds a scenario from a preprocessed dataset using the paper's 3:1:1
/// stratified split.
StatusOr<MlScenario> MakeScenario(const data::Dataset& dataset,
                                  ml::ModelKind model,
                                  const constraints::ConstraintSet& constraints,
                                  Rng& rng);

}  // namespace dfs::core

#endif  // DFS_CORE_SCENARIO_H_
