#include "core/dfs.h"

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace dfs::core {

DeclarativeFeatureSelection::DeclarativeFeatureSelection(data::Dataset dataset,
                                                         uint64_t seed)
    : dataset_(std::move(dataset)), seed_(seed) {}

DeclarativeFeatureSelection& DeclarativeFeatureSelection::SetModel(
    ml::ModelKind model) {
  model_ = model;
  return *this;
}

DeclarativeFeatureSelection& DeclarativeFeatureSelection::SetConstraints(
    const constraints::ConstraintSet& constraint_set) {
  constraint_set_ = constraint_set;
  return *this;
}

DeclarativeFeatureSelection& DeclarativeFeatureSelection::UseHpo(
    bool use_hpo) {
  use_hpo_ = use_hpo;
  return *this;
}

DeclarativeFeatureSelection& DeclarativeFeatureSelection::MaximizeUtility(
    bool maximize) {
  maximize_utility_ = maximize;
  return *this;
}

DeclarativeFeatureSelection& DeclarativeFeatureSelection::RecordTrace(
    bool record) {
  record_trace_ = record;
  return *this;
}

StatusOr<MlScenario> DeclarativeFeatureSelection::BuildScenario() const {
  Rng rng(seed_);
  return MakeScenario(dataset_, model_, constraint_set_, rng);
}

DfsResult DeclarativeFeatureSelection::ToResult(RunResult run,
                                                fs::StrategyId id) const {
  DfsResult result;
  result.trace = std::move(run.trace);
  result.success = run.success;
  result.features = fs::MaskToIndices(run.selected);
  for (int f : result.features) {
    result.feature_names.push_back(dataset_.feature_names()[f]);
  }
  result.validation_values = run.validation_values;
  result.test_values = run.test_values;
  result.search_seconds = run.search_seconds;
  result.strategy = fs::StrategyIdToString(id);
  result.model = ml::ModelKindToString(model_);
  return result;
}

StatusOr<DfsResult> DeclarativeFeatureSelection::Select(
    fs::StrategyId strategy_id) {
  DFS_ASSIGN_OR_RETURN(MlScenario scenario, BuildScenario());
  EngineOptions options;
  options.use_hpo = use_hpo_;
  options.maximize_f1_utility = maximize_utility_;
  options.record_trace = record_trace_;
  options.seed = seed_;
  DfsEngine engine(scenario, options);
  auto strategy = fs::CreateStrategy(strategy_id, seed_ ^ 0xABCDEFULL);
  return ToResult(engine.Run(*strategy), strategy_id);
}

StatusOr<DfsResult> DeclarativeFeatureSelection::SelectWithOptimizer(
    const DfsOptimizer& optimizer) {
  OptimizerOptions options;
  options.seed = seed_;
  DFS_ASSIGN_OR_RETURN(
      ScenarioFeatures features,
      FeaturizeScenario(dataset_, model_, constraint_set_, options));
  DFS_ASSIGN_OR_RETURN(fs::StrategyId chosen, optimizer.Choose(features));
  return Select(chosen);
}

StatusOr<DfsResult> DeclarativeFeatureSelection::SelectParallel(
    const std::vector<fs::StrategyId>& strategy_ids, int num_threads) {
  if (strategy_ids.empty()) {
    return InvalidArgumentError("no strategies given");
  }
  DFS_ASSIGN_OR_RETURN(MlScenario scenario, BuildScenario());

  util::Mutex mu;
  std::vector<std::pair<fs::StrategyId, RunResult>> runs(strategy_ids.size());
  ParallelFor(
      static_cast<int>(strategy_ids.size()), num_threads, [&](int i) {
        EngineOptions options;
        options.use_hpo = use_hpo_;
        options.maximize_f1_utility = maximize_utility_;
        options.record_trace = record_trace_;
        options.seed = seed_ + i;
        DfsEngine engine(scenario, options);
        auto strategy =
            fs::CreateStrategy(strategy_ids[i], seed_ * 31 + i + 1);
        RunResult result = engine.Run(*strategy);
        util::MutexLock lock(mu);
        runs[i] = {strategy_ids[i], std::move(result)};
      });

  // Fastest success wins; otherwise the closest-by-validation-distance run.
  int best = -1;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i].second;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const RunResult& incumbent = runs[best].second;
    const bool better =
        run.success != incumbent.success
            ? run.success
            : (run.success
                   ? run.search_seconds < incumbent.search_seconds
                   : run.best_distance_validation <
                         incumbent.best_distance_validation);
    if (better) best = static_cast<int>(i);
  }
  return ToResult(runs[best].second, runs[best].first);
}

StatusOr<DfsResult> DeclarativeFeatureSelection::SelectModelAndFeatures(
    const std::vector<ml::ModelKind>& candidate_models,
    fs::StrategyId strategy_id) {
  if (candidate_models.empty()) {
    return InvalidArgumentError("no candidate models given");
  }
  const ml::ModelKind original_model = model_;
  const constraints::ConstraintSet original_constraints = constraint_set_;
  // Even budget split across the candidates, as a simple portfolio over
  // model classes.
  constraint_set_.max_search_seconds =
      original_constraints.max_search_seconds /
      static_cast<double>(candidate_models.size());

  std::optional<DfsResult> best;
  for (ml::ModelKind candidate : candidate_models) {
    model_ = candidate;
    auto result = Select(strategy_id);
    if (!result.ok()) {
      model_ = original_model;
      constraint_set_ = original_constraints;
      return result.status();
    }
    if (result->success) {
      best = std::move(*result);
      break;
    }
    // Keep the closest-by-distance failure as the fallback answer.
    if (!best.has_value() ||
        constraint_set_.Distance(result->validation_values) <
            constraint_set_.Distance(best->validation_values)) {
      best = std::move(*result);
    }
  }
  model_ = original_model;
  constraint_set_ = original_constraints;
  return std::move(*best);
}

}  // namespace dfs::core
