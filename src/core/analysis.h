#ifndef DFS_CORE_ANALYSIS_H_
#define DFS_CORE_ANALYSIS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace dfs::core {

/// mean ± std pair as reported throughout the paper's tables.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};

MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Per-dataset coverage of `id`: among the *satisfiable* scenarios of each
/// dataset, the fraction this strategy solved. Datasets without satisfiable
/// scenarios are omitted. (Figure 4's columns.)
std::map<std::string, double> CoverageByDataset(
    const std::vector<ScenarioRecord>& records, fs::StrategyId id);

/// Coverage aggregated across datasets: mean ± std of the per-dataset
/// coverages (the Table-3 "Coverage Fraction" aggregation).
MeanStd CoverageStats(const std::vector<ScenarioRecord>& records,
                      fs::StrategyId id);

/// Fastest-fraction: among each dataset's satisfiable scenarios, how often
/// the strategy delivered the (strictly) fastest successful answer;
/// aggregated as mean ± std across datasets.
MeanStd FastestStats(const std::vector<ScenarioRecord>& records,
                     fs::StrategyId id);

/// Coverage restricted to scenarios matching `filter` (used by the
/// constraint-type and model breakdowns, Tables 5/6); plain fraction over
/// all matching satisfiable scenarios.
double FilteredCoverage(const std::vector<ScenarioRecord>& records,
                        fs::StrategyId id,
                        const std::function<bool(const ScenarioRecord&)>& filter);

/// Mean Eq.(1) distances (validation, test) over *failed* cases of `id`
/// (the Table-4 failure analysis). Distances at the 1e18 sentinel (nothing
/// evaluated) are skipped.
struct FailureDistances {
  MeanStd validation;
  MeanStd test;
  int failed_cases = 0;
};
FailureDistances FailureDistanceStats(
    const std::vector<ScenarioRecord>& records, fs::StrategyId id);

/// Mean normalized F1 for the utility benchmark (Table 4, right column):
/// per scenario, a strategy's test F1 divided by the best strategy's; per
/// dataset the scenario mean; reported as mean ± std across datasets.
MeanStd NormalizedF1Stats(const std::vector<ScenarioRecord>& records,
                          fs::StrategyId id);

/// One greedy step sequence maximizing pooled coverage (Table 8, left):
/// entry k holds the strategy added at step k and the coverage of the first
/// k+1 strategies together (mean ± std across datasets).
struct CombinationStep {
  fs::StrategyId added;
  MeanStd achieved;
};
std::vector<CombinationStep> GreedyCoverageCombination(
    const std::vector<ScenarioRecord>& records,
    const std::vector<fs::StrategyId>& candidates);

/// Greedy combination maximizing the fastest-answer fraction (Table 8,
/// right): a scenario counts for a set if some member strategy matches the
/// overall fastest time (embarrassingly parallel execution assumption).
std::vector<CombinationStep> GreedyFastestCombination(
    const std::vector<ScenarioRecord>& records,
    const std::vector<fs::StrategyId>& candidates);

}  // namespace dfs::core

#endif  // DFS_CORE_ANALYSIS_H_
