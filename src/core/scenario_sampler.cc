#include "core/scenario_sampler.h"

#include "util/logging.h"

namespace dfs::core {

SampledScenario SampleScenario(int num_datasets, const SamplerOptions& options,
                               Rng& rng) {
  DFS_CHECK_GT(num_datasets, 0);
  SampledScenario scenario;
  scenario.dataset_index = rng.UniformInt(0, num_datasets - 1);

  const ml::ModelKind models[] = {ml::ModelKind::kLogisticRegression,
                                  ml::ModelKind::kDecisionTree,
                                  ml::ModelKind::kNaiveBayes};
  scenario.model = models[rng.UniformInt(0, 2)];

  constraints::ConstraintSet& set = scenario.constraint_set;
  // Mandatory: no user cares about sub-coin-flip accuracy (Section 6.1).
  set.min_f1 = rng.Uniform(0.5, 1.0);
  set.max_search_seconds =
      rng.Uniform(options.min_search_seconds, options.max_search_seconds);
  // Optional constraints, each present with probability 1/2.
  if (rng.Bernoulli(options.optional_probability)) {
    set.max_feature_fraction = rng.Uniform(0.0, 1.0);
  }
  if (rng.Bernoulli(options.optional_probability)) {
    // Thresholds below 0.8 are uninteresting: nobody "enforces" fairness
    // while allowing a 20% TPR gap (Section 6.1).
    set.min_equal_opportunity = rng.Uniform(0.8, 1.0);
  }
  if (rng.Bernoulli(options.optional_probability)) {
    set.min_safety = rng.Uniform(0.8, 1.0);
  }
  if (rng.Bernoulli(options.optional_probability)) {
    set.privacy_epsilon = rng.LogNormal(0.0, 1.0);
  }
  return scenario;
}

}  // namespace dfs::core
