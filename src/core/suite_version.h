#ifndef DFS_CORE_SUITE_VERSION_H_
#define DFS_CORE_SUITE_VERSION_H_

#include <cstdint>

namespace dfs::core {

/// Version of the synthetic benchmark suite / engine evaluation semantics:
/// bump when generated data or evaluation behavior changes so stale caches
/// are rejected even though the configuration fields look identical. Keyed
/// into ExperimentConfig::Hash() (the bench result cache) and into the
/// eval-cache spill header (docs/CACHE.md), so both artifact families are
/// invalidated together.
/// v5: DiscreteMutualInformation / DiscreteEntropy accumulate in sorted
/// key order (previously unordered_map iteration order), so MI-based
/// rankings may differ by an ULP across the bump.
inline constexpr uint64_t kSuiteVersion = 5;

}  // namespace dfs::core

#endif  // DFS_CORE_SUITE_VERSION_H_
