#ifndef DFS_CORE_EXPERIMENT_H_
#define DFS_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scenario_sampler.h"
#include "fs/registry.h"
#include "util/statusor.h"

namespace dfs::core {

/// Configuration of one benchmark pool (one of the three benchmark versions
/// of Section 6.1: default parameters, HPO, or utility-driven).
struct ExperimentConfig {
  int num_scenarios = 30;
  bool use_hpo = true;
  bool utility_mode = false;
  uint64_t seed = 1234;
  /// Multiplies the sampled search budgets (and is part of the cache key).
  double time_scale = 1.0;
  /// Multiplies dataset instance counts.
  double row_scale = 1.0;
  SamplerOptions sampler;
  metrics::RobustnessOptions robustness;
  std::vector<fs::StrategyId> strategies;

  ExperimentConfig();

  /// Stable hash over every field that affects results; used to validate
  /// CSV caches.
  uint64_t Hash() const;
};

/// One strategy's outcome on one scenario (one benchmark cell).
struct StrategyOutcome {
  fs::StrategyId id = fs::StrategyId::kOriginalFeatureSet;
  bool success = false;
  double seconds = 0.0;
  double distance_validation = 1e18;
  double distance_test = 1e18;
  double test_f1 = 0.0;
  bool timed_out = false;
  bool search_exhausted = false;
  int evaluations = 0;
};

/// One sampled ML scenario with every strategy's outcome.
struct ScenarioRecord {
  int scenario_id = 0;
  int dataset_index = 0;
  std::string dataset_name;
  ml::ModelKind model = ml::ModelKind::kLogisticRegression;
  constraints::ConstraintSet constraint_set;
  int rows = 0;
  int features = 0;
  std::vector<StrategyOutcome> outcomes;

  /// At least one strategy satisfied the scenario — the paper's evaluation
  /// conditions coverage on satisfiable scenarios.
  bool Satisfiable() const;

  const StrategyOutcome* OutcomeOf(fs::StrategyId id) const;
};

/// A full benchmark pool: samples scenarios per Listing 1, races every
/// configured strategy on each, and supports CSV round-tripping so the
/// (single-machine-expensive) pool is computed once and shared by all
/// table/figure harnesses.
class ExperimentPool {
 public:
  /// Runs the pool from scratch. `verbose` prints one progress line per
  /// scenario to stderr.
  static StatusOr<ExperimentPool> Run(const ExperimentConfig& config,
                                      bool verbose);

  /// Loads from `cache_path` when it exists and was produced by an
  /// identical config; otherwise runs and saves.
  static StatusOr<ExperimentPool> RunOrLoad(const ExperimentConfig& config,
                                            const std::string& cache_path,
                                            bool verbose);

  Status SaveCsv(const std::string& path) const;
  static StatusOr<ExperimentPool> LoadCsv(const std::string& path,
                                          const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const std::vector<ScenarioRecord>& records() const { return records_; }

 private:
  ExperimentConfig config_;
  std::vector<ScenarioRecord> records_;
};

/// Applies the DFS_SCENARIOS / DFS_TIME_SCALE / DFS_DATA_SCALE / DFS_SEED
/// environment overrides to a config (used by every bench binary).
void ApplyEnvironmentOverrides(ExperimentConfig& config);

}  // namespace dfs::core

#endif  // DFS_CORE_EXPERIMENT_H_
