#ifndef DFS_CORE_OPTIMIZER_H_
#define DFS_CORE_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "ml/random_forest.h"
#include "util/statusor.h"

namespace dfs::core {

/// Configuration of the meta-learning featurization.
struct OptimizerOptions {
  /// Subsampling-based landmarking sample size (Section 6.2 uses 100, the
  /// smallest training set in the benchmark).
  int landmark_sample_size = 100;
  int landmark_folds = 3;
  /// Shrinkage toward each strategy's global training success rate:
  /// P = (1 - w) * forest + w * prior. Stabilizes the argmax when the
  /// meta-training pool is small (the paper trained on thousands of
  /// scenarios; scaled-down studies have tens).
  double prior_blend = 0.25;
  ml::RandomForestOptions forest;
  uint64_t seed = 99;
};

/// The meta-feature vector ρ(D, φ, C) of Section 5.2: dataset shape, model
/// one-hot, raw constraint thresholds (with paper defaults for absent
/// optionals), and landmarking-based hardness deltas.
struct ScenarioFeatures {
  std::vector<double> values;

  /// Stable names parallel to `values` (for inspection/tests).
  static std::vector<std::string> Names();
};

/// Computes ρ for a scenario. `dataset` must be the scenario's dataset (the
/// landmark CV runs on a class-stratified subsample of it).
StatusOr<ScenarioFeatures> FeaturizeScenario(
    const data::Dataset& dataset, ml::ModelKind model,
    const constraints::ConstraintSet& constraint_set,
    const OptimizerOptions& options);

/// The meta-learning DFS Optimizer (Algorithm 1): one balanced random
/// forest per FS strategy predicts P(strategy satisfies scenario); at query
/// time the strategy with the highest probability is proposed.
class DfsOptimizer {
 public:
  explicit DfsOptimizer(const OptimizerOptions& options = {})
      : options_(options) {}

  /// Training phase: fits one model per strategy from the benchmark pool.
  /// `records` must carry featurized scenarios (see TrainingExample).
  struct TrainingExample {
    ScenarioFeatures features;
    /// success per strategy (keyed by StrategyId).
    std::map<fs::StrategyId, bool> outcomes;
  };
  Status Train(const std::vector<TrainingExample>& examples,
               const std::vector<fs::StrategyId>& strategies);

  /// Deployment phase: P(success) per strategy for a query scenario.
  StatusOr<std::map<fs::StrategyId, double>> PredictProbabilities(
      const ScenarioFeatures& features) const;

  /// argmax of PredictProbabilities.
  StatusOr<fs::StrategyId> Choose(const ScenarioFeatures& features) const;

  const std::vector<fs::StrategyId>& strategies() const { return strategies_; }

  /// Serializes the trained optimizer (strategy set, per-strategy forests /
  /// constants, priors, blend) so a meta-model trained offline on a large
  /// scenario pool can be shipped and loaded at deployment time — the
  /// Algorithm-1 deployment phase without retraining.
  StatusOr<std::string> Serialize() const;
  static StatusOr<DfsOptimizer> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<DfsOptimizer> LoadFromFile(const std::string& path);

 private:
  OptimizerOptions options_;
  std::vector<fs::StrategyId> strategies_;
  std::map<fs::StrategyId, std::unique_ptr<ml::RandomForest>> models_;
  std::map<fs::StrategyId, double> constant_probability_;  // degenerate labels
  std::map<fs::StrategyId, double> success_prior_;  // global training rates
};

/// One observed (scenario, strategy, outcome) triple — the single
/// featurize→outcome pathway shared by the offline training-pool builder
/// (BuildTrainingExamples) and the online router's replay buffer
/// (dfs::router). Records with equal fingerprints describe the same
/// scenario and are merged into one TrainingExample.
struct OutcomeRecord {
  uint64_t fingerprint = 0;
  ScenarioFeatures features;
  fs::StrategyId strategy = fs::StrategyId::kOriginalFeatureSet;
  bool success = false;
};

/// Stable 64-bit fingerprint of a scenario shape (dataset identity, model,
/// constraint thresholds). FNV-1a over the identifying fields, so equal
/// shapes hash equal across processes — the key of the router's
/// featurization cache and of OutcomeRecord grouping.
uint64_t ScenarioFingerprint(const std::string& dataset_name, int num_rows,
                             int num_features, ml::ModelKind model,
                             const constraints::ConstraintSet& constraint_set);

/// Groups outcome records by fingerprint into the merged per-scenario
/// examples DfsOptimizer::Train consumes. First-seen order is preserved;
/// for duplicate (fingerprint, strategy) pairs the most recent record wins
/// (online feedback overwrites stale outcomes).
std::vector<DfsOptimizer::TrainingExample> ExamplesFromOutcomeRecords(
    const std::vector<OutcomeRecord>& records);

/// Builds TrainingExamples from pool records by regenerating each dataset
/// and featurizing (deterministic in the pool's config seed). Flattens
/// each record through OutcomeRecord + ExamplesFromOutcomeRecords — the
/// same pathway the online router feeds — salting the fingerprint with the
/// record ordinal so each pool record stays its own example.
StatusOr<std::vector<DfsOptimizer::TrainingExample>> BuildTrainingExamples(
    const ExperimentPool& pool, const OptimizerOptions& options);

/// Leave-one-dataset-out evaluation of the DFS Optimizer on a benchmark
/// pool (the protocol of Section 6.1): for every dataset, the optimizer is
/// trained on all other datasets' scenarios and queried on the held-out
/// ones. Feeds the "DFS Optimizer" rows of Table 3 / Figure 4 and the
/// meta-learning accuracy breakdown of Table 9.
struct OptimizerLodoResult {
  /// Coverage of the optimizer's chosen strategy per held-out dataset.
  std::map<std::string, double> coverage_by_dataset;
  /// Aggregations across datasets (mean ± std), as in Table 3.
  double coverage_mean = 0.0;
  double coverage_stddev = 0.0;
  double fastest_mean = 0.0;
  double fastest_stddev = 0.0;

  /// Per-strategy precision/recall/F1 of the success predictors at the 0.5
  /// threshold, aggregated across held-out datasets (Table 9).
  struct StrategyScores {
    double precision_mean = 0.0, precision_stddev = 0.0;
    double recall_mean = 0.0, recall_stddev = 0.0;
    double f1_mean = 0.0, f1_stddev = 0.0;
  };
  std::map<fs::StrategyId, StrategyScores> per_strategy;
};

StatusOr<OptimizerLodoResult> EvaluateOptimizerLodo(
    const ExperimentPool& pool, const OptimizerOptions& options);

}  // namespace dfs::core

#endif  // DFS_CORE_OPTIMIZER_H_
