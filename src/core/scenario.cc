#include "core/scenario.h"

namespace dfs::core {

StatusOr<MlScenario> MakeScenario(const data::Dataset& dataset,
                                  ml::ModelKind model,
                                  const constraints::ConstraintSet& constraints,
                                  Rng& rng) {
  MlScenario scenario;
  scenario.dataset_name = dataset.name();
  DFS_ASSIGN_OR_RETURN(scenario.split,
                       data::StratifiedSplit(dataset, 3.0, 1.0, 1.0, rng));
  scenario.model = model;
  scenario.constraint_set = constraints;
  return scenario;
}

}  // namespace dfs::core
