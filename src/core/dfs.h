#ifndef DFS_CORE_DFS_H_
#define DFS_CORE_DFS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/optimizer.h"
#include "core/scenario.h"
#include "fs/registry.h"
#include "util/statusor.h"

namespace dfs::core {

/// End-user result of a declarative feature-selection request.
struct DfsResult {
  bool success = false;
  /// Selected feature indices (the satisfying subset on success, otherwise
  /// the closest subset found).
  std::vector<int> features;
  std::vector<std::string> feature_names;
  constraints::MetricValues validation_values;
  constraints::MetricValues test_values;
  double search_seconds = 0.0;
  /// Strategy that produced the result.
  std::string strategy;
  /// Model the result was validated with ("LR", "NB", "DT", "SVM").
  std::string model;
  /// Per-evaluation search trace (only when RecordTrace(true)).
  std::vector<TracePoint> trace;
};

/// The user-facing DFS system (Figure 2): declare a dataset, a model, and a
/// constraint set; the system finds a feature subset satisfying every
/// constraint — via a chosen strategy, the meta-learned optimizer, or a
/// parallel portfolio of strategies (Section 6.5).
///
///   DeclarativeFeatureSelection dfs(dataset);
///   dfs.SetModel(ml::ModelKind::kLogisticRegression)
///      .SetConstraints(ConstraintSetBuilder()
///                          .MinF1(0.7)
///                          .MinEqualOpportunity(0.9)
///                          .MaxSearchSeconds(5)
///                          .Build().value())
///      .UseHpo(true);
///   auto result = dfs.Select(fs::StrategyId::kSffs);
class DeclarativeFeatureSelection {
 public:
  /// `dataset` must be preprocessed (see data::Preprocess); it is split
  /// 3:1:1 internally with the given seed.
  explicit DeclarativeFeatureSelection(data::Dataset dataset,
                                       uint64_t seed = 42);

  DeclarativeFeatureSelection& SetModel(ml::ModelKind model);
  DeclarativeFeatureSelection& SetConstraints(
      const constraints::ConstraintSet& constraint_set);
  DeclarativeFeatureSelection& UseHpo(bool use_hpo);
  /// Maximize F1 subject to the constraints (Eq. 2) instead of stopping at
  /// the first satisfying subset.
  DeclarativeFeatureSelection& MaximizeUtility(bool maximize);
  /// Record a per-evaluation search trace into DfsResult::trace.
  DeclarativeFeatureSelection& RecordTrace(bool record);

  /// Runs one strategy.
  StatusOr<DfsResult> Select(fs::StrategyId strategy_id);

  /// Lets a trained DfsOptimizer pick the strategy, then runs it.
  StatusOr<DfsResult> SelectWithOptimizer(const DfsOptimizer& optimizer);

  /// Runs several strategies concurrently (each on its own engine) and
  /// returns the fastest successful result, or the closest-by-distance
  /// result if none succeeds.
  StatusOr<DfsResult> SelectParallel(
      const std::vector<fs::StrategyId>& strategy_ids, int num_threads);

  /// Declarative AutoML (the paper's Section-7 extension: "not only select
  /// features but also models ... to satisfy user-specified constraints"):
  /// splits the search budget evenly across the candidate models and runs
  /// `strategy_id` under each; the first satisfying (model, subset) pair
  /// wins, otherwise the closest one is returned. The scenario's SetModel
  /// choice is ignored in favor of the candidates.
  StatusOr<DfsResult> SelectModelAndFeatures(
      const std::vector<ml::ModelKind>& candidate_models,
      fs::StrategyId strategy_id);

 private:
  StatusOr<MlScenario> BuildScenario() const;
  DfsResult ToResult(RunResult run, fs::StrategyId id) const;

  data::Dataset dataset_;
  uint64_t seed_;
  ml::ModelKind model_ = ml::ModelKind::kLogisticRegression;
  constraints::ConstraintSet constraint_set_;
  bool use_hpo_ = false;
  bool maximize_utility_ = false;
  bool record_trace_ = false;
};

}  // namespace dfs::core

#endif  // DFS_CORE_DFS_H_
