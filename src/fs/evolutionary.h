#ifndef DFS_FS_EVOLUTIONARY_H_
#define DFS_FS_EVOLUTIONARY_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// Options for BPSO(NR).
struct BinaryPsoOptions {
  int swarm_size = 20;
  double inertia = 0.7;
  double cognitive = 1.5;  ///< pull toward the particle's own best
  double social = 1.5;     ///< pull toward the swarm's best
  double max_velocity = 4.0;
};

/// BPSO(NR) — binary particle swarm optimization over the feature-decision
/// vector (Kennedy & Eberhart; applied to FS by Xue et al. 2012, cited in
/// Section 4.1). An *extension* beyond the paper's 16 benchmarked
/// strategies, from the same single-objective randomized-NR taxonomy leaf
/// as SA(NR)/TPE(NR). Velocities evolve continuously; positions are
/// re-sampled through a sigmoid of the velocity.
class BinaryPsoStrategy : public FeatureSelectionStrategy {
 public:
  explicit BinaryPsoStrategy(uint64_t seed,
                             const BinaryPsoOptions& options = {})
      : seed_(seed), options_(options) {}

  std::string name() const override { return "BPSO(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  uint64_t seed_;
  BinaryPsoOptions options_;
};

/// Options for GA(NR).
struct GeneticAlgorithmOptions {
  int population_size = 24;
  double crossover_probability = 0.9;
  /// Per-bit mutation probability; <= 0 means 1 / num_features.
  double mutation_probability = -1.0;
  int tournament_size = 3;
  int elites = 2;
};

/// GA(NR) — single-objective genetic algorithm over feature masks, the
/// classic evolutionary-computation baseline of the Xue et al. survey.
/// Extension beyond the benchmarked 16 (NSGA-II covers the multi-objective
/// branch there); useful as an ablation of NSGA-II's multi-objective
/// machinery.
class GeneticAlgorithmStrategy : public FeatureSelectionStrategy {
 public:
  explicit GeneticAlgorithmStrategy(
      uint64_t seed, const GeneticAlgorithmOptions& options = {})
      : seed_(seed), options_(options) {}

  std::string name() const override { return "GA(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  uint64_t seed_;
  GeneticAlgorithmOptions options_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_EVOLUTIONARY_H_
