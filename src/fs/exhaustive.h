#ifndef DFS_FS_EXHAUSTIVE_H_
#define DFS_FS_EXHAUSTIVE_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// ES(NR): exhaustive enumeration of feature subsets, smallest sizes first
/// (subsets over the evaluation-independent max-feature-count bound are
/// never generated). Size-ascending order makes ES surprisingly effective
/// under tight budgets on datasets with few critical features, matching the
/// paper's observation — but it is intractable on wide datasets.
class ExhaustiveSearch : public FeatureSelectionStrategy {
 public:
  std::string name() const override { return "ES(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kExhaustive;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;
};

}  // namespace dfs::fs

#endif  // DFS_FS_EXHAUSTIVE_H_
