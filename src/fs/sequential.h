#ifndef DFS_FS_SEQUENTIAL_H_
#define DFS_FS_SEQUENTIAL_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// The sequential-selection family (Aha & Bankert 1996; Pudil et al. 1994):
///
///  * SFS(NR)  — forward: greedily add the feature that most improves the
///               Eq. (2) objective.
///  * SBS(NR)  — backward: start from the full set and greedily remove.
///  * SFFS(NR) — forward with floating: after each addition, keep removing
///               features while that improves on the best subset seen at
///               the smaller size.
///  * SBFS(NR) — backward with floating: after each removal, try re-adding
///               previously removed features.
///
/// All four are single-objective, no-ranking wrapper searches; forward
/// variants respect the evaluation-independent max-feature-count bound by
/// stopping growth at that size.
class SequentialSelection : public FeatureSelectionStrategy {
 public:
  enum class Direction { kForward, kBackward };

  SequentialSelection(Direction direction, bool floating)
      : direction_(direction), floating_(floating) {}

  std::string name() const override;
  StrategyInfo info() const override;
  void Run(EvalContext& context) override;

 private:
  void RunForward(EvalContext& context);
  void RunBackward(EvalContext& context);

  Direction direction_;
  bool floating_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_SEQUENTIAL_H_
