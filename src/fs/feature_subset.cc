#include "fs/feature_subset.h"

#include "util/logging.h"

namespace dfs::fs {

std::vector<int> MaskToIndices(const FeatureMask& mask) {
  std::vector<int> indices;
  for (size_t f = 0; f < mask.size(); ++f) {
    if (mask[f]) indices.push_back(static_cast<int>(f));
  }
  return indices;
}

FeatureMask IndicesToMask(int num_features, const std::vector<int>& indices) {
  FeatureMask mask(num_features, 0);
  for (int f : indices) {
    DFS_CHECK(f >= 0 && f < num_features) << "feature index out of range";
    mask[f] = 1;
  }
  return mask;
}

FeatureMask FullMask(int num_features) {
  return FeatureMask(num_features, 1);
}

int CountSelected(const FeatureMask& mask) {
  int count = 0;
  for (char bit : mask) count += bit ? 1 : 0;
  return count;
}

uint64_t MaskHash(const FeatureMask& mask) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char bit : mask) {
    hash ^= static_cast<uint64_t>(bit ? 1 : 0) + 0x9E3779B9ULL;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string MaskToString(const FeatureMask& mask) {
  std::string out = "{";
  bool first = true;
  for (size_t f = 0; f < mask.size(); ++f) {
    if (!mask[f]) continue;
    if (!first) out += ",";
    out += std::to_string(f);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace dfs::fs
