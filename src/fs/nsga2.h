#ifndef DFS_FS_NSGA2_H_
#define DFS_FS_NSGA2_H_

#include <string>
#include <vector>

#include "fs/strategy.h"

namespace dfs::fs {

/// Options for NSGA-II(NR). Population size 30 follows the Xue et al.
/// configuration adopted by the paper (Section 6.2).
struct Nsga2Options {
  int population_size = 30;
  double crossover_probability = 0.9;
  /// Per-bit mutation probability; <= 0 means 1 / num_features.
  double mutation_probability = -1.0;
};

/// NSGA-II(NR) (Deb et al.; surveyed for FS by Xue et al. 2015): the
/// multi-objective representative. Each active constraint contributes one
/// objective (its shortfall); the elitist genetic loop runs fast
/// non-dominated sorting + crowding-distance selection, binary tournaments,
/// uniform crossover, and bit-flip mutation over feature masks until the
/// engine reports success or the budget expires.
class Nsga2Strategy : public FeatureSelectionStrategy {
 public:
  explicit Nsga2Strategy(uint64_t seed, const Nsga2Options& options = {})
      : seed_(seed), options_(options) {}

  std::string name() const override { return "NSGA-II(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kMulti;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  uint64_t seed_;
  Nsga2Options options_;
};

/// Fast non-dominated sort (exposed for testing): returns the front index of
/// each individual (0 = non-dominated) for minimization objectives.
std::vector<int> FastNonDominatedSort(
    const std::vector<std::vector<double>>& objectives);

/// Crowding distance within one front (exposed for testing): `front` holds
/// indices into `objectives`; result is parallel to `front`.
std::vector<double> CrowdingDistance(
    const std::vector<std::vector<double>>& objectives,
    const std::vector<int>& front);

}  // namespace dfs::fs

#endif  // DFS_FS_NSGA2_H_
