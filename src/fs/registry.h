#ifndef DFS_FS_REGISTRY_H_
#define DFS_FS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "fs/strategy.h"
#include "util/statusor.h"

namespace dfs::fs {

/// Identifier of every strategy in the benchmark (Section 4.2), plus the
/// Original-Feature-Set baseline reported in the paper's tables. Enumerator
/// order matches the row order of Table 3.
enum class StrategyId {
  kOriginalFeatureSet,  // baseline: evaluate the full set once
  kSbs,
  kSbfs,
  kRfe,
  kTpeMcfs,
  kTpeReliefF,
  kTpeVariance,
  kTpeMask,     // TPE(NR)
  kNsga2,
  kTpeMim,
  kSimulatedAnnealing,
  kExhaustive,
  kTpeFisher,
  kTpeChi2,
  kSfs,
  kSffs,
  kTpeFcbf,
  // --- extensions beyond the paper's benchmark (not in AllStrategies) ---
  kBinaryPso,         // BPSO(NR): binary particle swarm (Xue et al. 2012)
  kGeneticAlgorithm,  // GA(NR): single-objective genetic algorithm
  kTpeMrmr,           // TPE(mRMR): minimum-redundancy-maximum-relevance
};

/// The 16 benchmarked strategies, in Table-3 row order (baseline excluded).
const std::vector<StrategyId>& AllStrategies();

/// The 16 strategies plus the Original-Feature-Set baseline (first).
const std::vector<StrategyId>& AllStrategiesWithBaseline();

/// Extension strategies implemented beyond the paper's benchmark (BPSO,
/// GA, TPE(mRMR)). Kept out of AllStrategies so the reproduced tables stay
/// faithful; usable anywhere a StrategyId is accepted.
const std::vector<StrategyId>& ExtensionStrategies();

/// Paper-style display name, e.g. "SFFS(NR)".
std::string StrategyIdToString(StrategyId id);

/// Inverse of StrategyIdToString (NotFound on unknown names).
StatusOr<StrategyId> StrategyIdFromString(const std::string& name);

/// Instantiates a strategy. `seed` drives all of the strategy's own
/// randomness (proposals, restarts); deterministic given (id, seed).
std::unique_ptr<FeatureSelectionStrategy> CreateStrategy(StrategyId id,
                                                         uint64_t seed);

}  // namespace dfs::fs

#endif  // DFS_FS_REGISTRY_H_
