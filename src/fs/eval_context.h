#ifndef DFS_FS_EVAL_CONTEXT_H_
#define DFS_FS_EVAL_CONTEXT_H_

#include <span>
#include <vector>

#include "constraints/constraint_set.h"
#include "data/dataset.h"
#include "fs/feature_subset.h"
#include "util/rng.h"
#include "util/statusor.h"
#include "util/stopwatch.h"

namespace dfs::fs {

/// Result of one wrapper evaluation of a feature subset.
struct EvalOutcome {
  /// False when the evaluation did not run (deadline expired, empty mask,
  /// or over the evaluation-independent size bound).
  bool evaluated = false;
  /// Wall-clock cost of this evaluation (train [+HPO] + measure +
  /// confirm-on-test); 0 for cache hits and skipped evaluations. The same
  /// value lands in the dfs::obs histograms "engine.evaluation_seconds"
  /// and "strategy.<label>.evaluation_seconds".
  double seconds = 0.0;
  /// Metric values on the validation split.
  constraints::MetricValues validation;
  /// Eq. (1) distance on the validation split (0 = all constraints hold).
  double distance = 1e18;
  /// Eq. (2) objective (== distance unless utility mode is active).
  double objective = 1e18;
  /// All constraints hold on validation.
  bool satisfied_validation = false;
  /// All constraints hold on validation *and* test — the DFS workflow's
  /// success criterion (Figure 2); strategies should stop searching.
  bool success = false;
};

/// The wrapper-evaluation environment a feature-selection strategy runs in.
/// Implemented by core::DfsEngine; strategies only see this interface, which
/// keeps every strategy a pure search procedure (Section 4.1: for DFS all
/// strategies are wrapper approaches).
///
/// Observability: the implementation attributes every Evaluate() call to
/// the strategy driving the run under dfs::obs metric names
/// "strategy.<label>.{runs,evaluations,evaluation_seconds,run_seconds}"
/// (label = obs::SanitizeLabel(strategy.name())), so strategies get
/// per-strategy counts and timing without carrying any instrumentation
/// themselves. Strategy-internal costs that bypass Evaluate (ranking
/// computation, importance fits) are recorded at their call sites under
/// "fs.*" — see top_k.cc / rfe.cc / portfolio.cc.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Total number of features in the dataset.
  virtual int num_features() const = 0;

  /// Evaluation-independent bound from the Max-Feature-Set-Size constraint
  /// (Section 3): masks selecting more features can be pruned unevaluated.
  virtual int max_feature_count() const = 0;

  virtual const constraints::ConstraintSet& constraint_set() const = 0;

  /// Training split (read access for ranking computation).
  virtual const data::Dataset& train_data() const = 0;

  /// True when the search must end (deadline hit or success recorded).
  virtual bool ShouldStop() const = 0;

  /// Seconds left before the Max-Search-Time deadline.
  virtual double RemainingSeconds() const = 0;

  /// Deterministic per-run random stream for the strategy.
  virtual Rng& rng() = 0;

  /// Trains the scenario's model on `mask` (with HPO when enabled), measures
  /// the metrics on validation, checks the constraints, and — if validation
  /// passes — confirms on test. Results are memoized per mask.
  virtual EvalOutcome Evaluate(const FeatureMask& mask) = 0;

  /// Evaluates a candidate sweep: one outcome per mask, in submission
  /// order. Semantically equivalent to calling Evaluate() on each mask in
  /// order — same memoization, same best-subset bookkeeping, same
  /// tie-breaks — which is the determinism contract that lets
  /// implementations run the per-mask training/measurement concurrently
  /// (core::DfsEngine does, see DESIGN.md). A batch is attempted in full:
  /// unlike a hand-written sweep, it does not early-exit when a mask
  /// succeeds mid-batch; only deadline expiry / cancellation skip the
  /// remaining masks (skipped outcomes have evaluated == false). Check
  /// ShouldStop() between batches, not between masks of one batch.
  virtual std::vector<EvalOutcome> EvaluateBatch(
      std::span<const FeatureMask> masks) {
    std::vector<EvalOutcome> outcomes;
    outcomes.reserve(masks.size());
    for (const FeatureMask& mask : masks) outcomes.push_back(Evaluate(mask));
    return outcomes;
  }

  /// Importances of the *selected* features under the scenario's model
  /// fitted on `mask` (model-native, or permutation importance when the
  /// model has none — the RFE(Model) fallback). Order matches
  /// MaskToIndices(mask).
  virtual StatusOr<std::vector<double>> FittedImportances(
      const FeatureMask& mask) = 0;
};

}  // namespace dfs::fs

#endif  // DFS_FS_EVAL_CONTEXT_H_
