#ifndef DFS_FS_STRATEGY_H_
#define DFS_FS_STRATEGY_H_

#include <string>

#include "fs/eval_context.h"

namespace dfs::fs {

/// Position of a strategy in the DFS taxonomy (Figure 3).
struct StrategyInfo {
  enum class Objectives { kSingle, kMulti };
  enum class Search { kExhaustive, kSequential, kRandomized };

  Objectives objectives = Objectives::kSingle;
  Search search = Search::kSequential;
  bool uses_ranking = false;
  /// Ranking family for ranking-based strategies ("" = NR).
  std::string ranking = "";
};

/// A feature-selection strategy: a search procedure over feature masks that
/// drives EvalContext::Evaluate until the context reports ShouldStop() (a
/// satisfying subset was found or the search-time budget expired) or the
/// strategy exhausts its own search space.
class FeatureSelectionStrategy {
 public:
  virtual ~FeatureSelectionStrategy() = default;

  /// Paper-style display name, e.g. "SFFS(NR)" or "TPE(FCBF)".
  virtual std::string name() const = 0;

  virtual StrategyInfo info() const = 0;

  virtual void Run(EvalContext& context) = 0;
};

}  // namespace dfs::fs

#endif  // DFS_FS_STRATEGY_H_
