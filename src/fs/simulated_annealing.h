#ifndef DFS_FS_SIMULATED_ANNEALING_H_
#define DFS_FS_SIMULATED_ANNEALING_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// Options for SA(NR).
struct SimulatedAnnealingOptions {
  double initial_temperature = 0.25;
  /// Geometric cooling factor applied per evaluation.
  double cooling = 0.995;
  /// Restart from a fresh random mask after this many rejected moves.
  int max_stall = 60;
};

/// SA(NR): simulated annealing over the binary feature-decision vector
/// (Doak 1992; Metropolis et al. 1953). Neighbor moves flip one feature;
/// worse moves are accepted with probability exp(-Δ/T) under geometric
/// cooling; prolonged stalls trigger a random restart.
class SimulatedAnnealingStrategy : public FeatureSelectionStrategy {
 public:
  explicit SimulatedAnnealingStrategy(
      uint64_t seed, const SimulatedAnnealingOptions& options = {})
      : seed_(seed), options_(options) {}

  std::string name() const override { return "SA(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  uint64_t seed_;
  SimulatedAnnealingOptions options_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_SIMULATED_ANNEALING_H_
