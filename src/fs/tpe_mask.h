#ifndef DFS_FS_TPE_MASK_H_
#define DFS_FS_TPE_MASK_H_

#include <string>

#include "fs/search/tpe.h"
#include "fs/strategy.h"

namespace dfs::fs {

/// TPE(NR): ranking-free randomized search — every feature's inclusion is a
/// binary decision variable and TPE models the good/bad densities per
/// dimension (Section 4.2). Because it is not bound to any ranking it can
/// prune specific (e.g. biased) features that accuracy-oriented rankings
/// keep, which is why it wins on high EO thresholds (Section 6.4).
class TpeMaskStrategy : public FeatureSelectionStrategy {
 public:
  /// `proposal_batch` masks are proposed per round and evaluated in one
  /// EvaluateBatch before any of their losses are recorded (speculative
  /// batched TPE). The batch width is a constant — never the engine's
  /// thread count — so the proposal sequence is independent of parallelism.
  explicit TpeMaskStrategy(uint64_t seed, const TpeOptions& options = {},
                           int proposal_batch = 4)
      : seed_(seed),
        options_(options),
        proposal_batch_(proposal_batch < 1 ? 1 : proposal_batch) {}

  std::string name() const override { return "TPE(NR)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  uint64_t seed_;
  TpeOptions options_;
  int proposal_batch_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_TPE_MASK_H_
