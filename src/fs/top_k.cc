#include "fs/top_k.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dfs::fs {

TopKRankingStrategy::TopKRankingStrategy(RankerKind kind, uint64_t seed,
                                         const TpeOptions& tpe_options)
    : kind_(kind), ranker_(CreateRanker(kind)), seed_(seed),
      tpe_options_(tpe_options) {}

std::string TopKRankingStrategy::name() const {
  return "TPE(" + ranker_->name() + ")";
}

StrategyInfo TopKRankingStrategy::info() const {
  StrategyInfo info;
  info.objectives = StrategyInfo::Objectives::kSingle;
  info.search = StrategyInfo::Search::kRandomized;
  info.uses_ranking = true;
  info.ranking = ranker_->name();
  return info;
}

void TopKRankingStrategy::Run(EvalContext& context) {
  const int n = context.num_features();
  // The ranking is the strategy's own pre-search cost, invisible to
  // Evaluate()-based accounting — "fs.ranking.<family>_seconds" is how
  // MCFS's spectral-embedding overhead shows up in metrics snapshots.
  auto scores = [&] {
    auto& registry = obs::MetricsRegistry::Global();
    obs::ScopedTimer timer(
        registry.histogram("fs.ranking." +
                           obs::SanitizeLabel(ranker_->name()) + "_seconds"),
        &registry.counter("fs.rankings_computed"));
    obs::TraceSpan span("fs.ranking", ranker_->name());
    return ranker_->Rank(context.train_data(), context.rng());
  }();
  if (!scores.ok()) {
    DFS_LOG(WARNING) << name() << " ranking failed: "
                     << scores.status().ToString();
    return;
  }
  if (context.ShouldStop()) return;  // ranking ate the whole budget
  const std::vector<int> order = ArgsortDescending(scores.value());

  const int max_k = std::min(n, context.max_feature_count());
  TpeIntegerOptimizer optimizer(1, max_k, tpe_options_, seed_);
  while (!context.ShouldStop()) {
    const int k = optimizer.Propose();
    FeatureMask mask(n, 0);
    for (int i = 0; i < k; ++i) mask[order[i]] = 1;
    const EvalOutcome outcome = context.Evaluate(mask);
    if (!outcome.evaluated) break;
    optimizer.Record(k, outcome.objective);
  }
}

}  // namespace dfs::fs
