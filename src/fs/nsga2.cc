#include "fs/nsga2.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace dfs::fs {
namespace {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace

std::vector<int> FastNonDominatedSort(
    const std::vector<std::vector<double>>& objectives) {
  const int n = static_cast<int>(objectives.size());
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<int>> dominated_by(n);
  std::vector<int> rank(n, 0);

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (Dominates(objectives[i], objectives[j])) {
        dominated_by[i].push_back(j);
        ++domination_count[j];
      } else if (Dominates(objectives[j], objectives[i])) {
        dominated_by[j].push_back(i);
        ++domination_count[i];
      }
    }
  }
  std::vector<int> current;
  for (int i = 0; i < n; ++i) {
    if (domination_count[i] == 0) current.push_back(i);
  }
  int front = 0;
  while (!current.empty()) {
    std::vector<int> next;
    for (int i : current) {
      rank[i] = front;
      for (int j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++front;
  }
  return rank;
}

std::vector<double> CrowdingDistance(
    const std::vector<std::vector<double>>& objectives,
    const std::vector<int>& front) {
  const int size = static_cast<int>(front.size());
  std::vector<double> distance(size, 0.0);
  if (size == 0) return distance;
  const int num_objectives = static_cast<int>(objectives[front[0]].size());

  for (int m = 0; m < num_objectives; ++m) {
    std::vector<int> order(size);
    for (int i = 0; i < size; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return objectives[front[a]][m] < objectives[front[b]][m];
    });
    const double lo = objectives[front[order.front()]][m];
    const double hi = objectives[front[order.back()]][m];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (hi - lo < 1e-12) continue;
    for (int i = 1; i + 1 < size; ++i) {
      distance[order[i]] += (objectives[front[order[i + 1]]][m] -
                             objectives[front[order[i - 1]]][m]) /
                            (hi - lo);
    }
  }
  return distance;
}

void Nsga2Strategy::Run(EvalContext& context) {
  const int n = context.num_features();
  const int max_ones = context.max_feature_count();
  Rng rng(seed_);
  const double mutation_probability =
      options_.mutation_probability > 0.0 ? options_.mutation_probability
                                          : 1.0 / n;

  auto repair = [&](FeatureMask& mask) {
    int ones = CountSelected(mask);
    while (ones > max_ones) {
      const int f = rng.UniformInt(0, n - 1);
      if (mask[f]) {
        mask[f] = 0;
        --ones;
      }
    }
    if (ones == 0) mask[rng.UniformInt(0, n - 1)] = 1;
  };

  struct Individual {
    FeatureMask mask;
    std::vector<double> objectives;
  };

  // Generation is sequential (it consumes the strategy RNG in a fixed
  // order), evaluation is batched: a whole population's masks go through
  // one EvaluateBatch. Returns false when any evaluation was refused
  // (deadline/cancellation) — the search ends, like the serial version.
  auto evaluate_into = [&](std::vector<FeatureMask> masks,
                           std::vector<Individual>& out) -> bool {
    const std::vector<EvalOutcome> outcomes = context.EvaluateBatch(masks);
    for (size_t i = 0; i < masks.size(); ++i) {
      if (!outcomes[i].evaluated) return false;
      Individual individual;
      individual.objectives = context.constraint_set().PerConstraintShortfalls(
          outcomes[i].validation);
      // Tie-break objective so fully-feasible individuals still get pressure
      // toward higher F1 in utility mode.
      individual.objectives.push_back(outcomes[i].objective);
      individual.mask = std::move(masks[i]);
      out.push_back(std::move(individual));
    }
    return true;
  };

  // Initial population.
  std::vector<Individual> population;
  const double density = std::min(0.5, static_cast<double>(max_ones) / n);
  if (!context.ShouldStop()) {
    std::vector<FeatureMask> masks;
    masks.reserve(options_.population_size);
    for (int i = 0; i < options_.population_size; ++i) {
      FeatureMask mask(n, 0);
      for (int f = 0; f < n; ++f) mask[f] = rng.Bernoulli(density) ? 1 : 0;
      repair(mask);
      masks.push_back(std::move(mask));
    }
    if (!evaluate_into(std::move(masks), population)) return;
  }

  while (!context.ShouldStop() && !population.empty()) {
    // Ranks + crowding over the current population.
    std::vector<std::vector<double>> objective_table;
    objective_table.reserve(population.size());
    for (const auto& individual : population) {
      objective_table.push_back(individual.objectives);
    }
    const std::vector<int> rank = FastNonDominatedSort(objective_table);
    std::vector<double> crowding(population.size(), 0.0);
    {
      const int max_rank =
          *std::max_element(rank.begin(), rank.end());
      for (int r = 0; r <= max_rank; ++r) {
        std::vector<int> front;
        for (size_t i = 0; i < rank.size(); ++i) {
          if (rank[i] == r) front.push_back(static_cast<int>(i));
        }
        const std::vector<double> front_distance =
            CrowdingDistance(objective_table, front);
        for (size_t i = 0; i < front.size(); ++i) {
          crowding[front[i]] = front_distance[i];
        }
      }
    }
    auto tournament = [&]() -> const Individual& {
      const int a = rng.UniformInt(0, static_cast<int>(population.size()) - 1);
      const int b = rng.UniformInt(0, static_cast<int>(population.size()) - 1);
      if (rank[a] != rank[b]) return population[rank[a] < rank[b] ? a : b];
      return population[crowding[a] >= crowding[b] ? a : b];
    };

    // Offspring generation: all children for the generation first (fixed
    // RNG order), then one batch evaluation.
    std::vector<FeatureMask> children;
    children.reserve(options_.population_size);
    for (int i = 0; i < options_.population_size; ++i) {
      const Individual& parent_a = tournament();
      const Individual& parent_b = tournament();
      FeatureMask child(n);
      if (rng.Bernoulli(options_.crossover_probability)) {
        for (int f = 0; f < n; ++f) {
          child[f] = rng.Bernoulli(0.5) ? parent_a.mask[f] : parent_b.mask[f];
        }
      } else {
        child = parent_a.mask;
      }
      for (int f = 0; f < n; ++f) {
        if (rng.Bernoulli(mutation_probability)) child[f] = child[f] ? 0 : 1;
      }
      repair(child);
      children.push_back(std::move(child));
    }
    std::vector<Individual> offspring;
    offspring.reserve(options_.population_size);
    if (!evaluate_into(std::move(children), offspring)) return;

    // Environmental selection over parents + offspring.
    for (auto& individual : offspring) {
      population.push_back(std::move(individual));
    }
    objective_table.clear();
    for (const auto& individual : population) {
      objective_table.push_back(individual.objectives);
    }
    const std::vector<int> merged_rank = FastNonDominatedSort(objective_table);

    std::vector<int> order(population.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    // Sort by (rank, crowding); crowding computed per front below. Sort by
    // rank first, then refine ties via per-front crowding.
    std::vector<double> merged_crowding(population.size(), 0.0);
    const int max_rank =
        *std::max_element(merged_rank.begin(), merged_rank.end());
    for (int r = 0; r <= max_rank; ++r) {
      std::vector<int> front;
      for (size_t i = 0; i < merged_rank.size(); ++i) {
        if (merged_rank[i] == r) front.push_back(static_cast<int>(i));
      }
      const std::vector<double> front_distance =
          CrowdingDistance(objective_table, front);
      for (size_t i = 0; i < front.size(); ++i) {
        merged_crowding[front[i]] = front_distance[i];
      }
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (merged_rank[a] != merged_rank[b]) {
        return merged_rank[a] < merged_rank[b];
      }
      return merged_crowding[a] > merged_crowding[b];
    });
    std::vector<Individual> next_population;
    next_population.reserve(options_.population_size);
    for (int i = 0; i < options_.population_size &&
                    i < static_cast<int>(order.size());
         ++i) {
      next_population.push_back(std::move(population[order[i]]));
    }
    population = std::move(next_population);
  }
}

}  // namespace dfs::fs
