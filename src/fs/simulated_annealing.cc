#include "fs/simulated_annealing.h"

#include <algorithm>
#include <cmath>

namespace dfs::fs {
namespace {

// Random mask with expected density bounded by the size constraint.
FeatureMask RandomMask(int n, int max_ones, Rng& rng) {
  const double p = std::min(0.5, static_cast<double>(max_ones) / n);
  FeatureMask mask(n, 0);
  int ones = 0;
  for (int f = 0; f < n; ++f) {
    if (rng.Bernoulli(p) && ones < max_ones) {
      mask[f] = 1;
      ++ones;
    }
  }
  if (ones == 0) mask[rng.UniformInt(0, n - 1)] = 1;
  return mask;
}

}  // namespace

void SimulatedAnnealingStrategy::Run(EvalContext& context) {
  const int n = context.num_features();
  const int max_ones = context.max_feature_count();
  Rng rng(seed_);

  FeatureMask current = RandomMask(n, max_ones, rng);
  EvalOutcome current_outcome = context.Evaluate(current);
  if (!current_outcome.evaluated) return;

  double temperature = options_.initial_temperature;
  int stall = 0;

  while (!context.ShouldStop()) {
    // Neighbor: flip one bit, respecting size and non-emptiness bounds.
    FeatureMask neighbor = current;
    const int ones = CountSelected(neighbor);
    int flip = rng.UniformInt(0, n - 1);
    if (!neighbor[flip] && ones >= max_ones) {
      // Would exceed the bound: flip a selected bit off instead.
      const std::vector<int> selected = MaskToIndices(neighbor);
      flip = selected[rng.UniformInt(0, static_cast<int>(selected.size()) - 1)];
    } else if (neighbor[flip] && ones <= 1) {
      // Would empty the mask: flip an unselected bit on instead.
      int attempt = rng.UniformInt(0, n - 1);
      while (neighbor[attempt]) attempt = rng.UniformInt(0, n - 1);
      flip = attempt;
    }
    neighbor[flip] = neighbor[flip] ? 0 : 1;

    const EvalOutcome outcome = context.Evaluate(neighbor);
    if (!outcome.evaluated) break;
    const double delta = outcome.objective - current_outcome.objective;
    if (delta <= 0.0 ||
        rng.Bernoulli(std::exp(-delta / std::max(temperature, 1e-6)))) {
      current = std::move(neighbor);
      current_outcome = outcome;
      stall = delta < 0.0 ? 0 : stall + 1;
    } else {
      ++stall;
    }
    temperature *= options_.cooling;

    if (stall >= options_.max_stall) {
      current = RandomMask(n, max_ones, rng);
      current_outcome = context.Evaluate(current);
      if (!current_outcome.evaluated) break;
      temperature = options_.initial_temperature;
      stall = 0;
    }
  }
}

}  // namespace dfs::fs
