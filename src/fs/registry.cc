#include "fs/registry.h"

#include "fs/evolutionary.h"
#include "fs/exhaustive.h"
#include "fs/nsga2.h"
#include "fs/rfe.h"
#include "fs/sequential.h"
#include "fs/simulated_annealing.h"
#include "fs/top_k.h"
#include "fs/tpe_mask.h"

namespace dfs::fs {
namespace {

/// Baseline "strategy": evaluate the original (full) feature set once.
class OriginalFeatureSetStrategy : public FeatureSelectionStrategy {
 public:
  std::string name() const override { return "Original Feature Set"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kExhaustive;  // trivially so
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override {
    context.Evaluate(FullMask(context.num_features()));
  }
};

}  // namespace

const std::vector<StrategyId>& AllStrategies() {
  static const auto& ids = *new std::vector<StrategyId>{
      StrategyId::kSbs,       StrategyId::kSbfs,
      StrategyId::kRfe,       StrategyId::kTpeMcfs,
      StrategyId::kTpeReliefF, StrategyId::kTpeVariance,
      StrategyId::kTpeMask,   StrategyId::kNsga2,
      StrategyId::kTpeMim,    StrategyId::kSimulatedAnnealing,
      StrategyId::kExhaustive, StrategyId::kTpeFisher,
      StrategyId::kTpeChi2,   StrategyId::kSfs,
      StrategyId::kSffs,      StrategyId::kTpeFcbf,
  };
  return ids;
}

const std::vector<StrategyId>& AllStrategiesWithBaseline() {
  static const auto& ids = *new std::vector<StrategyId>([] {
    std::vector<StrategyId> all = {StrategyId::kOriginalFeatureSet};
    for (StrategyId id : AllStrategies()) all.push_back(id);
    return all;
  }());
  return ids;
}

const std::vector<StrategyId>& ExtensionStrategies() {
  static const auto& ids = *new std::vector<StrategyId>{
      StrategyId::kBinaryPso,
      StrategyId::kGeneticAlgorithm,
      StrategyId::kTpeMrmr,
  };
  return ids;
}

std::string StrategyIdToString(StrategyId id) {
  switch (id) {
    case StrategyId::kOriginalFeatureSet:
      return "Original Feature Set";
    case StrategyId::kSbs:
      return "SBS(NR)";
    case StrategyId::kSbfs:
      return "SBFS(NR)";
    case StrategyId::kRfe:
      return "RFE(Model)";
    case StrategyId::kTpeMcfs:
      return "TPE(MCFS)";
    case StrategyId::kTpeReliefF:
      return "TPE(ReliefF)";
    case StrategyId::kTpeVariance:
      return "TPE(Variance)";
    case StrategyId::kTpeMask:
      return "TPE(NR)";
    case StrategyId::kNsga2:
      return "NSGA-II(NR)";
    case StrategyId::kTpeMim:
      return "TPE(MIM)";
    case StrategyId::kSimulatedAnnealing:
      return "SA(NR)";
    case StrategyId::kExhaustive:
      return "ES(NR)";
    case StrategyId::kTpeFisher:
      return "TPE(Fisher)";
    case StrategyId::kTpeChi2:
      return "TPE(Chi2)";
    case StrategyId::kSfs:
      return "SFS(NR)";
    case StrategyId::kSffs:
      return "SFFS(NR)";
    case StrategyId::kTpeFcbf:
      return "TPE(FCBF)";
    case StrategyId::kBinaryPso:
      return "BPSO(NR)";
    case StrategyId::kGeneticAlgorithm:
      return "GA(NR)";
    case StrategyId::kTpeMrmr:
      return "TPE(mRMR)";
  }
  return "?";
}

StatusOr<StrategyId> StrategyIdFromString(const std::string& name) {
  for (StrategyId id : AllStrategiesWithBaseline()) {
    if (StrategyIdToString(id) == name) return id;
  }
  for (StrategyId id : ExtensionStrategies()) {
    if (StrategyIdToString(id) == name) return id;
  }
  return NotFoundError("unknown strategy: " + name);
}

std::unique_ptr<FeatureSelectionStrategy> CreateStrategy(StrategyId id,
                                                         uint64_t seed) {
  switch (id) {
    case StrategyId::kOriginalFeatureSet:
      return std::make_unique<OriginalFeatureSetStrategy>();
    case StrategyId::kSbs:
      return std::make_unique<SequentialSelection>(
          SequentialSelection::Direction::kBackward, /*floating=*/false);
    case StrategyId::kSbfs:
      return std::make_unique<SequentialSelection>(
          SequentialSelection::Direction::kBackward, /*floating=*/true);
    case StrategyId::kRfe:
      return std::make_unique<RecursiveFeatureElimination>();
    case StrategyId::kTpeMcfs:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kMcfs, seed);
    case StrategyId::kTpeReliefF:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kReliefF, seed);
    case StrategyId::kTpeVariance:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kVariance,
                                                   seed);
    case StrategyId::kTpeMask:
      return std::make_unique<TpeMaskStrategy>(seed);
    case StrategyId::kNsga2:
      return std::make_unique<Nsga2Strategy>(seed);
    case StrategyId::kTpeMim:
      return std::make_unique<TopKRankingStrategy>(
          RankerKind::kMutualInformation, seed);
    case StrategyId::kSimulatedAnnealing:
      return std::make_unique<SimulatedAnnealingStrategy>(seed);
    case StrategyId::kExhaustive:
      return std::make_unique<ExhaustiveSearch>();
    case StrategyId::kTpeFisher:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kFisher, seed);
    case StrategyId::kTpeChi2:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kChiSquared,
                                                   seed);
    case StrategyId::kSfs:
      return std::make_unique<SequentialSelection>(
          SequentialSelection::Direction::kForward, /*floating=*/false);
    case StrategyId::kSffs:
      return std::make_unique<SequentialSelection>(
          SequentialSelection::Direction::kForward, /*floating=*/true);
    case StrategyId::kTpeFcbf:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kFcbf, seed);
    case StrategyId::kBinaryPso:
      return std::make_unique<BinaryPsoStrategy>(seed);
    case StrategyId::kGeneticAlgorithm:
      return std::make_unique<GeneticAlgorithmStrategy>(seed);
    case StrategyId::kTpeMrmr:
      return std::make_unique<TopKRankingStrategy>(RankerKind::kMrmr, seed);
  }
  return nullptr;
}

}  // namespace dfs::fs
