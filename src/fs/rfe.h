#ifndef DFS_FS_RFE_H_
#define DFS_FS_RFE_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// RFE(Model): recursive feature elimination (Guyon et al. 2002). Backward
/// selection, but instead of wrapper-evaluating every removal candidate, it
/// drops the feature the fitted model deems least important (|w| for linear
/// models, impurity decrease for trees, permutation importance when the
/// model exposes nothing — the NB case the paper calls out as expensive).
///
/// Drop-candidate scoring: each step wrapper-evaluates dropping any of the
/// `drop_candidates` least-important features in one EvaluateBatch and
/// keeps the best objective (ties go to the least important, matching the
/// classic drop). With drop_candidates = 1 this is exactly Guyon-style RFE;
/// the default of 4 spends the cores a parallel engine frees up on a
/// slightly wider, importance-guided backward search. Candidate count is a
/// constant, never the thread count, so results are independent of
/// parallelism.
class RecursiveFeatureElimination : public FeatureSelectionStrategy {
 public:
  explicit RecursiveFeatureElimination(int drop_candidates = 4)
      : drop_candidates_(drop_candidates < 1 ? 1 : drop_candidates) {}

  std::string name() const override { return "RFE(Model)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kSequential;
    info.uses_ranking = true;
    info.ranking = "model importance";
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  int drop_candidates_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RFE_H_
