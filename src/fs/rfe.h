#ifndef DFS_FS_RFE_H_
#define DFS_FS_RFE_H_

#include <string>

#include "fs/strategy.h"

namespace dfs::fs {

/// RFE(Model): recursive feature elimination (Guyon et al. 2002). Backward
/// selection, but instead of wrapper-evaluating every removal candidate, it
/// drops the feature the fitted model deems least important (|w| for linear
/// models, impurity decrease for trees, permutation importance when the
/// model exposes nothing — the NB case the paper calls out as expensive).
class RecursiveFeatureElimination : public FeatureSelectionStrategy {
 public:
  std::string name() const override { return "RFE(Model)"; }

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kSequential;
    info.uses_ranking = true;
    info.ranking = "model importance";
    return info;
  }

  void Run(EvalContext& context) override;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RFE_H_
