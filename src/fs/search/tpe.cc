#include "fs/search/tpe.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dfs::fs {
namespace {

// Splits history (value, loss) into good/bad observation values at the
// gamma quantile of losses; at least one observation lands in "good".
template <typename T>
void SplitGoodBad(std::vector<std::pair<T, double>> history, double gamma,
                  std::vector<T>* good, std::vector<T>* bad) {
  std::stable_sort(history.begin(), history.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });
  const int num_good = std::max(
      1, static_cast<int>(std::ceil(gamma * history.size())));
  for (size_t i = 0; i < history.size(); ++i) {
    (static_cast<int>(i) < num_good ? good : bad)->push_back(history[i].first);
  }
}

}  // namespace

TpeIntegerOptimizer::TpeIntegerOptimizer(int lo, int hi,
                                         const TpeOptions& options,
                                         uint64_t seed)
    : lo_(lo), hi_(hi), options_(options), rng_(seed) {
  DFS_CHECK_LE(lo_, hi_);
}

double TpeIntegerOptimizer::Density(
    int value, const std::vector<int>& observations) const {
  // Triangular Parzen kernel with bandwidth scaled to the domain, plus a
  // uniform prior mass so unseen values stay reachable.
  const double bandwidth = std::max(1.0, (hi_ - lo_ + 1) / 8.0);
  const double prior = 1.0 / (hi_ - lo_ + 1);
  double density = prior;
  for (int observation : observations) {
    const double distance = std::fabs(value - observation) / bandwidth;
    if (distance < 1.0) density += (1.0 - distance) / bandwidth;
  }
  return density / (observations.size() + 1.0);
}

int TpeIntegerOptimizer::Propose() {
  const int domain = hi_ - lo_ + 1;
  // Startup: uniform exploration, preferring unseen values.
  if (num_observations() < options_.num_startup_trials ||
      num_observations() < 2) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int value = rng_.UniformInt(lo_, hi_);
      if (!seen_.count(value)) return value;
    }
    return rng_.UniformInt(lo_, hi_);
  }

  std::vector<int> good, bad;
  SplitGoodBad(history_, options_.gamma, &good, &bad);

  // Sample candidates from the good density (rejection-free: categorical
  // over the domain when small, kernel-centered jitter otherwise).
  int best_value = lo_;
  double best_score = -1.0;
  for (int c = 0; c < options_.num_candidates; ++c) {
    int candidate;
    if (domain <= 256) {
      std::vector<double> weights(domain);
      for (int v = 0; v < domain; ++v) {
        weights[v] = Density(lo_ + v, good);
      }
      candidate = lo_ + rng_.Categorical(weights);
    } else {
      const int center = good[rng_.UniformInt(0, static_cast<int>(good.size()) - 1)];
      const int jitter = static_cast<int>(rng_.Normal(0.0, domain / 8.0));
      candidate = std::clamp(center + jitter, lo_, hi_);
    }
    const double score = Density(candidate, good) / Density(candidate, bad);
    const bool unseen = !seen_.count(candidate);
    // Prefer unseen candidates: an already-evaluated k re-evaluates to the
    // same cached result and wastes the step.
    const double adjusted = unseen ? score : score * 1e-6;
    if (adjusted > best_score) {
      best_score = adjusted;
      best_value = candidate;
    }
  }
  return best_value;
}

void TpeIntegerOptimizer::Record(int value, double loss) {
  history_.emplace_back(value, loss);
  seen_.insert(value);
}

TpeBinaryOptimizer::TpeBinaryOptimizer(int dims, int max_ones,
                                       const TpeOptions& options,
                                       uint64_t seed)
    : dims_(dims), max_ones_(std::max(1, max_ones)), options_(options),
      rng_(seed) {}

std::vector<char> TpeBinaryOptimizer::RandomMask() {
  // Expected density capped by the size bound.
  const double p = std::min(0.5, static_cast<double>(max_ones_) / dims_);
  std::vector<char> mask(dims_, 0);
  for (int f = 0; f < dims_; ++f) mask[f] = rng_.Bernoulli(p) ? 1 : 0;
  Repair(mask);
  return mask;
}

void TpeBinaryOptimizer::Repair(std::vector<char>& mask) {
  int ones = 0;
  for (char bit : mask) ones += bit ? 1 : 0;
  // Deselect random features while above the bound.
  while (ones > max_ones_) {
    const int f = rng_.UniformInt(0, dims_ - 1);
    if (mask[f]) {
      mask[f] = 0;
      --ones;
    }
  }
  // Guarantee at least one selected feature.
  if (ones == 0) mask[rng_.UniformInt(0, dims_ - 1)] = 1;
}

std::vector<char> TpeBinaryOptimizer::Propose() {
  if (num_observations() < options_.num_startup_trials ||
      num_observations() < 2) {
    return RandomMask();
  }

  std::vector<std::vector<char>> good, bad;
  SplitGoodBad(history_, options_.gamma, &good, &bad);

  // Per-dimension Bernoulli densities with a symmetric 0.5 pseudo-count.
  auto bit_probability = [this](const std::vector<std::vector<char>>& masks,
                                int dim) {
    double ones = 0.5;
    for (const auto& mask : masks) ones += mask[dim] ? 1.0 : 0.0;
    return ones / (masks.size() + 1.0);
  };
  std::vector<double> p_good(dims_), p_bad(dims_);
  for (int f = 0; f < dims_; ++f) {
    p_good[f] = bit_probability(good, f);
    p_bad[f] = bit_probability(bad, f);
  }

  std::vector<char> best_mask;
  double best_score = -1e300;
  for (int c = 0; c < options_.num_candidates; ++c) {
    std::vector<char> candidate(dims_);
    for (int f = 0; f < dims_; ++f) {
      candidate[f] = rng_.Bernoulli(p_good[f]) ? 1 : 0;
    }
    Repair(candidate);
    double score = 0.0;  // log l(x)/g(x)
    for (int f = 0; f < dims_; ++f) {
      const double lg = candidate[f] ? p_good[f] : 1.0 - p_good[f];
      const double lb = candidate[f] ? p_bad[f] : 1.0 - p_bad[f];
      score += std::log(std::max(lg, 1e-12)) - std::log(std::max(lb, 1e-12));
    }
    // Re-proposing an evaluated mask only replays a cached evaluation, so
    // already-seen candidates are heavily demoted.
    if (seen_.count(HashMask(candidate))) score -= 1e6;
    if (score > best_score) {
      best_score = score;
      best_mask = std::move(candidate);
    }
  }
  // Every candidate was already evaluated: fall back to exploration.
  if (best_mask.empty() || seen_.count(HashMask(best_mask))) {
    return RandomMask();
  }
  return best_mask;
}

uint64_t TpeBinaryOptimizer::HashMask(const std::vector<char>& mask) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char bit : mask) {
    hash ^= static_cast<uint64_t>(bit ? 1 : 0) + 0x9E3779B9ULL;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void TpeBinaryOptimizer::Record(const std::vector<char>& mask, double loss) {
  history_.emplace_back(mask, loss);
  seen_.insert(HashMask(mask));
}

}  // namespace dfs::fs
