#ifndef DFS_FS_SEARCH_TPE_H_
#define DFS_FS_SEARCH_TPE_H_

#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace dfs::fs {

/// Shared configuration of the tree-structured Parzen estimator
/// (Bergstra et al. 2011) reimplementation.
struct TpeOptions {
  /// Trials drawn uniformly at random before density modeling kicks in.
  int num_startup_trials = 8;
  /// Quantile that splits observations into "good" and "bad".
  double gamma = 0.25;
  /// Candidates sampled from the good density per proposal; the one with
  /// the best l(x)/g(x) expected-improvement proxy wins.
  int num_candidates = 24;
};

/// TPE over a bounded integer domain [lo, hi] — the optimizer behind all
/// Top-k ranking strategies (it searches the cut-off k). Densities are
/// discrete Parzen windows with triangular kernels and a uniform prior.
class TpeIntegerOptimizer {
 public:
  TpeIntegerOptimizer(int lo, int hi, const TpeOptions& options,
                      uint64_t seed);

  /// Next value to evaluate. Prefers unseen values; falls back to the best
  /// candidate if everything in range was already tried.
  int Propose();

  /// Feeds back the loss of an evaluated value (lower is better).
  void Record(int value, double loss);

  int num_observations() const { return static_cast<int>(history_.size()); }

 private:
  double Density(int value, const std::vector<int>& observations) const;

  int lo_;
  int hi_;
  TpeOptions options_;
  Rng rng_;
  std::vector<std::pair<int, double>> history_;  // (value, loss)
  std::unordered_set<int> seen_;
};

/// TPE over binary masks (TPE(NR), Section 4.2): each feature's inclusion
/// is a Bernoulli variable; good/bad densities are per-dimension Bernoulli
/// models with a Beta(0.5, 0.5)-style prior. Masks are repaired to select
/// between 1 and `max_ones` features.
class TpeBinaryOptimizer {
 public:
  TpeBinaryOptimizer(int dims, int max_ones, const TpeOptions& options,
                     uint64_t seed);

  std::vector<char> Propose();
  void Record(const std::vector<char>& mask, double loss);

  int num_observations() const { return static_cast<int>(history_.size()); }

 private:
  std::vector<char> RandomMask();
  void Repair(std::vector<char>& mask);
  static uint64_t HashMask(const std::vector<char>& mask);

  int dims_;
  int max_ones_;
  TpeOptions options_;
  Rng rng_;
  std::vector<std::pair<std::vector<char>, double>> history_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_SEARCH_TPE_H_
