#include "fs/sequential.h"

#include <algorithm>
#include <limits>

namespace dfs::fs {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One candidate sweep: all masks that flip a single feature of `current`.
/// `want_selected` picks which features are flip candidates (unselected
/// ones for a forward/add sweep, selected ones for a backward/remove
/// sweep); `skip` excludes one feature (the floating steps never undo the
/// move that was just made). Candidates are built in ascending feature
/// order — with the engine's in-order batch reduction that preserves the
/// serial sweeps' first-wins tie-break.
struct Sweep {
  std::vector<FeatureMask> masks;
  std::vector<int> features;

  Sweep(const FeatureMask& current, bool want_selected, int skip) {
    const int n = static_cast<int>(current.size());
    FeatureMask candidate = current;
    for (int f = 0; f < n; ++f) {
      if (static_cast<bool>(current[f]) != want_selected || f == skip) {
        continue;
      }
      candidate[f] = current[f] ? 0 : 1;
      masks.push_back(candidate);
      features.push_back(f);
      candidate[f] = current[f];
    }
  }

  /// Evaluates the sweep and returns (feature, objective) of the best
  /// evaluated candidate, or (-1, inf) when nothing evaluated.
  std::pair<int, double> Best(EvalContext& context) const {
    const std::vector<EvalOutcome> outcomes = context.EvaluateBatch(masks);
    int best_feature = -1;
    double best_objective = kInfinity;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].evaluated && outcomes[i].objective < best_objective) {
        best_objective = outcomes[i].objective;
        best_feature = features[i];
      }
    }
    return {best_feature, best_objective};
  }
};

}  // namespace

std::string SequentialSelection::name() const {
  if (direction_ == Direction::kForward) {
    return floating_ ? "SFFS(NR)" : "SFS(NR)";
  }
  return floating_ ? "SBFS(NR)" : "SBS(NR)";
}

StrategyInfo SequentialSelection::info() const {
  StrategyInfo info;
  info.objectives = StrategyInfo::Objectives::kSingle;
  info.search = StrategyInfo::Search::kSequential;
  info.uses_ranking = false;
  return info;
}

void SequentialSelection::Run(EvalContext& context) {
  if (direction_ == Direction::kForward) {
    RunForward(context);
  } else {
    RunBackward(context);
  }
}

void SequentialSelection::RunForward(EvalContext& context) {
  const int n = context.num_features();
  const int max_count = context.max_feature_count();
  FeatureMask current(n, 0);
  double current_objective = kInfinity;
  // best_at_size[k]: best objective seen for a subset of size k (floating
  // uses it to decide whether a removal "improves"; Pudil et al. 1994).
  std::vector<double> best_at_size(n + 1, kInfinity);

  while (!context.ShouldStop() && CountSelected(current) < max_count) {
    // Forward step: try adding each unselected feature (one batch).
    const Sweep additions(current, /*want_selected=*/false, /*skip=*/-1);
    if (additions.masks.empty()) break;
    const auto [best_feature, best_objective] = additions.Best(context);
    if (best_feature < 0) break;  // nothing evaluable (deadline mid-sweep)
    current[best_feature] = 1;
    current_objective = best_objective;
    int size = CountSelected(current);
    best_at_size[size] = std::min(best_at_size[size], current_objective);

    // Floating step: remove features while that beats the best subset of
    // the smaller size.
    while (floating_ && size > 2 && !context.ShouldStop()) {
      const Sweep removals(current, /*want_selected=*/true, best_feature);
      const auto [removal, removal_objective] = removals.Best(context);
      if (removal < 0 || removal_objective >= best_at_size[size - 1]) break;
      current[removal] = 0;
      current_objective = removal_objective;
      --size;
      best_at_size[size] = std::min(best_at_size[size], current_objective);
    }
  }
}

void SequentialSelection::RunBackward(EvalContext& context) {
  const int n = context.num_features();
  FeatureMask current = FullMask(n);
  EvalOutcome full = context.Evaluate(current);
  double current_objective = full.evaluated ? full.objective : kInfinity;
  std::vector<double> best_at_size(n + 1, kInfinity);
  if (full.evaluated) best_at_size[n] = full.objective;

  while (!context.ShouldStop() && CountSelected(current) > 1) {
    // Backward step: try removing each selected feature (one batch).
    const Sweep removals(current, /*want_selected=*/true, /*skip=*/-1);
    if (removals.masks.empty()) break;
    const auto [best_feature, best_objective] = removals.Best(context);
    if (best_feature < 0) break;
    current[best_feature] = 0;
    current_objective = best_objective;
    int size = CountSelected(current);
    best_at_size[size] = std::min(best_at_size[size], current_objective);

    // Floating step: re-add previously removed features while that beats
    // the best subset of the larger size.
    while (floating_ && size < n - 1 && !context.ShouldStop()) {
      const Sweep additions(current, /*want_selected=*/false, best_feature);
      const auto [addition, addition_objective] = additions.Best(context);
      if (addition < 0 || addition_objective >= best_at_size[size + 1]) break;
      current[addition] = 1;
      current_objective = addition_objective;
      ++size;
      best_at_size[size] = std::min(best_at_size[size], current_objective);
    }
  }
  (void)current_objective;
}

}  // namespace dfs::fs
