#include "fs/sequential.h"

#include <algorithm>
#include <limits>

namespace dfs::fs {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

std::string SequentialSelection::name() const {
  if (direction_ == Direction::kForward) {
    return floating_ ? "SFFS(NR)" : "SFS(NR)";
  }
  return floating_ ? "SBFS(NR)" : "SBS(NR)";
}

StrategyInfo SequentialSelection::info() const {
  StrategyInfo info;
  info.objectives = StrategyInfo::Objectives::kSingle;
  info.search = StrategyInfo::Search::kSequential;
  info.uses_ranking = false;
  return info;
}

void SequentialSelection::Run(EvalContext& context) {
  if (direction_ == Direction::kForward) {
    RunForward(context);
  } else {
    RunBackward(context);
  }
}

void SequentialSelection::RunForward(EvalContext& context) {
  const int n = context.num_features();
  const int max_count = context.max_feature_count();
  FeatureMask current(n, 0);
  double current_objective = kInfinity;
  // best_at_size[k]: best objective seen for a subset of size k (floating
  // uses it to decide whether a removal "improves"; Pudil et al. 1994).
  std::vector<double> best_at_size(n + 1, kInfinity);

  while (!context.ShouldStop() && CountSelected(current) < max_count) {
    // Forward step: try adding each unselected feature.
    int best_feature = -1;
    double best_objective = kInfinity;
    for (int f = 0; f < n && !context.ShouldStop(); ++f) {
      if (current[f]) continue;
      current[f] = 1;
      const EvalOutcome outcome = context.Evaluate(current);
      current[f] = 0;
      if (outcome.evaluated && outcome.objective < best_objective) {
        best_objective = outcome.objective;
        best_feature = f;
      }
    }
    if (best_feature < 0) break;  // nothing evaluable (deadline mid-sweep)
    current[best_feature] = 1;
    current_objective = best_objective;
    int size = CountSelected(current);
    best_at_size[size] = std::min(best_at_size[size], current_objective);

    // Floating step: remove features while that beats the best subset of
    // the smaller size.
    while (floating_ && size > 2 && !context.ShouldStop()) {
      int removal = -1;
      double removal_objective = kInfinity;
      for (int f = 0; f < n && !context.ShouldStop(); ++f) {
        if (!current[f] || f == best_feature) continue;
        current[f] = 0;
        const EvalOutcome outcome = context.Evaluate(current);
        current[f] = 1;
        if (outcome.evaluated && outcome.objective < removal_objective) {
          removal_objective = outcome.objective;
          removal = f;
        }
      }
      if (removal < 0 || removal_objective >= best_at_size[size - 1]) break;
      current[removal] = 0;
      current_objective = removal_objective;
      --size;
      best_at_size[size] = std::min(best_at_size[size], current_objective);
    }
  }
}

void SequentialSelection::RunBackward(EvalContext& context) {
  const int n = context.num_features();
  FeatureMask current = FullMask(n);
  EvalOutcome full = context.Evaluate(current);
  double current_objective = full.evaluated ? full.objective : kInfinity;
  std::vector<double> best_at_size(n + 1, kInfinity);
  if (full.evaluated) best_at_size[n] = full.objective;

  while (!context.ShouldStop() && CountSelected(current) > 1) {
    // Backward step: try removing each selected feature.
    int best_feature = -1;
    double best_objective = kInfinity;
    for (int f = 0; f < n && !context.ShouldStop(); ++f) {
      if (!current[f]) continue;
      current[f] = 0;
      const EvalOutcome outcome = context.Evaluate(current);
      current[f] = 1;
      if (outcome.evaluated && outcome.objective < best_objective) {
        best_objective = outcome.objective;
        best_feature = f;
      }
    }
    if (best_feature < 0) break;
    current[best_feature] = 0;
    current_objective = best_objective;
    int size = CountSelected(current);
    best_at_size[size] = std::min(best_at_size[size], current_objective);

    // Floating step: re-add previously removed features while that beats
    // the best subset of the larger size.
    while (floating_ && size < n - 1 && !context.ShouldStop()) {
      int addition = -1;
      double addition_objective = kInfinity;
      for (int f = 0; f < n && !context.ShouldStop(); ++f) {
        if (current[f] || f == best_feature) continue;
        current[f] = 1;
        const EvalOutcome outcome = context.Evaluate(current);
        current[f] = 0;
        if (outcome.evaluated && outcome.objective < addition_objective) {
          addition_objective = outcome.objective;
          addition = f;
        }
      }
      if (addition < 0 || addition_objective >= best_at_size[size + 1]) break;
      current[addition] = 1;
      current_objective = addition_objective;
      ++size;
      best_at_size[size] = std::min(best_at_size[size], current_objective);
    }
  }
  (void)current_objective;
}

}  // namespace dfs::fs
