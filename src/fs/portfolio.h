#ifndef DFS_FS_PORTFOLIO_H_
#define DFS_FS_PORTFOLIO_H_

#include <memory>
#include <string>
#include <vector>

#include "fs/registry.h"
#include "fs/strategy.h"

namespace dfs::fs {

/// Options for the time-sliced portfolio.
struct PortfolioOptions {
  /// Wall-clock slice per member per round; grows geometrically so later
  /// rounds favor whichever members are still making progress.
  double initial_slice_seconds = 0.05;
  double slice_growth = 1.6;
};

/// Dynamic strategy switching (the paper's "Meta learning" future-work
/// direction, Section 7): interleave several FS strategies on ONE shared
/// evaluation budget instead of running them on separate machines
/// (Section 6.5). Each member runs for a time slice; when the slice
/// expires the next member takes over. Members restart their search each
/// round, but the engine's evaluation cache makes replaying an earlier
/// search path nearly free, so progress effectively persists — a simple
/// warm-start, as the paper suggests.
class TimeSlicedPortfolio : public FeatureSelectionStrategy {
 public:
  TimeSlicedPortfolio(std::vector<StrategyId> members, uint64_t seed,
                      const PortfolioOptions& options = {});

  std::string name() const override;

  StrategyInfo info() const override {
    StrategyInfo info;
    info.objectives = StrategyInfo::Objectives::kSingle;
    info.search = StrategyInfo::Search::kRandomized;
    info.uses_ranking = false;
    return info;
  }

  void Run(EvalContext& context) override;

 private:
  std::vector<StrategyId> member_ids_;
  std::vector<std::unique_ptr<FeatureSelectionStrategy>> members_;
  PortfolioOptions options_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_PORTFOLIO_H_
