#ifndef DFS_FS_RANKINGS_RANKING_H_
#define DFS_FS_RANKINGS_RANKING_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::fs {

/// A feature-ranking function: scores every feature on the training split
/// (higher = more valuable). Top-k strategies compute the ranking once and
/// search only over k (Section 4.2).
class FeatureRanker {
 public:
  virtual ~FeatureRanker() = default;

  /// Short family name as used in strategy names, e.g. "FCBF".
  virtual std::string name() const = 0;

  /// One score per feature column of `train`.
  virtual StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                             Rng& rng) const = 0;
};

/// Ranker families from Figure 3's ranking taxonomy: similarity-based
/// (ReliefF, Fisher), information-theoretical (MIM, FCBF, and the mRMR
/// extension), sparse-learning (MCFS), statistical (Variance, Chi2).
enum class RankerKind {
  kReliefF,
  kFisher,
  kMutualInformation,
  kFcbf,
  kMcfs,
  kVariance,
  kChiSquared,
  kMrmr,  // extension beyond the paper's seven benchmarked rankings
};

std::unique_ptr<FeatureRanker> CreateRanker(RankerKind kind);

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_RANKING_H_
