#ifndef DFS_FS_RANKINGS_STATISTICAL_H_
#define DFS_FS_RANKINGS_STATISTICAL_H_

#include <string>
#include <vector>

#include "fs/rankings/ranking.h"

namespace dfs::fs {

/// Variance ranking (Li et al. 2017): low-variance features carry little
/// information to separate the classes.
class VarianceRanker : public FeatureRanker {
 public:
  std::string name() const override { return "Variance"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;
};

/// χ² ranking (Liu & Setiono 1995), scikit-learn style on non-negative
/// features: tests each feature's independence from the class label via
/// observed-vs-expected per-class feature mass.
class ChiSquaredRanker : public FeatureRanker {
 public:
  std::string name() const override { return "Chi2"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;
};

/// Fisher score (Duda, Hart & Stork): between-class separation over
/// within-class spread, per feature.
class FisherRanker : public FeatureRanker {
 public:
  std::string name() const override { return "Fisher"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_STATISTICAL_H_
