#ifndef DFS_FS_RANKINGS_INFORMATION_H_
#define DFS_FS_RANKINGS_INFORMATION_H_

#include <string>
#include <vector>

#include "fs/rankings/ranking.h"

namespace dfs::fs {

/// MIM (Lewis 1992): mutual information between each (discretized) feature
/// and the label; no redundancy handling — features are ranked as if
/// independent.
class MutualInformationRanker : public FeatureRanker {
 public:
  explicit MutualInformationRanker(int num_bins = 10) : num_bins_(num_bins) {}

  std::string name() const override { return "MIM"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;

 private:
  int num_bins_;
};

/// FCBF (Yu & Liu 2003): symmetrical uncertainty to the label, followed by
/// the fast redundancy elimination pass — a feature is redundant if some
/// stronger already-kept feature predicts it better than the label does.
/// Scores encode the result so that top-k ordering first walks the kept
/// (predominant) features in SU order, then the redundant ones.
class FcbfRanker : public FeatureRanker {
 public:
  explicit FcbfRanker(int num_bins = 10) : num_bins_(num_bins) {}

  std::string name() const override { return "FCBF"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;

 private:
  int num_bins_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_INFORMATION_H_
