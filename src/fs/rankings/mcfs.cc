#include "fs/rankings/mcfs.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/knn.h"
#include "linalg/lasso.h"

namespace dfs::fs {

StatusOr<std::vector<double>> McfsRanker::Rank(const data::Dataset& train,
                                               Rng& rng) const {
  const int d = train.num_features();
  const int n = train.num_rows();
  if (n < 4) return InvalidArgumentError("need at least 4 rows");

  // Row subsample (dense eigendecomposition is O(m^3)).
  const int m = std::min(max_rows_, n);
  std::vector<int> rows = rng.SampleWithoutReplacement(n, m);
  std::sort(rows.begin(), rows.end());
  linalg::Matrix points(m, d);
  for (int i = 0; i < m; ++i) {
    for (int f = 0; f < d; ++f) points(i, f) = train.Value(rows[i], f);
  }

  // Normalized Laplacian L = I - D^{-1/2} W D^{-1/2}.
  const linalg::Matrix adjacency =
      linalg::HeatKernelKnnGraph(points, num_neighbors_);
  std::vector<double> inv_sqrt_degree(m, 0.0);
  for (int i = 0; i < m; ++i) {
    double degree = 0.0;
    for (int j = 0; j < m; ++j) degree += adjacency(i, j);
    inv_sqrt_degree[i] = degree > 1e-12 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  linalg::Matrix laplacian(m, m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const double normalized =
          adjacency(i, j) * inv_sqrt_degree[i] * inv_sqrt_degree[j];
      laplacian(i, j) = (i == j ? 1.0 : 0.0) - normalized;
    }
  }

  DFS_ASSIGN_OR_RETURN(auto eigen, linalg::JacobiEigenSymmetric(laplacian));

  // Bottom non-trivial eigenvectors form the spectral embedding; skip the
  // first (near-zero eigenvalue, constant on connected components).
  const int num_embeddings =
      std::min(num_clusters_, std::max(1, m - 1));
  std::vector<double> scores(d, 0.0);
  for (int k = 0; k < num_embeddings; ++k) {
    std::vector<double> embedding = eigen.vectors.Column(k + 1);
    // Lasso: which features reconstruct this manifold coordinate?
    linalg::LassoOptions options;
    options.l1_penalty = l1_penalty_;
    const std::vector<double> coefficients =
        linalg::LassoCoordinateDescent(points, embedding, options);
    for (int f = 0; f < d; ++f) {
      scores[f] = std::max(scores[f], std::fabs(coefficients[f]));
    }
  }
  return scores;
}

}  // namespace dfs::fs
