#include "fs/rankings/mrmr.h"

#include <algorithm>

#include "util/math_util.h"

namespace dfs::fs {

StatusOr<std::vector<double>> MrmrRanker::Rank(const data::Dataset& train,
                                               Rng& rng) const {
  (void)rng;
  const int d = train.num_features();
  if (train.num_rows() == 0) return InvalidArgumentError("empty dataset");

  std::vector<std::vector<int>> binned(d);
  std::vector<double> relevance(d);
  for (int f = 0; f < d; ++f) {
    binned[f] = EqualWidthBins(train.Column(f), num_bins_);
    relevance[f] = DiscreteMutualInformation(binned[f], train.labels());
  }

  // Greedy mRMR over the most relevant `max_evaluated_` features; the tail
  // is ordered by plain relevance (it would rank last anyway).
  const std::vector<int> by_relevance = ArgsortDescending(relevance);
  const int evaluated = std::min(d, max_evaluated_);

  std::vector<int> order;
  std::vector<char> selected(d, 0);
  std::vector<double> redundancy_sum(d, 0.0);
  for (int step = 0; step < evaluated; ++step) {
    int best = -1;
    double best_score = -1e300;
    for (int i = 0; i < evaluated; ++i) {
      const int f = by_relevance[i];
      if (selected[f]) continue;
      const double redundancy =
          order.empty() ? 0.0 : redundancy_sum[f] / order.size();
      const double score = relevance[f] - redundancy;
      if (score > best_score) {
        best_score = score;
        best = f;
      }
    }
    if (best < 0) break;
    selected[best] = 1;
    order.push_back(best);
    // Incremental redundancy update against the newly selected feature.
    for (int i = 0; i < evaluated; ++i) {
      const int f = by_relevance[i];
      if (!selected[f]) {
        redundancy_sum[f] += DiscreteMutualInformation(binned[f],
                                                       binned[best]);
      }
    }
  }
  for (int i = evaluated; i < d; ++i) order.push_back(by_relevance[i]);

  // Encode the ordering as descending scores; break remaining ties by
  // relevance so the encoding is a total order.
  std::vector<double> scores(d, 0.0);
  for (size_t position = 0; position < order.size(); ++position) {
    scores[order[position]] =
        static_cast<double>(d - position) + relevance[order[position]] * 1e-6;
  }
  return scores;
}

}  // namespace dfs::fs
