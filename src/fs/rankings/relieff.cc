#include "fs/rankings/relieff.h"

#include <algorithm>
#include <cmath>

#include "linalg/knn.h"

namespace dfs::fs {

StatusOr<std::vector<double>> ReliefFRanker::Rank(const data::Dataset& train,
                                                  Rng& rng) const {
  const int n = train.num_rows();
  const int d = train.num_features();
  if (n < 2) return InvalidArgumentError("need at least 2 rows");

  // Row-major copies per class for neighbor search.
  std::vector<int> class_rows[2];
  for (int r = 0; r < n; ++r) class_rows[train.labels()[r]].push_back(r);
  if (class_rows[0].empty() || class_rows[1].empty()) {
    return FailedPreconditionError("ReliefF needs both classes present");
  }
  linalg::Matrix by_class[2];
  for (int k = 0; k < 2; ++k) {
    by_class[k] = linalg::Matrix(static_cast<int>(class_rows[k].size()), d);
    for (size_t i = 0; i < class_rows[k].size(); ++i) {
      for (int f = 0; f < d; ++f) {
        by_class[k](static_cast<int>(i), f) =
            train.Value(class_rows[k][i], f);
      }
    }
  }

  const int num_samples = std::min(max_samples_, n);
  const std::vector<int> sampled = rng.SampleWithoutReplacement(n, num_samples);

  std::vector<double> weights(d, 0.0);
  std::vector<double> row(d);
  for (int r : sampled) {
    const int label = train.labels()[r];
    for (int f = 0; f < d; ++f) row[f] = train.Value(r, f);

    for (int cls = 0; cls < 2; ++cls) {
      // Exclude the instance itself from its own class's neighbor list.
      int exclude = -1;
      if (cls == label) {
        for (size_t i = 0; i < class_rows[cls].size(); ++i) {
          if (class_rows[cls][i] == r) {
            exclude = static_cast<int>(i);
            break;
          }
        }
      }
      const std::vector<int> neighbors = linalg::KNearestRows(
          by_class[cls], row, num_neighbors_, exclude);
      if (neighbors.empty()) continue;
      const double sign = cls == label ? -1.0 : 1.0;  // hits lower, misses raise
      const double scale =
          sign / (static_cast<double>(neighbors.size()) * num_samples);
      for (int neighbor : neighbors) {
        for (int f = 0; f < d; ++f) {
          // Features are min-max scaled, so |difference| is already in [0,1].
          weights[f] += scale * std::fabs(row[f] - by_class[cls](neighbor, f));
        }
      }
    }
  }
  return weights;
}

}  // namespace dfs::fs
