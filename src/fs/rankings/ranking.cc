#include "fs/rankings/ranking.h"

#include "fs/rankings/information.h"
#include "fs/rankings/mcfs.h"
#include "fs/rankings/mrmr.h"
#include "fs/rankings/relieff.h"
#include "fs/rankings/statistical.h"

namespace dfs::fs {

std::unique_ptr<FeatureRanker> CreateRanker(RankerKind kind) {
  switch (kind) {
    case RankerKind::kReliefF:
      return std::make_unique<ReliefFRanker>();
    case RankerKind::kFisher:
      return std::make_unique<FisherRanker>();
    case RankerKind::kMutualInformation:
      return std::make_unique<MutualInformationRanker>();
    case RankerKind::kFcbf:
      return std::make_unique<FcbfRanker>();
    case RankerKind::kMcfs:
      return std::make_unique<McfsRanker>();
    case RankerKind::kVariance:
      return std::make_unique<VarianceRanker>();
    case RankerKind::kChiSquared:
      return std::make_unique<ChiSquaredRanker>();
    case RankerKind::kMrmr:
      return std::make_unique<MrmrRanker>();
  }
  return nullptr;
}

}  // namespace dfs::fs
