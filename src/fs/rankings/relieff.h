#ifndef DFS_FS_RANKINGS_RELIEFF_H_
#define DFS_FS_RANKINGS_RELIEFF_H_

#include <string>
#include <vector>

#include "fs/rankings/ranking.h"

namespace dfs::fs {

/// ReliefF (Robnik-Šikonja & Kononenko 2003): for sampled instances, find
/// the k nearest hits (same class) and misses (other class); features whose
/// values differ more on misses than on hits get higher weight. k defaults
/// to 10 per the benchmark configuration (Section 6.2, Urbanowicz et al.).
class ReliefFRanker : public FeatureRanker {
 public:
  explicit ReliefFRanker(int num_neighbors = 10, int max_samples = 100)
      : num_neighbors_(num_neighbors), max_samples_(max_samples) {}

  std::string name() const override { return "ReliefF"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;

 private:
  int num_neighbors_;
  int max_samples_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_RELIEFF_H_
