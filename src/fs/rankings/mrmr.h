#ifndef DFS_FS_RANKINGS_MRMR_H_
#define DFS_FS_RANKINGS_MRMR_H_

#include <string>
#include <vector>

#include "fs/rankings/ranking.h"

namespace dfs::fs {

/// mRMR — minimum-redundancy maximum-relevance (Peng et al.), an extension
/// beyond the paper's 16 strategies from the same information-theoretical
/// family as MIM/FCBF (Figure 3). Greedy ordering: each step adds the
/// feature maximizing MI(f; y) - mean_{s in selected} MI(f; s). Scores
/// encode the selection order (earlier = higher), so top-k prefixes follow
/// the mRMR order exactly.
class MrmrRanker : public FeatureRanker {
 public:
  explicit MrmrRanker(int num_bins = 10, int max_evaluated = 64)
      : num_bins_(num_bins), max_evaluated_(max_evaluated) {}

  std::string name() const override { return "mRMR"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;

 private:
  int num_bins_;
  /// Features ranked greedily (quadratic in this count); the remainder is
  /// appended by relevance only.
  int max_evaluated_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_MRMR_H_
