#include "fs/rankings/statistical.h"

#include <cmath>

#include "util/math_util.h"

namespace dfs::fs {

StatusOr<std::vector<double>> VarianceRanker::Rank(const data::Dataset& train,
                                                   Rng& rng) const {
  (void)rng;
  std::vector<double> scores(train.num_features());
  for (int f = 0; f < train.num_features(); ++f) {
    scores[f] = Variance(train.Column(f));
  }
  return scores;
}

StatusOr<std::vector<double>> ChiSquaredRanker::Rank(
    const data::Dataset& train, Rng& rng) const {
  (void)rng;
  const int n = train.num_rows();
  if (n == 0) return InvalidArgumentError("empty dataset");
  const auto& labels = train.labels();
  double class_count[2] = {0.0, 0.0};
  for (int y : labels) class_count[y] += 1.0;

  std::vector<double> scores(train.num_features(), 0.0);
  for (int f = 0; f < train.num_features(); ++f) {
    const auto& column = train.Column(f);
    double observed[2] = {0.0, 0.0};
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      // Features are min-max scaled to [0, 1], i.e. non-negative, which the
      // chi2 mass interpretation requires.
      observed[labels[r]] += column[r];
      total += column[r];
    }
    if (total <= 0.0) continue;
    double chi2 = 0.0;
    for (int k = 0; k < 2; ++k) {
      const double expected = total * class_count[k] / n;
      if (expected > 0.0) {
        const double delta = observed[k] - expected;
        chi2 += delta * delta / expected;
      }
    }
    scores[f] = chi2;
  }
  return scores;
}

StatusOr<std::vector<double>> FisherRanker::Rank(const data::Dataset& train,
                                                 Rng& rng) const {
  (void)rng;
  const int n = train.num_rows();
  if (n == 0) return InvalidArgumentError("empty dataset");
  const auto& labels = train.labels();
  double class_count[2] = {0.0, 0.0};
  for (int y : labels) class_count[y] += 1.0;

  std::vector<double> scores(train.num_features(), 0.0);
  for (int f = 0; f < train.num_features(); ++f) {
    const auto& column = train.Column(f);
    const double overall_mean = Mean(column);
    double class_mean[2] = {0.0, 0.0};
    for (int r = 0; r < n; ++r) class_mean[labels[r]] += column[r];
    for (int k = 0; k < 2; ++k) {
      class_mean[k] /= std::max(class_count[k], 1e-9);
    }
    double class_variance[2] = {0.0, 0.0};
    for (int r = 0; r < n; ++r) {
      const double delta = column[r] - class_mean[labels[r]];
      class_variance[labels[r]] += delta * delta;
    }
    double between = 0.0;
    double within = 0.0;
    for (int k = 0; k < 2; ++k) {
      const double mean_delta = class_mean[k] - overall_mean;
      between += class_count[k] * mean_delta * mean_delta;
      within += class_variance[k];
    }
    scores[f] = between / std::max(within, 1e-9);
  }
  return scores;
}

}  // namespace dfs::fs
