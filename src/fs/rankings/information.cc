#include "fs/rankings/information.h"

#include <algorithm>

#include "util/math_util.h"

namespace dfs::fs {
namespace {

std::vector<std::vector<int>> DiscretizeAll(const data::Dataset& train,
                                            int num_bins) {
  std::vector<std::vector<int>> binned(train.num_features());
  for (int f = 0; f < train.num_features(); ++f) {
    binned[f] = EqualWidthBins(train.Column(f), num_bins);
  }
  return binned;
}

}  // namespace

StatusOr<std::vector<double>> MutualInformationRanker::Rank(
    const data::Dataset& train, Rng& rng) const {
  (void)rng;
  if (train.num_rows() == 0) return InvalidArgumentError("empty dataset");
  const auto binned = DiscretizeAll(train, num_bins_);
  std::vector<double> scores(train.num_features());
  for (int f = 0; f < train.num_features(); ++f) {
    scores[f] = DiscreteMutualInformation(binned[f], train.labels());
  }
  return scores;
}

StatusOr<std::vector<double>> FcbfRanker::Rank(const data::Dataset& train,
                                               Rng& rng) const {
  (void)rng;
  if (train.num_rows() == 0) return InvalidArgumentError("empty dataset");
  const int d = train.num_features();
  const auto binned = DiscretizeAll(train, num_bins_);

  // SU(f, y) for every feature.
  std::vector<double> su_label(d);
  for (int f = 0; f < d; ++f) {
    su_label[f] = SymmetricalUncertainty(binned[f], train.labels());
  }

  // Redundancy elimination: walk features by descending SU(f, y); drop f if
  // an already-kept predominant feature g has SU(f, g) >= SU(f, y).
  const std::vector<int> order = ArgsortDescending(su_label);
  std::vector<int> kept;
  std::vector<char> redundant(d, 0);
  for (int f : order) {
    bool is_redundant = false;
    for (int g : kept) {
      if (SymmetricalUncertainty(binned[f], binned[g]) >= su_label[f]) {
        is_redundant = true;
        break;
      }
    }
    if (is_redundant) {
      redundant[f] = 1;
    } else {
      kept.push_back(f);
    }
  }

  // Encode: predominant features sort above every redundant one (offset by
  // 1.0 + SU; SU itself is in [0, 1]).
  std::vector<double> scores(d);
  for (int f = 0; f < d; ++f) {
    scores[f] = redundant[f] ? su_label[f] : 1.0 + su_label[f];
  }
  return scores;
}

}  // namespace dfs::fs
