#ifndef DFS_FS_RANKINGS_MCFS_H_
#define DFS_FS_RANKINGS_MCFS_H_

#include <string>
#include <vector>

#include "fs/rankings/ranking.h"

namespace dfs::fs {

/// MCFS — multi-cluster feature selection (Cai, Zhang & He 2010), the
/// sparse-learning representative. Unsupervised: (1) build a heat-kernel
/// k-NN graph over a row subsample, (2) take the bottom eigenvectors of the
/// normalized Laplacian as a spectral embedding (Ng, Jordan & Weiss 2002),
/// (3) lasso-regress each embedding dimension onto the features, (4) score
/// each feature by its largest absolute coefficient. Deliberately the most
/// expensive ranking here (dense eigendecomposition), mirroring the paper's
/// finding that MCFS's spectral embedding dominates its runtime.
class McfsRanker : public FeatureRanker {
 public:
  McfsRanker(int num_clusters = 5, int num_neighbors = 5,
             int max_rows = 120, double l1_penalty = 0.01)
      : num_clusters_(num_clusters), num_neighbors_(num_neighbors),
        max_rows_(max_rows), l1_penalty_(l1_penalty) {}

  std::string name() const override { return "MCFS"; }
  StatusOr<std::vector<double>> Rank(const data::Dataset& train,
                                     Rng& rng) const override;

 private:
  int num_clusters_;
  int num_neighbors_;
  int max_rows_;
  double l1_penalty_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_RANKINGS_MCFS_H_
