#include "fs/tpe_mask.h"

namespace dfs::fs {

void TpeMaskStrategy::Run(EvalContext& context) {
  TpeBinaryOptimizer optimizer(context.num_features(),
                               context.max_feature_count(), options_, seed_);
  while (!context.ShouldStop()) {
    const FeatureMask mask = optimizer.Propose();
    const EvalOutcome outcome = context.Evaluate(mask);
    if (!outcome.evaluated) break;
    optimizer.Record(mask, outcome.objective);
  }
}

}  // namespace dfs::fs
