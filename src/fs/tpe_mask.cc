#include "fs/tpe_mask.h"

namespace dfs::fs {

void TpeMaskStrategy::Run(EvalContext& context) {
  TpeBinaryOptimizer optimizer(context.num_features(),
                               context.max_feature_count(), options_, seed_);
  while (!context.ShouldStop()) {
    // Propose a round of masks up front (speculative batching: later
    // proposals in the round do not see the earlier ones' losses), then
    // evaluate them as one batch and record every result in order.
    // Duplicate proposals within a round cost nothing extra: the engine's
    // cache deduplicates in-flight work.
    std::vector<FeatureMask> proposals;
    proposals.reserve(proposal_batch_);
    for (int i = 0; i < proposal_batch_; ++i) {
      proposals.push_back(optimizer.Propose());
    }
    const std::vector<EvalOutcome> outcomes =
        context.EvaluateBatch(proposals);
    for (size_t i = 0; i < proposals.size(); ++i) {
      if (!outcomes[i].evaluated) return;
      optimizer.Record(proposals[i], outcomes[i].objective);
    }
  }
}

}  // namespace dfs::fs
