#include "fs/evolutionary.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace dfs::fs {
namespace {

// Deselect random features until the bound holds; guarantee non-emptiness.
void Repair(FeatureMask& mask, int max_ones, Rng& rng) {
  int ones = CountSelected(mask);
  while (ones > max_ones) {
    const int f = rng.UniformInt(0, static_cast<int>(mask.size()) - 1);
    if (mask[f]) {
      mask[f] = 0;
      --ones;
    }
  }
  if (ones == 0) {
    mask[rng.UniformInt(0, static_cast<int>(mask.size()) - 1)] = 1;
  }
}

FeatureMask RandomMask(int n, int max_ones, Rng& rng) {
  const double density = std::min(0.5, static_cast<double>(max_ones) / n);
  FeatureMask mask(n, 0);
  for (int f = 0; f < n; ++f) mask[f] = rng.Bernoulli(density) ? 1 : 0;
  Repair(mask, max_ones, rng);
  return mask;
}

}  // namespace

void BinaryPsoStrategy::Run(EvalContext& context) {
  const int n = context.num_features();
  const int max_ones = context.max_feature_count();
  Rng rng(seed_);

  struct Particle {
    FeatureMask position;
    std::vector<double> velocity;
    FeatureMask best_position;
    double best_objective = 1e18;
  };
  std::vector<Particle> swarm(options_.swarm_size);
  FeatureMask global_best;
  double global_best_objective = 1e18;

  // Initialize swarm.
  for (auto& particle : swarm) {
    if (context.ShouldStop()) return;
    particle.position = RandomMask(n, max_ones, rng);
    particle.velocity.assign(n, 0.0);
    for (double& v : particle.velocity) v = rng.Uniform(-1.0, 1.0);
    const EvalOutcome outcome = context.Evaluate(particle.position);
    if (!outcome.evaluated) return;
    particle.best_position = particle.position;
    particle.best_objective = outcome.objective;
    if (outcome.objective < global_best_objective) {
      global_best_objective = outcome.objective;
      global_best = particle.position;
    }
  }

  while (!context.ShouldStop()) {
    for (auto& particle : swarm) {
      if (context.ShouldStop()) return;
      for (int f = 0; f < n; ++f) {
        const double r1 = rng.Uniform();
        const double r2 = rng.Uniform();
        const double x = particle.position[f] ? 1.0 : 0.0;
        const double pbest = particle.best_position[f] ? 1.0 : 0.0;
        const double gbest = global_best[f] ? 1.0 : 0.0;
        double v = options_.inertia * particle.velocity[f] +
                   options_.cognitive * r1 * (pbest - x) +
                   options_.social * r2 * (gbest - x);
        v = Clamp(v, -options_.max_velocity, options_.max_velocity);
        particle.velocity[f] = v;
        particle.position[f] = rng.Bernoulli(Sigmoid(v)) ? 1 : 0;
      }
      Repair(particle.position, max_ones, rng);
      const EvalOutcome outcome = context.Evaluate(particle.position);
      if (!outcome.evaluated) return;
      if (outcome.objective < particle.best_objective) {
        particle.best_objective = outcome.objective;
        particle.best_position = particle.position;
      }
      if (outcome.objective < global_best_objective) {
        global_best_objective = outcome.objective;
        global_best = particle.position;
      }
    }
  }
}

void GeneticAlgorithmStrategy::Run(EvalContext& context) {
  const int n = context.num_features();
  const int max_ones = context.max_feature_count();
  Rng rng(seed_);
  const double mutation_probability =
      options_.mutation_probability > 0.0 ? options_.mutation_probability
                                          : 1.0 / n;

  struct Individual {
    FeatureMask mask;
    double objective = 1e18;
  };
  std::vector<Individual> population;
  for (int i = 0; i < options_.population_size; ++i) {
    if (context.ShouldStop()) return;
    Individual individual;
    individual.mask = RandomMask(n, max_ones, rng);
    const EvalOutcome outcome = context.Evaluate(individual.mask);
    if (!outcome.evaluated) return;
    individual.objective = outcome.objective;
    population.push_back(std::move(individual));
  }

  auto tournament = [&]() -> const Individual& {
    int best = rng.UniformInt(0, static_cast<int>(population.size()) - 1);
    for (int i = 1; i < options_.tournament_size; ++i) {
      const int challenger =
          rng.UniformInt(0, static_cast<int>(population.size()) - 1);
      if (population[challenger].objective < population[best].objective) {
        best = challenger;
      }
    }
    return population[best];
  };

  while (!context.ShouldStop()) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.objective < b.objective;
              });
    std::vector<Individual> next_generation;
    // Elitism: the best individuals survive unchanged (no re-evaluation
    // needed; objectives are deterministic per mask).
    for (int e = 0; e < options_.elites &&
                    e < static_cast<int>(population.size());
         ++e) {
      next_generation.push_back(population[e]);
    }
    while (static_cast<int>(next_generation.size()) <
               options_.population_size &&
           !context.ShouldStop()) {
      const Individual& parent_a = tournament();
      const Individual& parent_b = tournament();
      Individual child;
      child.mask.resize(n);
      if (rng.Bernoulli(options_.crossover_probability)) {
        // Single-point crossover.
        const int cut = rng.UniformInt(1, n - 1);
        for (int f = 0; f < n; ++f) {
          child.mask[f] = f < cut ? parent_a.mask[f] : parent_b.mask[f];
        }
      } else {
        child.mask = parent_a.mask;
      }
      for (int f = 0; f < n; ++f) {
        if (rng.Bernoulli(mutation_probability)) {
          child.mask[f] = child.mask[f] ? 0 : 1;
        }
      }
      Repair(child.mask, max_ones, rng);
      const EvalOutcome outcome = context.Evaluate(child.mask);
      if (!outcome.evaluated) return;
      child.objective = outcome.objective;
      next_generation.push_back(std::move(child));
    }
    population = std::move(next_generation);
  }
}

}  // namespace dfs::fs
