#include "fs/exhaustive.h"

#include <vector>

namespace dfs::fs {
namespace {

// Advances `combination` (ascending indices into [0, n)) to the next
// lexicographic k-combination; false when exhausted.
bool NextCombination(std::vector<int>& combination, int n) {
  const int k = static_cast<int>(combination.size());
  for (int i = k - 1; i >= 0; --i) {
    if (combination[i] < n - (k - i)) {
      ++combination[i];
      for (int j = i + 1; j < k; ++j) combination[j] = combination[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

void ExhaustiveSearch::Run(EvalContext& context) {
  const int n = context.num_features();
  const int max_count = context.max_feature_count();
  for (int size = 1; size <= max_count && !context.ShouldStop(); ++size) {
    std::vector<int> combination(size);
    for (int i = 0; i < size; ++i) combination[i] = i;
    do {
      context.Evaluate(IndicesToMask(n, combination));
    } while (!context.ShouldStop() && NextCombination(combination, n));
  }
}

}  // namespace dfs::fs
