#include "fs/exhaustive.h"

#include <vector>

namespace dfs::fs {
namespace {

// Advances `combination` (ascending indices into [0, n)) to the next
// lexicographic k-combination; false when exhausted.
bool NextCombination(std::vector<int>& combination, int n) {
  const int k = static_cast<int>(combination.size());
  for (int i = k - 1; i >= 0; --i) {
    if (combination[i] < n - (k - i)) {
      ++combination[i];
      for (int j = i + 1; j < k; ++j) combination[j] = combination[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

void ExhaustiveSearch::Run(EvalContext& context) {
  // Enumeration order is unchanged from the serial version; combinations
  // are just submitted in fixed-size batches so the engine can evaluate
  // them concurrently. ShouldStop is checked between batches.
  constexpr int kBatch = 64;
  const int n = context.num_features();
  const int max_count = context.max_feature_count();
  for (int size = 1; size <= max_count && !context.ShouldStop(); ++size) {
    std::vector<int> combination(size);
    for (int i = 0; i < size; ++i) combination[i] = i;
    bool more = true;
    while (more && !context.ShouldStop()) {
      std::vector<FeatureMask> batch;
      batch.reserve(kBatch);
      do {
        batch.push_back(IndicesToMask(n, combination));
        more = NextCombination(combination, n);
      } while (more && static_cast<int>(batch.size()) < kBatch);
      context.EvaluateBatch(batch);
    }
  }
}

}  // namespace dfs::fs
