#ifndef DFS_FS_TOP_K_H_
#define DFS_FS_TOP_K_H_

#include <memory>
#include <string>
#include <vector>

#include "fs/rankings/ranking.h"
#include "fs/search/tpe.h"
#include "fs/strategy.h"

namespace dfs::fs {

/// TPE(<ranking>): computes a feature ranking once (Section 4.2: "we compute
/// each ranking only once in the first round of HPO"), then runs the
/// tree-structured Parzen estimator over the single hyperparameter k and
/// wrapper-evaluates the top-k features of the ranking.
class TopKRankingStrategy : public FeatureSelectionStrategy {
 public:
  TopKRankingStrategy(RankerKind kind, uint64_t seed,
                      const TpeOptions& tpe_options = {});

  std::string name() const override;
  StrategyInfo info() const override;
  void Run(EvalContext& context) override;

 private:
  RankerKind kind_;
  std::unique_ptr<FeatureRanker> ranker_;
  uint64_t seed_;
  TpeOptions tpe_options_;
};

}  // namespace dfs::fs

#endif  // DFS_FS_TOP_K_H_
