#include "fs/portfolio.h"

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dfs::fs {
namespace {

/// EvalContext view that additionally stops when a slice deadline passes.
/// Everything else delegates to the parent (in particular the evaluation
/// cache and success recording live there).
class SlicedContext : public EvalContext {
 public:
  SlicedContext(EvalContext& parent, double slice_seconds)
      : parent_(parent),
        slice_deadline_(Deadline::AfterSeconds(slice_seconds)) {}

  int num_features() const override { return parent_.num_features(); }
  int max_feature_count() const override {
    return parent_.max_feature_count();
  }
  const constraints::ConstraintSet& constraint_set() const override {
    return parent_.constraint_set();
  }
  const data::Dataset& train_data() const override {
    return parent_.train_data();
  }
  bool ShouldStop() const override {
    return parent_.ShouldStop() || slice_deadline_.Expired();
  }
  double RemainingSeconds() const override {
    return std::min(parent_.RemainingSeconds(),
                    std::max(0.0, slice_deadline_.RemainingSeconds()));
  }
  Rng& rng() override { return parent_.rng(); }
  EvalOutcome Evaluate(const FeatureMask& mask) override {
    if (slice_deadline_.Expired()) return EvalOutcome();
    return parent_.Evaluate(mask);
  }
  StatusOr<std::vector<double>> FittedImportances(
      const FeatureMask& mask) override {
    return parent_.FittedImportances(mask);
  }

 private:
  EvalContext& parent_;
  Deadline slice_deadline_;
};

}  // namespace

TimeSlicedPortfolio::TimeSlicedPortfolio(std::vector<StrategyId> members,
                                         uint64_t seed,
                                         const PortfolioOptions& options)
    : member_ids_(std::move(members)), options_(options) {
  DFS_CHECK(!member_ids_.empty()) << "portfolio needs at least one member";
  for (size_t i = 0; i < member_ids_.size(); ++i) {
    members_.push_back(CreateStrategy(member_ids_[i], seed * 131 + i));
  }
}

std::string TimeSlicedPortfolio::name() const {
  std::string name = "Portfolio(";
  for (size_t i = 0; i < member_ids_.size(); ++i) {
    if (i > 0) name += "+";
    name += StrategyIdToString(member_ids_[i]);
  }
  return name + ")";
}

void TimeSlicedPortfolio::Run(EvalContext& context) {
  double slice = options_.initial_slice_seconds;
  while (!context.ShouldStop()) {
    for (auto& member : members_) {
      if (context.ShouldStop()) return;
      obs::TraceSpan span("fs.portfolio_slice", member->name());
      SlicedContext sliced(context, slice);
      member->Run(sliced);
    }
    slice *= options_.slice_growth;
  }
}

}  // namespace dfs::fs
