#ifndef DFS_FS_FEATURE_SUBSET_H_
#define DFS_FS_FEATURE_SUBSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dfs::fs {

/// Selection mask over a dataset's feature columns; mask[f] != 0 selects
/// feature f. char (not bool) keeps element addresses usable.
using FeatureMask = std::vector<char>;

/// Indices of selected features, ascending.
std::vector<int> MaskToIndices(const FeatureMask& mask);

/// Mask of length `num_features` selecting exactly `indices`.
FeatureMask IndicesToMask(int num_features, const std::vector<int>& indices);

/// All-ones mask of length `num_features`.
FeatureMask FullMask(int num_features);

/// Number of selected features.
int CountSelected(const FeatureMask& mask);

/// FNV-1a hash (used by the evaluation cache).
uint64_t MaskHash(const FeatureMask& mask);

/// MaskHash adapter for unordered containers keyed by FeatureMask.
struct MaskHasher {
  size_t operator()(const FeatureMask& mask) const {
    return static_cast<size_t>(MaskHash(mask));
  }
};

/// Compact "{1,4,7}" rendering for logs.
std::string MaskToString(const FeatureMask& mask);

}  // namespace dfs::fs

#endif  // DFS_FS_FEATURE_SUBSET_H_
