#include "fs/rfe.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "util/logging.h"

namespace dfs::fs {

void RecursiveFeatureElimination::Run(EvalContext& context) {
  const int n = context.num_features();
  FeatureMask current = FullMask(n);
  context.Evaluate(current);

  // Importance fits are RFE's dominant off-Evaluate cost (the paper blames
  // NB's permutation-importance fallback for RFE's collapse, Table 6) —
  // "fs.importance_seconds" makes that attributable per snapshot.
  auto& registry = obs::MetricsRegistry::Global();
  obs::Histogram& importance_seconds =
      registry.histogram("fs.importance_seconds");
  obs::Counter& importance_fits = registry.counter("fs.importance_fits");

  while (!context.ShouldStop() && CountSelected(current) > 1) {
    obs::ScopedTimer importance_timer(importance_seconds, &importance_fits);
    auto importances = context.FittedImportances(current);
    importance_timer.Stop();
    if (!importances.ok()) {
      DFS_LOG(WARNING) << "RFE importance failure: "
                       << importances.status().ToString();
      return;
    }
    const std::vector<int> selected = MaskToIndices(current);
    DFS_CHECK_EQ(selected.size(), importances.value().size());

    // Drop-candidate scoring: wrapper-evaluate removing each of the k
    // least-important features in one batch and keep the best objective.
    // Stable ascending-importance order + the batch's in-order reduction
    // make ties fall to the least important feature — the classic drop.
    std::vector<int> order(selected.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return importances.value()[a] < importances.value()[b];
    });
    const int k = std::min<int>(drop_candidates_,
                                static_cast<int>(selected.size()));
    std::vector<FeatureMask> candidates;
    candidates.reserve(k);
    for (int i = 0; i < k; ++i) {
      FeatureMask candidate = current;
      candidate[selected[order[i]]] = 0;
      candidates.push_back(std::move(candidate));
    }
    const std::vector<EvalOutcome> outcomes =
        context.EvaluateBatch(candidates);
    int best = -1;
    double best_objective = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].evaluated && outcomes[i].objective < best_objective) {
        best_objective = outcomes[i].objective;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return;  // nothing evaluable (deadline mid-batch)
    current[selected[order[best]]] = 0;
  }
}

}  // namespace dfs::fs
