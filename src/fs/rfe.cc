#include "fs/rfe.h"

#include <algorithm>

#include "util/logging.h"

namespace dfs::fs {

void RecursiveFeatureElimination::Run(EvalContext& context) {
  const int n = context.num_features();
  FeatureMask current = FullMask(n);
  context.Evaluate(current);

  while (!context.ShouldStop() && CountSelected(current) > 1) {
    auto importances = context.FittedImportances(current);
    if (!importances.ok()) {
      DFS_LOG(WARNING) << "RFE importance failure: "
                       << importances.status().ToString();
      return;
    }
    const std::vector<int> selected = MaskToIndices(current);
    DFS_CHECK_EQ(selected.size(), importances.value().size());
    int weakest = 0;
    for (size_t i = 1; i < selected.size(); ++i) {
      if (importances.value()[i] < importances.value()[weakest]) {
        weakest = static_cast<int>(i);
      }
    }
    current[selected[weakest]] = 0;
    context.Evaluate(current);
  }
}

}  // namespace dfs::fs
