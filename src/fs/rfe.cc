#include "fs/rfe.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace dfs::fs {

void RecursiveFeatureElimination::Run(EvalContext& context) {
  const int n = context.num_features();
  FeatureMask current = FullMask(n);
  context.Evaluate(current);

  // Importance fits are RFE's dominant off-Evaluate cost (the paper blames
  // NB's permutation-importance fallback for RFE's collapse, Table 6) —
  // "fs.importance_seconds" makes that attributable per snapshot.
  auto& registry = obs::MetricsRegistry::Global();
  obs::Histogram& importance_seconds =
      registry.histogram("fs.importance_seconds");
  obs::Counter& importance_fits = registry.counter("fs.importance_fits");

  while (!context.ShouldStop() && CountSelected(current) > 1) {
    obs::ScopedTimer importance_timer(importance_seconds, &importance_fits);
    auto importances = context.FittedImportances(current);
    importance_timer.Stop();
    if (!importances.ok()) {
      DFS_LOG(WARNING) << "RFE importance failure: "
                       << importances.status().ToString();
      return;
    }
    const std::vector<int> selected = MaskToIndices(current);
    DFS_CHECK_EQ(selected.size(), importances.value().size());
    int weakest = 0;
    for (size_t i = 1; i < selected.size(); ++i) {
      if (importances.value()[i] < importances.value()[weakest]) {
        weakest = static_cast<int>(i);
      }
    }
    current[selected[weakest]] = 0;
    context.Evaluate(current);
  }
}

}  // namespace dfs::fs
