#ifndef DFS_OBS_METRICS_H_
#define DFS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs::obs {

/// dfs::obs — the observability spine of the repository.
///
/// A process-wide registry of named instruments (counters, gauges,
/// fixed-bucket latency histograms) that the engine, the FS strategies and
/// the serve fleet record into. The design contract:
///
///   * The hot path is atomics only. Instrument handles are stable
///     references obtained once (registration takes the registry mutex;
///     recording never does). Call sites cache the reference — either in a
///     function-local static for fixed names or in a member for per-run
///     names (e.g. per-strategy counters).
///   * Instruments are never deleted, so cached references stay valid for
///     the life of the process. `Reset()` zeroes values in place (tests,
///     bench isolation) without invalidating handles.
///   * Snapshots are read concurrently with writers; individual fields are
///     atomically read but the snapshot as a whole is not a consistent cut
///     (same caveat as serve::ServerStats — exact at quiescence).
///
/// Naming convention: dot-separated lowercase paths, subsystem first —
/// "engine.evaluations", "strategy.sffs_nr.run_seconds",
/// "serve.job_seconds". `SanitizeLabel` maps display names ("SFFS(NR)")
/// onto that space.

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, running workers).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Consistent-enough copy of one histogram (see class Histogram).
struct HistogramSnapshot {
  /// Inclusive upper bounds of the finite buckets, ascending; counts has
  /// one extra trailing entry for the overflow bucket.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Bucket-resolution quantile (upper bound of the bucket holding the
  /// q-th sample; `max` for the overflow bucket). q in [0, 1].
  double Quantile(double q) const;
};

/// Fixed-bucket latency histogram in seconds. Bucket bounds are fixed at
/// construction (default: 24 exponential buckets, 1 µs .. ~8.4 s, factor 2,
/// plus overflow), so recording is a linear scan over a small constant
/// array and three relaxed atomic updates — no locks, no allocation.
class Histogram {
 public:
  Histogram() : Histogram(DefaultBounds()) {}
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  /// 1e-6 * 2^i for i in [0, 24): 1 µs up to ~8.4 s, then overflow.
  static std::vector<double> DefaultBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Full registry snapshot; serializable for --metrics-out files and the
/// serve "metrics" verb.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Human/machine-readable JSON document (nested, indented) — the
  /// --metrics-out file format. Histograms serialize as
  /// {"count":N,"sum":s,"mean":m,"max":x,"p50":…,"p90":…,"p99":…,
  ///  "buckets":{"1e-06":n,…,"+inf":n}} with zero buckets omitted.
  std::string ToJson() const;
};

/// The process-wide instrument registry. `Global()` is the instance
/// everything records into; separate instances exist only in tests.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. The reference is valid for the registry's lifetime. Registering
  /// the same name as two different instrument kinds is a programming
  /// error; the first registration wins and a warning is logged.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Histogram with custom bucket bounds (first registration wins).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument in place. Cached references stay
  /// valid. For tests and benchmark-harness isolation only.
  void Reset();

 private:
  // The maps (names -> slots) are guarded; the instruments behind the
  // unique_ptrs are lock-free by design and deliberately not pt-guarded —
  // recording through a cached reference never takes mu_.
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DFS_GUARDED_BY(mu_);
};

/// Maps a display name onto the metric-name space: lowercased, runs of
/// non-alphanumerics collapsed to single '_', trimmed ("SFFS(NR)" ->
/// "sffs_nr", "TPE(FCBF)" -> "tpe_fcbf").
std::string SanitizeLabel(const std::string& name);

/// Writes Global().Snapshot().ToJson() to `path`. Returns false (and logs)
/// on I/O failure.
bool DumpGlobalMetrics(const std::string& path);

}  // namespace dfs::obs

#endif  // DFS_OBS_METRICS_H_
