#ifndef DFS_OBS_TRACE_H_
#define DFS_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace dfs::obs {

/// Optional process-wide JSONL span sink (dfs_serverd --trace-out, test
/// harnesses). When no writer is open, TraceSpan costs one relaxed atomic
/// load per construction and nothing else.
///
/// The file holds one flat JSON object per line (the same flat-JSON shape
/// as the serve wire protocol, so the serve parser validates it):
///
///   {"span":"serve.job","detail":"id=7","start_us":1234,"dur_us":56789,
///    "thread":3,"depth":0}
///
/// start_us is measured from TraceWriter::Open on the process steady
/// clock; thread is a small per-process ordinal (first-use order, not an
/// OS tid); depth is the number of enclosing live TraceSpans on the same
/// thread — nesting is reconstructed by (thread, start_us, dur_us, depth).
class TraceWriter {
 public:
  /// Opens `path` (truncating) and starts accepting spans. One writer per
  /// process; a second Open without Close returns FailedPrecondition.
  static Status Open(const std::string& path);

  /// Flushes and closes the writer; subsequent spans are dropped again.
  /// No-op when not open.
  static void Close();

  static bool enabled();

  /// Appends one span line. Called by ~TraceSpan; rarely useful directly.
  static void Emit(const std::string& span, const std::string& detail,
                   uint64_t start_us, uint64_t dur_us, int thread, int depth);
};

/// RAII span: stamps construction→destruction on the trace timeline under
/// `name`, maintaining a per-thread nesting depth. Cheap enough to leave in
/// production paths (a disabled span never takes the clock).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string detail = "");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool enabled_;
  std::string name_;
  std::string detail_;
  uint64_t start_us_ = 0;
  int depth_ = 0;
};

/// RAII timer: records elapsed seconds into a Histogram at scope exit (and
/// optionally bumps a Counter). Hot-path cost is two steady_clock reads
/// plus the histogram's relaxed atomics.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram, Counter* counter = nullptr)
      : histogram_(histogram), counter_(counter) {}

  ~ScopedTimer() {
    if (armed_) Stop();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit; idempotent.
  void Stop() {
    if (!armed_) return;
    armed_ = false;
    histogram_.Record(stopwatch_.ElapsedSeconds());
    if (counter_ != nullptr) counter_->Increment();
  }

  /// Leaves without recording anything (e.g. cache-hit early return).
  void Cancel() { armed_ = false; }

 private:
  Histogram& histogram_;
  Counter* counter_;
  Stopwatch stopwatch_;
  bool armed_ = true;
};

}  // namespace dfs::obs

#endif  // DFS_OBS_TRACE_H_
