#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs::obs {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Writer state behind one mutex; `enabled` is the lock-free fast-path
/// flag so disabled spans never contend.
struct WriterState {
  util::Mutex mu;
  std::FILE* file DFS_GUARDED_BY(mu) = nullptr;
  SteadyClock::time_point epoch DFS_GUARDED_BY(mu);
  int next_thread_ordinal DFS_GUARDED_BY(mu) = 0;
};

std::atomic<bool> g_enabled{false};

WriterState& State() {
  static WriterState* state = new WriterState();  // never freed
  return *state;
}

/// Per-thread nesting depth and small stable ordinal. The ordinal is
/// assigned on first emission after the current Open (monotone across
/// Opens; readers only need it to distinguish threads).
// DFS_THREAD_LOCAL_OK: span nesting depth is inherently per-thread.
thread_local int t_depth = 0;
// DFS_THREAD_LOCAL_OK: stable per-thread ordinal for trace attribution.
thread_local int t_thread_ordinal = -1;

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Status TraceWriter::Open(const std::string& path) {
  WriterState& state = State();
  util::MutexLock lock(state.mu);
  if (state.file != nullptr) {
    return FailedPreconditionError("trace writer already open");
  }
  state.file = std::fopen(path.c_str(), "w");
  if (state.file == nullptr) {
    return InternalError("cannot open trace file: " + path);
  }
  state.epoch = SteadyClock::now();
  g_enabled.store(true, std::memory_order_release);
  return OkStatus();
}

void TraceWriter::Close() {
  WriterState& state = State();
  // Flip the fast-path flag first: spans that start after this line are
  // dropped; spans already emitting serialize behind the mutex.
  g_enabled.store(false, std::memory_order_release);
  util::MutexLock lock(state.mu);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
}

bool TraceWriter::enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

void TraceWriter::Emit(const std::string& span, const std::string& detail,
                       uint64_t start_us, uint64_t dur_us, int thread,
                       int depth) {
  WriterState& state = State();
  util::MutexLock lock(state.mu);
  if (state.file == nullptr) return;  // closed between check and emit
  std::string line = "{\"span\":\"" + EscapeJson(span) + "\"";
  if (!detail.empty()) {
    line += ",\"detail\":\"" + EscapeJson(detail) + "\"";
  }
  line += ",\"start_us\":" + std::to_string(start_us) +
          ",\"dur_us\":" + std::to_string(dur_us) +
          ",\"thread\":" + std::to_string(thread) +
          ",\"depth\":" + std::to_string(depth) + "}\n";
  std::fwrite(line.data(), 1, line.size(), state.file);
  std::fflush(state.file);
}

TraceSpan::TraceSpan(std::string name, std::string detail)
    : enabled_(TraceWriter::enabled()) {
  if (!enabled_) return;
  name_ = std::move(name);
  detail_ = std::move(detail);
  WriterState& state = State();
  {
    util::MutexLock lock(state.mu);
    if (state.file == nullptr) {
      enabled_ = false;
      return;
    }
    if (t_thread_ordinal < 0) t_thread_ordinal = state.next_thread_ordinal++;
    start_us_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - state.epoch)
            .count());
  }
  depth_ = t_depth++;
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  t_depth--;
  uint64_t now_us = 0;
  {
    WriterState& state = State();
    util::MutexLock lock(state.mu);
    if (state.file == nullptr) return;  // closed while the span was live
    now_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - state.epoch)
            .count());
  }
  TraceWriter::Emit(name_, detail_, start_us_,
                    now_us >= start_us_ ? now_us - start_us_ : 0,
                    t_thread_ordinal, depth_);
}

}  // namespace dfs::obs
