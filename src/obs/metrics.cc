#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace dfs::obs {
namespace {

/// Relaxed fetch_add for atomic<double> (CAS loop: std::atomic<double>::
/// fetch_add is C++20 but not universally lowered to hardware; this is).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

// ---- Histogram ------------------------------------------------------

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  bounds.reserve(24);
  double bound = 1e-6;
  for (int i = 0; i < 24; ++i) {
    bounds.push_back(bound);
    bound *= 2.0;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Record(double value) {
  size_t bucket = bounds_.size();  // overflow unless a bound fits
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snapshot.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

// ---- MetricsSnapshot ------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + FormatDouble(h.sum) +
           ", \"mean\": " + FormatDouble(h.mean()) +
           ", \"max\": " + FormatDouble(h.max) +
           ", \"p50\": " + FormatDouble(h.Quantile(0.5)) +
           ", \"p90\": " + FormatDouble(h.Quantile(0.9)) +
           ", \"p99\": " + FormatDouble(h.Quantile(0.99)) +
           ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      const std::string bound =
          i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+inf";
      out += "\"" + bound + "\": " + std::to_string(h.counts[i]);
    }
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// ---- MetricsRegistry ------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::DefaultBounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  util::MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string SanitizeLabel(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

bool DumpGlobalMetrics(const std::string& path) {
  const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    DFS_LOG(WARNING) << "metrics dump: cannot open " << path;
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  std::fclose(file);
  if (!ok) DFS_LOG(WARNING) << "metrics dump: short write to " << path;
  return ok;
}

}  // namespace dfs::obs
