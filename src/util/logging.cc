#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace dfs {
namespace internal_logging {
namespace {

std::atomic<int> g_min_log_level{[] {
  const char* env = std::getenv("DFS_LOG_LEVEL");
  if (env != nullptr) {
    int level = std::atoi(env);
    if (level >= 0 && level <= 3) return level;
  }
  return 1;  // default: warnings and above
}()};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

int MinLogLevel() { return g_min_log_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(int level) {
  g_min_log_level.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(severity_) >= MinLogLevel() ||
      severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace dfs
