#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dfs {
namespace {

// Display width in characters, counting UTF-8 multi-byte sequences (e.g. the
// "±" sign used in mean±std cells) as one column each.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // count non-continuation bytes
  }
  return width;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DFS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = DisplayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }
  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      for (size_t pad = DisplayWidth(row[c]); pad < widths[c]; ++pad) {
        out << ' ';
      }
      out << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    out << '\n';
  };
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  return out.str();
}

}  // namespace dfs
