#ifndef DFS_UTIL_FLAGS_H_
#define DFS_UTIL_FLAGS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dfs {

/// Minimal command-line flag parser for the repository's tools. Flags are
/// declared with output pointers and defaults; Parse accepts `--name value`
/// and `--name=value` forms (and bare `--name` for booleans). Unknown flags
/// are errors; non-flag arguments are collected as positionals.
class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  // Registration. Pointers must outlive Parse; defaults are whatever the
  // pointees hold at Parse time.
  void AddString(const std::string& name, const std::string& help,
                 std::string* value);
  void AddDouble(const std::string& name, const std::string& help,
                 double* value);
  void AddInt(const std::string& name, const std::string& help, int* value);
  void AddBool(const std::string& name, const std::string& help,
               bool* value);

  /// Parses argv (skipping argv[0]). InvalidArgument on unknown flags,
  /// missing values, or unparsable numbers.
  Status Parse(int argc, const char* const* argv);

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted usage text listing every flag with its help string.
  std::string Help() const;

 private:
  enum class Kind { kString, kDouble, kInt, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    void* target;
  };

  const Flag* Find(const std::string& name) const;
  Status Assign(const Flag& flag, const std::string& text);

  std::string program_description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dfs

#endif  // DFS_UTIL_FLAGS_H_
