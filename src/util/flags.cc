#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dfs {

FlagParser::FlagParser(std::string program_description)
    : program_description_(std::move(program_description)) {}

void FlagParser::AddString(const std::string& name, const std::string& help,
                           std::string* value) {
  DFS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back({name, help, Kind::kString, value});
}
void FlagParser::AddDouble(const std::string& name, const std::string& help,
                           double* value) {
  DFS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back({name, help, Kind::kDouble, value});
}
void FlagParser::AddInt(const std::string& name, const std::string& help,
                        int* value) {
  DFS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back({name, help, Kind::kInt, value});
}
void FlagParser::AddBool(const std::string& name, const std::string& help,
                         bool* value) {
  DFS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back({name, help, Kind::kBool, value});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagParser::Assign(const Flag& flag, const std::string& text) {
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = text;
      return OkStatus();
    case Kind::kDouble: {
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return InvalidArgumentError("--" + flag.name +
                                    " expects a number, got '" + text + "'");
      }
      *static_cast<double*>(flag.target) = value;
      return OkStatus();
    }
    case Kind::kInt: {
      char* end = nullptr;
      const long value = std::strtol(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return InvalidArgumentError("--" + flag.name +
                                    " expects an integer, got '" + text +
                                    "'");
      }
      *static_cast<int*>(flag.target) = static_cast<int>(value);
      return OkStatus();
    }
    case Kind::kBool: {
      const std::string lower = ToLower(text);
      if (lower == "true" || lower == "1" || lower.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (lower == "false" || lower == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return InvalidArgumentError("--" + flag.name +
                                    " expects true/false, got '" + text +
                                    "'");
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    if (!StartsWith(argument, "--")) {
      positional_.push_back(argument);
      continue;
    }
    std::string name = argument.substr(2);
    std::string value;
    bool has_value = false;
    const size_t equals = name.find('=');
    if (equals != std::string::npos) {
      value = name.substr(equals + 1);
      name = name.substr(0, equals);
      has_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!has_value && flag->kind != Kind::kBool) {
      if (i + 1 >= argc) {
        return InvalidArgumentError("--" + name + " requires a value");
      }
      value = argv[++i];
      has_value = true;
    }
    DFS_RETURN_IF_ERROR(Assign(*flag, has_value ? value : ""));
  }
  return OkStatus();
}

std::string FlagParser::Help() const {
  std::ostringstream out;
  out << program_description_ << "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    out << "  --" << flag.name;
    switch (flag.kind) {
      case Kind::kString:
        out << " <string>";
        break;
      case Kind::kDouble:
        out << " <number>";
        break;
      case Kind::kInt:
        out << " <int>";
        break;
      case Kind::kBool:
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace dfs
