#ifndef DFS_UTIL_MUTEX_H_
#define DFS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace dfs::util {

/// Annotated synchronization wrappers (DESIGN.md §2f). These are the ONLY
/// place in src/ allowed to name std::mutex / std::condition_variable —
/// tools/dfs_lint.py enforces the ban — so that every lock in the
/// codebase is a capability the Clang thread-safety analysis can track.
///
/// The wrappers add no state and no behavior over the std primitives they
/// hold: a DFS_ANALYZE build and a plain build run the same code. CondVar
/// deliberately has no predicate overload — waits are written as explicit
/// `while (!cond) cv.Wait(lock);` loops in the caller, where the analysis
/// can see that the guarded condition is read with the lock held (a
/// predicate lambda would be analyzed as an unlocked function and
/// false-positive on every guarded read).

/// Exclusive mutex, declared as a Clang capability.
class DFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DFS_ACQUIRE() { mu_.lock(); }
  void Unlock() DFS_RELEASE() { mu_.unlock(); }
  bool TryLock() DFS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a util::Mutex (the repo's only locking idiom: scoped,
/// never manually paired Lock/Unlock outside this header).
class DFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DFS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() DFS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::MutexLock. Waits may return
/// spuriously — callers always loop on their guarded condition.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; re-acquires before
  /// returning. The caller must hold the lock (enforced by construction:
  /// a live MutexLock is a held lock).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Wait bounded by a steady-clock deadline. Returns false iff the
  /// deadline passed (the lock is re-acquired either way).
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) != std::cv_status::timeout;
  }

  /// Wait bounded by a relative timeout in seconds. Returns false iff the
  /// timeout elapsed.
  bool WaitFor(MutexLock& lock, double seconds) {
    return cv_.wait_for(lock.lock_, std::chrono::duration<double>(seconds)) !=
           std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dfs::util

#endif  // DFS_UTIL_MUTEX_H_
