#ifndef DFS_UTIL_MATH_UTIL_H_
#define DFS_UTIL_MATH_UTIL_H_

#include <cmath>
#include <vector>

namespace dfs {

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

/// log(x) clamped away from -inf (used in entropy computations).
double SafeLog(double x);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divides by n); 0 for n < 1.
double Variance(const std::vector<double>& values);

/// Sample standard deviation (divides by n-1); 0 for n < 2.
double SampleStdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

/// Shannon entropy (nats) of a discrete distribution given as counts.
double EntropyFromCounts(const std::vector<double>& counts);

/// Bins `values` into `num_bins` equal-width bins over [min, max]; constant
/// columns map everything to bin 0. Returns one bin index per value.
std::vector<int> EqualWidthBins(const std::vector<double>& values,
                                int num_bins);

/// Mutual information (nats) between two discrete variables given as
/// per-sample category indices (must be the same length).
double DiscreteMutualInformation(const std::vector<int>& x,
                                 const std::vector<int>& y);

/// Shannon entropy (nats) of a discrete variable given as per-sample
/// category indices.
double DiscreteEntropy(const std::vector<int>& x);

/// Symmetrical uncertainty SU(x, y) = 2 * MI / (H(x) + H(y)) in [0, 1];
/// 0 when either entropy is 0 (FCBF, Yu & Liu 2003).
double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y);

/// Returns indices that sort `values` in descending order (stable).
std::vector<int> ArgsortDescending(const std::vector<double>& values);

/// Returns indices that sort `values` in ascending order (stable).
std::vector<int> ArgsortAscending(const std::vector<double>& values);

}  // namespace dfs

#endif  // DFS_UTIL_MATH_UTIL_H_
