#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace dfs {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the xoshiro state with splitmix64 per the reference implementation.
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int lo, int hi) {
  DFS_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(Next() % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Laplace(double scale) {
  DFS_CHECK_GT(scale, 0.0);
  double u = Uniform() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  DFS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DFS_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return UniformInt(0, static_cast<int>(weights.size()) - 1);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  DFS_CHECK_GE(n, 0);
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  Shuffle(indices);
  if (k < n) indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace dfs
