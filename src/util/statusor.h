#ifndef DFS_UTIL_STATUSOR_H_
#define DFS_UTIL_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace dfs {

/// Union of a Status and a value of type T: either holds a value (and an OK
/// status) or a non-OK status. Accessing the value of a non-OK StatusOr
/// aborts, matching the CHECK-failure semantics used throughout the library.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error (there would be no value) and aborts.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DFS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    DFS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DFS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DFS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_)
                : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define DFS_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  DFS_ASSIGN_OR_RETURN_IMPL_(                               \
      DFS_STATUS_MACRO_CONCAT_(_dfs_statusor, __LINE__), lhs, rexpr)

#define DFS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define DFS_STATUS_MACRO_CONCAT_(x, y) DFS_STATUS_MACRO_CONCAT_INNER_(x, y)

#define DFS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) return statusor.status();          \
  lhs = std::move(statusor).value()

}  // namespace dfs

#endif  // DFS_UTIL_STATUSOR_H_
