#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dfs {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  std::transform(result.begin(), result.end(), result.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatMeanStd(double mean, double stddev) {
  return FormatDouble(mean, 2) + " ± " + FormatDouble(stddev, 2);
}

}  // namespace dfs
