#ifndef DFS_UTIL_THREAD_ANNOTATIONS_H_
#define DFS_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes (DESIGN.md §2f).
///
/// These macros turn the repo's lock-discipline comments ("guarded by
/// mu_", "caller holds jobs_mu_") into declarations the compiler checks:
/// building with `-DDFS_ANALYZE=ON` under Clang promotes every violation
/// — a guarded member touched without its mutex, a *Locked helper called
/// unlocked, a lock released twice — to a compile error
/// (-Werror=thread-safety). Under GCC, and under Clang without the
/// warning enabled, every macro expands to nothing, so annotated code is
/// byte-identical to unannotated code at runtime.
///
/// Conventions:
///   * Every mutex-protected member carries DFS_GUARDED_BY(mu). Members
///     that are immutable after construction, or confined to one thread
///     by a documented handoff, carry a comment instead — never a fake
///     guard.
///   * Private helpers that assume a lock is held are named *Locked and
///     annotated DFS_REQUIRES(mu).
///   * Deliberate exemptions use DFS_NO_THREAD_SAFETY_ANALYSIS with an
///     inline justification; blanket suppressions are banned (the lint
///     fixture tree demonstrates each rule firing).
///
/// Only `util::Mutex` / `util::MutexLock` / `util::CondVar` (util/mutex.h)
/// may use the capability attributes directly; everything else annotates
/// data and functions. tools/dfs_lint.py enforces that split.

#if defined(__clang__) && defined(__has_attribute)
#define DFS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DFS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define DFS_CAPABILITY(x) DFS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define DFS_SCOPED_CAPABILITY DFS_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: may only be read/written while holding `x`.
#define DFS_GUARDED_BY(x) DFS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the pointee (not the pointer) is protected by `x`.
#define DFS_PT_GUARDED_BY(x) DFS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Functions: the caller must hold the listed capabilities on entry (and
/// still holds them on exit).
#define DFS_REQUIRES(...) \
  DFS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Functions: acquire the listed capabilities; the caller must not
/// already hold them.
#define DFS_ACQUIRE(...) \
  DFS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Functions: release the listed capabilities, which the caller holds.
#define DFS_RELEASE(...) \
  DFS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Functions: acquire the capability iff the return value equals the
/// first argument (e.g. DFS_TRY_ACQUIRE(true) on a bool TryLock()).
#define DFS_TRY_ACQUIRE(...) \
  DFS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the listed capabilities (guards
/// against self-deadlock on non-reentrant mutexes).
#define DFS_EXCLUDES(...) DFS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Functions returning a reference to the mutex protecting some state.
#define DFS_RETURN_CAPABILITY(x) DFS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry an inline justification comment; tools/dfs_lint.py counts naked
/// uses as violations of the exemption policy.
#define DFS_NO_THREAD_SAFETY_ANALYSIS \
  DFS_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Hot-path allocation contract (DESIGN.md §2e/§2k, tools/dfs_analyze.py)

/// Marks a function as a §2e warm-path root: once the per-engine scratch
/// is warm, no allocating construct (operator new, make_unique/shared,
/// container growth, string building) may be reachable from it through
/// any transitive callee. `tools/dfs_analyze.py` (hot-alloc pass) walks
/// the call graph from every DFS_HOT function and reports reachable
/// allocation sites; the runtime counting-operator-new test in
/// engine_golden_test is the dynamic backstop for what the static walk
/// cannot see (indirect calls, std internals).
#define DFS_HOT DFS_THREAD_ANNOTATION_(annotate("dfs_hot"))

/// Marks a callee that allocates BY DESIGN and terminates the DFS_HOT
/// walk (e.g. TrainModel constructs the model; §2e covers gathers and
/// predictions, not model construction). Every use must carry an inline
/// justification comment. Line-level exemptions inside hot code use
/// `// DFS_ALLOC_OK: <reason>` instead (amortized growth of reusable
/// capacity that is warm after the first evaluation).
#define DFS_ALLOC_BOUNDARY DFS_THREAD_ANNOTATION_(annotate("dfs_alloc_boundary"))

#endif  // DFS_UTIL_THREAD_ANNOTATIONS_H_
