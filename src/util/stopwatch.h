#ifndef DFS_UTIL_STOPWATCH_H_
#define DFS_UTIL_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace dfs {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Wall-clock budget: the maximum-search-time constraint from the paper.
/// A deadline constructed with `Infinite()` never expires.
class Deadline {
 public:
  /// Deadline `seconds` from now.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const { return !infinite_ && Clock::now() >= expiry_; }

  /// Seconds until expiry (negative if already expired; +inf if infinite).
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Deadline() = default;
  bool infinite_ = true;
  Clock::time_point expiry_{};
};

}  // namespace dfs

#endif  // DFS_UTIL_STOPWATCH_H_
