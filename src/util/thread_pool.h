#ifndef DFS_UTIL_THREAD_POOL_H_
#define DFS_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs {

/// Fixed-size worker pool used by the parallel multi-strategy runner
/// (Section 6.5 of the paper) and by experiment harnesses. Tasks are
/// void() closures; Wait() blocks until the queue drains and all workers
/// are idle.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Calling this once the destructor has started shutdown
  /// is a checked failure (DFS_CHECK), not undefined behavior: the task
  /// could never run, so silently accepting it would deadlock Wait().
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  util::Mutex mu_;
  util::CondVar task_available_;
  util::CondVar all_done_;
  std::deque<std::function<void()>> queue_ DFS_GUARDED_BY(mu_);
  /// Written only by the constructor, joined only by the destructor; no
  /// concurrent access, so not guarded.
  std::vector<std::thread> workers_;
  int active_tasks_ DFS_GUARDED_BY(mu_) = 0;
  bool shutdown_ DFS_GUARDED_BY(mu_) = false;
};

/// Runs `fn(i)` for i in [0, count) across `num_threads` workers and waits.
/// With num_threads <= 1 runs inline (deterministic order).
///
/// Exception behavior: `fn` must not throw. Tasks execute on pool worker
/// threads, where an escaping exception propagates out of the thread entry
/// function and calls std::terminate — there is no channel back to the
/// caller. Catch inside `fn` and report through its captured state instead.
void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn);

/// Process-wide thread budget for parallel work (batched wrapper
/// evaluation, the serve worker fleet, the bench harness's scenario loop):
/// the DFS_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency(). Always >= 1.
int HardwareThreadBudget();

}  // namespace dfs

#endif  // DFS_UTIL_THREAD_POOL_H_
