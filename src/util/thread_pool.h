#ifndef DFS_UTIL_THREAD_POOL_H_
#define DFS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfs {

/// Fixed-size worker pool used by the parallel multi-strategy runner
/// (Section 6.5 of the paper) and by experiment harnesses. Tasks are
/// void() closures; Wait() blocks until the queue drains and all workers
/// are idle.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after the destructor has started.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_tasks_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, count) across `num_threads` workers and waits.
/// With num_threads <= 1 runs inline (deterministic order).
void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn);

}  // namespace dfs

#endif  // DFS_UTIL_THREAD_POOL_H_
