#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace dfs {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DFS_CHECK(!shutdown_) << "ThreadPool::Schedule after shutdown";
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (num_threads <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, count));
  for (int i = 0; i < count; ++i) {
    pool.Schedule([&fn, i] { fn(i); });
  }
  pool.Wait();
}

int HardwareThreadBudget() {
  if (const char* env = std::getenv("DFS_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace dfs
