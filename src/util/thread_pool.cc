#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace dfs {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    util::MutexLock lock(mu_);
    DFS_CHECK(!shutdown_) << "ThreadPool::Schedule after shutdown";
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  util::MutexLock lock(mu_);
  while (!queue_.empty() || active_tasks_ != 0) all_done_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      util::MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) task_available_.Wait(lock);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      util::MutexLock lock(mu_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (num_threads <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, count));
  for (int i = 0; i < count; ++i) {
    pool.Schedule([&fn, i] { fn(i); });
  }
  pool.Wait();
}

int HardwareThreadBudget() {
  if (const char* env = std::getenv("DFS_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace dfs
