#ifndef DFS_UTIL_LOGGING_H_
#define DFS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dfs {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity actually emitted; settable via SetMinLogLevel or the
/// DFS_LOG_LEVEL environment variable (0=INFO .. 3=FATAL).
int MinLogLevel();
void SetMinLogLevel(int level);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define DFS_LOG_INFO                                  \
  ::dfs::internal_logging::LogMessage(                \
      __FILE__, __LINE__, ::dfs::internal_logging::LogSeverity::kInfo)
#define DFS_LOG_WARNING                               \
  ::dfs::internal_logging::LogMessage(                \
      __FILE__, __LINE__, ::dfs::internal_logging::LogSeverity::kWarning)
#define DFS_LOG_ERROR                                 \
  ::dfs::internal_logging::LogMessage(                \
      __FILE__, __LINE__, ::dfs::internal_logging::LogSeverity::kError)
#define DFS_LOG_FATAL                                 \
  ::dfs::internal_logging::LogMessage(                \
      __FILE__, __LINE__, ::dfs::internal_logging::LogSeverity::kFatal)

#define DFS_LOG(severity) DFS_LOG_##severity

/// CHECK-style invariant assertion: active in all build modes; streams an
/// explanatory message and aborts on failure. The `?:`-with-`&` shape (as in
/// glog) lets callers append `<< details`, which binds inside the third
/// operand because `?:` has lower precedence than `<<`.
#define DFS_CHECK(condition)                          \
  (condition) ? (void)0                               \
              : ::dfs::internal_logging::Voidify() &  \
                DFS_LOG_FATAL << "Check failed: " #condition " "

#define DFS_CHECK_EQ(a, b) DFS_CHECK((a) == (b))

/// Debug-only CHECK: compiled out under NDEBUG (i.e. in Release builds).
/// Used on unchecked hot-path accessors (Matrix::At/Set, GatherInto) where a
/// per-element branch is the cost being optimized away; sanitizer builds of
/// the tests still catch genuine out-of-bounds access at the heap level.
/// The `while (false)` keeps `DFS_DCHECK(c) << "msg"` compiling when
/// disabled.
#ifndef NDEBUG
#define DFS_DCHECK(condition) DFS_CHECK(condition)
#else
#define DFS_DCHECK(condition) \
  while (false) DFS_CHECK(condition)
#endif
#define DFS_CHECK_NE(a, b) DFS_CHECK((a) != (b))
#define DFS_CHECK_LT(a, b) DFS_CHECK((a) < (b))
#define DFS_CHECK_LE(a, b) DFS_CHECK((a) <= (b))
#define DFS_CHECK_GT(a, b) DFS_CHECK((a) > (b))
#define DFS_CHECK_GE(a, b) DFS_CHECK((a) >= (b))

namespace internal_logging {

/// Helper that gives the ternary in DFS_CHECK a void-typed right arm.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace dfs

#endif  // DFS_UTIL_LOGGING_H_
