#ifndef DFS_UTIL_RNG_H_
#define DFS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace dfs {

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// distribution helpers this project needs. Every stochastic component in the
/// library takes an explicit Rng (or seed) so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Laplace(0, scale) noise (used by the differential-privacy mechanisms).
  double Laplace(double scale);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`
  /// (non-negative; if all zero, uniform).
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int i = static_cast<int>(values.size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap(values[i], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly at random. If k >= n,
  /// returns all indices (shuffled).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator; used to give each parallel task
  /// its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dfs

#endif  // DFS_UTIL_RNG_H_
