#ifndef DFS_UTIL_STRING_UTIL_H_
#define DFS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dfs {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string Strip(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Renders "mean ± std" with two decimals, matching the paper's tables.
std::string FormatMeanStd(double mean, double stddev);

}  // namespace dfs

#endif  // DFS_UTIL_STRING_UTIL_H_
