#ifndef DFS_UTIL_TABLE_PRINTER_H_
#define DFS_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dfs {

/// Renders aligned plain-text tables; used by the experiment harnesses to
/// print paper-style tables on stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator line at the current position.
  void AddSeparator();

  /// Renders the table with column alignment and a header rule.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfs

#endif  // DFS_UTIL_TABLE_PRINTER_H_
