#ifndef DFS_UTIL_STATUS_H_
#define DFS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dfs {

/// Canonical error codes, modeled after the subset of absl::StatusCode that
/// this library needs. `kOk` must stay zero.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
  kCancelled = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// Value-type error carrier used across all library boundaries instead of
/// exceptions. A default-constructed Status is OK.
///
/// [[nodiscard]]: silently dropping a Status return hides failures, so
/// ignoring one is a compile warning (-Werror in CI). The rare deliberate
/// discard is written `(void)DoThing()` with a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl::*Error factories.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define DFS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::dfs::Status _dfs_status_tmp = (expr);         \
    if (!_dfs_status_tmp.ok()) return _dfs_status_tmp; \
  } while (false)

}  // namespace dfs

#endif  // DFS_UTIL_STATUS_H_
