#include "util/math_util.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/logging.h"

namespace dfs {

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double SafeLog(double x) { return std::log(std::max(x, 1e-300)); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  // Explicit left-to-right fold: the §2i accumulation-order contract
  // (dfs_analyze fp-accumulate) keeps std::accumulate/std::reduce over
  // floating-point out of everything but linalg::kernels.
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Quantile(std::vector<double> values, double q) {
  DFS_CHECK(!values.empty());
  DFS_CHECK_GE(q, 0.0);
  DFS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  double position = q * static_cast<double>(values.size() - 1);
  size_t lower = static_cast<size_t>(position);
  size_t upper = std::min(lower + 1, values.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[upper] * fraction;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  DFS_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

double EntropyFromCounts(const std::vector<double>& counts) {
  double total = 0.0;  // explicit left fold, same bits as the old
  for (double c : counts) total += c;  // std::accumulate call
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

std::vector<int> EqualWidthBins(const std::vector<double>& values,
                                int num_bins) {
  DFS_CHECK_GT(num_bins, 0);
  std::vector<int> bins(values.size(), 0);
  if (values.empty()) return bins;
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  double lo = *min_it;
  double hi = *max_it;
  if (hi <= lo) return bins;  // constant column
  double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t i = 0; i < values.size(); ++i) {
    int bin = static_cast<int>((values[i] - lo) / width);
    bins[i] = std::min(bin, num_bins - 1);
  }
  return bins;
}

namespace {

// Joint and marginal counts for two discrete variables.
struct JointCounts {
  std::unordered_map<long long, double> joint;
  std::unordered_map<int, double> mx;
  std::unordered_map<int, double> my;
  double n = 0.0;
};

JointCounts CountJoint(const std::vector<int>& x, const std::vector<int>& y) {
  JointCounts c;
  for (size_t i = 0; i < x.size(); ++i) {
    long long key =
        (static_cast<long long>(x[i]) << 32) ^ static_cast<unsigned>(y[i]);
    c.joint[key] += 1.0;
    c.mx[x[i]] += 1.0;
    c.my[y[i]] += 1.0;
  }
  c.n = static_cast<double>(x.size());
  return c;
}

}  // namespace

double DiscreteMutualInformation(const std::vector<int>& x,
                                 const std::vector<int>& y) {
  DFS_CHECK_EQ(x.size(), y.size());
  if (x.empty()) return 0.0;
  JointCounts c = CountJoint(x, y);
  // Accumulate in sorted key order: unordered_map iteration order is an
  // implementation detail, and the §2d contract wants the same bits from
  // every STL / platform (dfs_analyze unordered-fp-order).
  std::vector<long long> keys;
  keys.reserve(c.joint.size());
  // DFS_UNORDERED_OK: keys are fully sorted below, before any FP work.
  for (const auto& [key, unused] : c.joint) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  double mi = 0.0;
  for (long long key : keys) {
    int xv = static_cast<int>(key >> 32);
    int yv = static_cast<int>(key & 0xFFFFFFFFLL);
    double pxy = c.joint.at(key) / c.n;
    double px = c.mx[xv] / c.n;
    double py = c.my[yv] / c.n;
    mi += pxy * std::log(pxy / (px * py));
  }
  return std::max(mi, 0.0);
}

double DiscreteEntropy(const std::vector<int>& x) {
  std::unordered_map<int, double> counts;
  for (int v : x) counts[v] += 1.0;
  std::vector<double> values;
  values.reserve(counts.size());
  // DFS_UNORDERED_OK: values are fully sorted below, before the FP fold.
  for (const auto& [unused, c] : counts) values.push_back(c);
  std::sort(values.begin(), values.end());
  return EntropyFromCounts(values);
}

double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y) {
  double hx = DiscreteEntropy(x);
  double hy = DiscreteEntropy(y);
  if (hx + hy <= 0.0) return 0.0;
  return 2.0 * DiscreteMutualInformation(x, y) / (hx + hy);
}

std::vector<int> ArgsortDescending(const std::vector<double>& values) {
  std::vector<int> indices(values.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int a, int b) { return values[a] > values[b]; });
  return indices;
}

std::vector<int> ArgsortAscending(const std::vector<double>& values) {
  std::vector<int> indices(values.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int a, int b) { return values[a] < values[b]; });
  return indices;
}

}  // namespace dfs
