#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace dfs {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

// Parses all records (including the header) from raw CSV text.
StatusOr<std::vector<std::vector<std::string>>> ParseRecords(
    const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"' && !field_started) {
        in_quotes = true;
        field_started = true;
      } else if (c == ',') {
        end_field();
      } else if (c == '\n') {
        end_record();
      } else if (c == '\r') {
        // Swallow; handles CRLF.
      } else {
        field += c;
        field_started = true;
      }
    }
    ++i;
  }
  if (in_quotes) return InvalidArgumentError("unterminated quoted CSV field");
  if (field_started || !field.empty() || !current.empty()) end_record();
  return records;
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<CsvTable> ParseCsv(const std::string& text) {
  DFS_ASSIGN_OR_RETURN(auto records, ParseRecords(text));
  if (records.empty()) return InvalidArgumentError("empty CSV input");
  CsvTable table;
  table.header = std::move(records.front());
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.header.size()) {
      return InvalidArgumentError(
          "CSV row " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

std::string WriteCsv(const CsvTable& table) {
  std::ostringstream out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteField(table.header[i]);
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << QuoteField(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot write file: " + path);
  out << WriteCsv(table);
  return OkStatus();
}

}  // namespace dfs
