#ifndef DFS_UTIL_CSV_H_
#define DFS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace dfs {

/// Minimal RFC-4180-ish CSV table: a header row plus string cells. Quoted
/// fields with embedded commas/quotes/newlines are supported. Used to export
/// experiment results and to load user-provided datasets.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  int num_rows() const { return static_cast<int>(rows.size()); }
  int num_columns() const { return static_cast<int>(header.size()); }

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;
};

/// Parses CSV text. Every row must have the same number of fields as the
/// header.
StatusOr<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
StatusOr<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table back to CSV text (quoting only when needed).
std::string WriteCsv(const CsvTable& table);

/// Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace dfs

#endif  // DFS_UTIL_CSV_H_
