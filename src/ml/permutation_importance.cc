#include "ml/permutation_importance.h"

#include <algorithm>

#include "metrics/classification.h"

namespace dfs::ml {

std::vector<double> PermutationImportance(const Classifier& fitted_model,
                                          const linalg::Matrix& x,
                                          const std::vector<int>& y,
                                          int repeats, Rng& rng) {
  const int n = x.rows();
  const int d = x.cols();
  std::vector<double> importances(d, 0.0);
  if (n == 0 || d == 0) return importances;
  repeats = std::max(1, repeats);

  std::vector<int> predictions;
  fitted_model.PredictBatch(x, &predictions);
  const double baseline = metrics::F1Score(y, predictions);

  std::vector<int> permutation(n);
  for (int r = 0; r < n; ++r) permutation[r] = r;

  // One reusable row buffer: refill from the borrowed RowSpan, overwrite
  // the permuted feature, predict through the span kernel. The inner loop
  // (n * d * repeats predictions) allocates nothing.
  std::vector<double> row(d);
  for (int feature = 0; feature < d; ++feature) {
    double total_drop = 0.0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      rng.Shuffle(permutation);
      for (int r = 0; r < n; ++r) {
        const std::span<const double> original = x.RowSpan(r);
        row.assign(original.begin(), original.end());
        row[feature] = x.At(permutation[r], feature);
        predictions[r] = fitted_model.Predict(row);
      }
      total_drop += baseline - metrics::F1Score(y, predictions);
    }
    importances[feature] = std::max(0.0, total_drop / repeats);
  }
  return importances;
}

}  // namespace dfs::ml
