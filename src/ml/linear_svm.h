#ifndef DFS_ML_LINEAR_SVM_H_
#define DFS_ML_LINEAR_SVM_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace dfs::ml {

/// Linear soft-margin SVM trained with the Pegasos stochastic subgradient
/// method (lambda = 1 / (C * n)). Probabilities are a logistic squashing of
/// the margin (sufficient for the 0.5-threshold decisions the study needs).
/// Used by the feature-set transferability experiment (Table 7).
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(const Hyperparameters& params) : params_(params) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  /// Native mixed-precision path (f64 weights x f32 row, f64 accumulate).
  double PredictProba32(std::span<const float> row) const override;

  /// Batched margins via the blocked MatVec kernel; bitwise-equal to the
  /// base per-row loop (same canonical dot per row).
  void PredictBatch(const linalg::Matrix& x,
                    std::vector<int>* out) const override;
  void PredictBatch32(const linalg::Matrix32& x,
                      std::vector<int>* out) const override;
  using Classifier::PredictBatch;

  /// |w_j| per feature.
  std::optional<std::vector<double>> FeatureImportances() const override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LinearSvm>(params_);
  }
  std::string name() const override { return "SVM"; }

 private:
  Hyperparameters params_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_LINEAR_SVM_H_
