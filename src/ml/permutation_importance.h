#ifndef DFS_ML_PERMUTATION_IMPORTANCE_H_
#define DFS_ML_PERMUTATION_IMPORTANCE_H_

#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "util/rng.h"

namespace dfs::ml {

/// Permutation feature importance (Breiman 2001): the F1 drop on (x, y) when
/// one column is shuffled, averaged over `repeats`. Used by RFE when the
/// wrapped model (e.g. NB) exposes no native importances — the paper notes
/// this is exactly why RFE+NB pays a large runtime overhead.
std::vector<double> PermutationImportance(const Classifier& fitted_model,
                                          const linalg::Matrix& x,
                                          const std::vector<int>& y,
                                          int repeats, Rng& rng);

}  // namespace dfs::ml

#endif  // DFS_ML_PERMUTATION_IMPORTANCE_H_
