#ifndef DFS_ML_RANDOM_FOREST_H_
#define DFS_ML_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::ml {

/// Configuration for the random forest used by the meta-learning DFS
/// Optimizer (Section 6.2: "random forest classifier with default parameters
/// and class balancing").
struct RandomForestOptions {
  int num_trees = 40;
  int max_depth = 8;
  /// Features examined per tree: ceil(sqrt(d)) when <= 0.
  int max_features = 0;
  /// Balanced bootstrap: each tree trains on an equal number of rows from
  /// both classes.
  bool class_balancing = true;
  uint64_t seed = 17;
};

/// Bagged ensemble of depth-limited CART trees with per-tree feature
/// subspaces and (optionally) balanced bootstrap sampling.
class RandomForest : public Classifier {
 public:
  explicit RandomForest(const RandomForestOptions& options)
      : options_(options) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  /// Thread-safe on a fitted forest: the router shares one trained
  /// optimizer (and its forests) across serving threads, so concurrent
  /// const predictions must not touch instance state.
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<RandomForest>(options_);
  }
  std::string name() const override { return "RF"; }

  /// Serializes the fitted forest (options, prior, every member tree with
  /// its feature subspace); Deserialize restores a forest with identical
  /// predictions. Used by the DFS Optimizer's Save/Load.
  std::string Serialize() const;
  static StatusOr<RandomForest> Deserialize(const std::string& text);

 private:
  RandomForestOptions options_;
  struct Member {
    std::unique_ptr<DecisionTree> tree;
    std::vector<int> features;  // column subset the tree was trained on
  };
  std::vector<Member> members_;
  double prior_ = 0.5;
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_RANDOM_FOREST_H_
