#include "ml/naive_bayes.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/math_util.h"

namespace dfs::ml {

Status GaussianNaiveBayes::Fit(const linalg::Matrix& x,
                               const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }

  double count[2] = {0.0, 0.0};
  for (int r = 0; r < n; ++r) count[y[r]] += 1.0;
  if (count[0] == 0.0 || count[1] == 0.0) {
    // Degenerate single-class data: predict the constant class via priors.
    count[0] = std::max(count[0], 1e-9);
    count[1] = std::max(count[1], 1e-9);
  }
  for (int k = 0; k < 2; ++k) {
    log_prior_[k] = SafeLog(count[k] / n);
    mean_[k].assign(d, 0.0);
    variance_[k].assign(d, 0.0);
  }
  // Sufficient statistics over raw row pointers: one bounds check per row,
  // none per element (the [0,1]-scaled features make this the entire cost
  // of an NB fit).
  for (int r = 0; r < n; ++r) {
    const double* xr = x.RowPtr(r);
    double* m = mean_[y[r]].data();
    for (int c = 0; c < d; ++c) m[c] += xr[c];
  }
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) mean_[k][c] /= std::max(count[k], 1e-9);
  }
  for (int r = 0; r < n; ++r) {
    const double* xr = x.RowPtr(r);
    const double* m = mean_[y[r]].data();
    double* v = variance_[y[r]].data();
    for (int c = 0; c < d; ++c) {
      const double delta = xr[c] - m[c];
      v[c] += delta * delta;
    }
  }
  // Smoothing: fraction of the largest overall feature variance.
  double max_variance = 0.0;
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) {
      variance_[k][c] /= std::max(count[k], 1e-9);
    }
  }
  for (int c = 0; c < d; ++c) {
    // Same two-pass mean/variance arithmetic as util::Variance, strided
    // over the column in place of the former x.Column copy.
    double sum = 0.0;
    for (int r = 0; r < n; ++r) sum += x.At(r, c);
    const double mean = sum / n;
    double sq = 0.0;
    for (int r = 0; r < n; ++r) {
      const double delta = x.At(r, c) - mean;
      sq += delta * delta;
    }
    max_variance = std::max(max_variance, sq / n);
  }
  const double smoothing =
      std::max(params_.nb_var_smoothing * std::max(max_variance, 1e-9), 1e-12);
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) variance_[k][c] += smoothing;
  }
  FinalizeDerivedStats();
  fitted_ = true;
  return OkStatus();
}

void GaussianNaiveBayes::FinalizeDerivedStats() {
  for (int k = 0; k < 2; ++k) {
    const size_t d = variance_[k].size();
    inv2var_[k].resize(d);
    double norm = log_prior_[k];
    for (size_t c = 0; c < d; ++c) {
      const double variance = variance_[k][c];
      norm += -0.5 * std::log(2.0 * M_PI * variance);
      inv2var_[k][c] = 1.0 / (2.0 * variance);
    }
    log_norm_[k] = norm;
  }
}

double GaussianNaiveBayes::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  DFS_DCHECK(row.size() == mean_[0].size());
  const double* v = row.data();
  const size_t d = row.size();
  // log P(x | k) + log P(k) = log_norm_[k] - sum_c delta^2 / (2 var_c);
  // the quadratic term is one blocked WeightedSquaredDiff kernel, the log
  // terms were folded into log_norm_ at Fit time.
  double log_likelihood[2];
  for (int k = 0; k < 2; ++k) {
    log_likelihood[k] =
        log_norm_[k] - linalg::kernels::WeightedSquaredDiff(
                           v, mean_[k].data(), inv2var_[k].data(), d);
  }
  // P(1 | row) via the log-sum-exp trick.
  const double max_ll = std::max(log_likelihood[0], log_likelihood[1]);
  const double e0 = std::exp(log_likelihood[0] - max_ll);
  const double e1 = std::exp(log_likelihood[1] - max_ll);
  return e1 / (e0 + e1);
}

double GaussianNaiveBayes::PredictProba32(std::span<const float> row) const {
  DFS_DCHECK(fitted_) << "PredictProba32 before Fit";
  DFS_DCHECK(row.size() == mean_[0].size());
  const float* v = row.data();
  const size_t d = row.size();
  double log_likelihood[2];
  for (int k = 0; k < 2; ++k) {
    log_likelihood[k] =
        log_norm_[k] - linalg::kernels::WeightedSquaredDiffF32(
                           v, mean_[k].data(), inv2var_[k].data(), d);
  }
  const double max_ll = std::max(log_likelihood[0], log_likelihood[1]);
  const double e0 = std::exp(log_likelihood[0] - max_ll);
  const double e1 = std::exp(log_likelihood[1] - max_ll);
  return e1 / (e0 + e1);
}

}  // namespace dfs::ml
