#include "ml/naive_bayes.h"

#include <cmath>

#include "util/math_util.h"

namespace dfs::ml {

Status GaussianNaiveBayes::Fit(const linalg::Matrix& x,
                               const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }

  double count[2] = {0.0, 0.0};
  for (int r = 0; r < n; ++r) count[y[r]] += 1.0;
  if (count[0] == 0.0 || count[1] == 0.0) {
    // Degenerate single-class data: predict the constant class via priors.
    count[0] = std::max(count[0], 1e-9);
    count[1] = std::max(count[1], 1e-9);
  }
  for (int k = 0; k < 2; ++k) {
    log_prior_[k] = SafeLog(count[k] / n);
    mean_[k].assign(d, 0.0);
    variance_[k].assign(d, 0.0);
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) mean_[y[r]][c] += x(r, c);
  }
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) mean_[k][c] /= std::max(count[k], 1e-9);
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) {
      const double delta = x(r, c) - mean_[y[r]][c];
      variance_[y[r]][c] += delta * delta;
    }
  }
  // Smoothing: fraction of the largest overall feature variance.
  double max_variance = 0.0;
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) {
      variance_[k][c] /= std::max(count[k], 1e-9);
    }
  }
  for (int c = 0; c < d; ++c) {
    std::vector<double> column = x.Column(c);
    max_variance = std::max(max_variance, Variance(column));
  }
  const double smoothing =
      std::max(params_.nb_var_smoothing * std::max(max_variance, 1e-9), 1e-12);
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) variance_[k][c] += smoothing;
  }
  fitted_ = true;
  return OkStatus();
}

double GaussianNaiveBayes::PredictProba(const std::vector<double>& row) const {
  DFS_CHECK(fitted_) << "PredictProba before Fit";
  DFS_CHECK_EQ(row.size(), mean_[0].size());
  double log_likelihood[2];
  for (int k = 0; k < 2; ++k) {
    double total = log_prior_[k];
    for (size_t c = 0; c < row.size(); ++c) {
      const double variance = variance_[k][c];
      const double delta = row[c] - mean_[k][c];
      total += -0.5 * std::log(2.0 * M_PI * variance) -
               delta * delta / (2.0 * variance);
    }
    log_likelihood[k] = total;
  }
  // P(1 | row) via the log-sum-exp trick.
  const double max_ll = std::max(log_likelihood[0], log_likelihood[1]);
  const double e0 = std::exp(log_likelihood[0] - max_ll);
  const double e1 = std::exp(log_likelihood[1] - max_ll);
  return e1 / (e0 + e1);
}

}  // namespace dfs::ml
