#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "linalg/kernels.h"
#include "util/string_util.h"

namespace dfs::ml {
namespace {

double GiniFromCounts(double positives, double total) {
  if (total <= 0.0) return 0.0;
  const double p = positives / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const linalg::Matrix& x, const std::vector<int>& y) {
  const int n = x.rows();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (params_.dt_max_depth < 1) {
    return InvalidArgumentError("dt_max_depth must be >= 1");
  }
  nodes_.clear();
  importances_.assign(x.cols(), 0.0);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) rows[r] = r;
  BuildNode(x, y, rows, 0);
  double total_importance = 0.0;
  for (double imp : importances_) total_importance += imp;
  if (total_importance > 0.0) {
    for (double& imp : importances_) imp /= total_importance;
  }
  fitted_ = true;
  return OkStatus();
}

int DecisionTree::BuildNode(const linalg::Matrix& x, const std::vector<int>& y,
                            std::vector<int>& rows, int depth) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double positives = 0.0;
  for (int r : rows) positives += y[r];
  const double total = static_cast<double>(rows.size());
  nodes_[node_index].positive_probability =
      total > 0 ? positives / total : 0.5;

  const double node_gini = GiniFromCounts(positives, total);
  const bool can_split =
      depth < params_.dt_max_depth &&
      static_cast<int>(rows.size()) >= params_.dt_min_samples_split &&
      node_gini > 0.0;
  if (!can_split) return node_index;

  // Find the best (feature, threshold) over quantile candidates.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<double> values(rows.size());
  // Node-local labels gathered once so the split scan below runs over two
  // dense arrays (the SplitCounts kernel).
  std::vector<double> node_labels(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    node_labels[i] = static_cast<double>(y[rows[i]]);
  }
  for (int feature = 0; feature < x.cols(); ++feature) {
    for (size_t i = 0; i < rows.size(); ++i) values[i] = x.At(rows[i], feature);
    std::vector<double> sorted_values = values;
    std::sort(sorted_values.begin(), sorted_values.end());
    if (sorted_values.front() == sorted_values.back()) continue;

    // Candidate thresholds: midpoints at (up to) kMaxThresholdCandidates
    // quantile positions.
    std::vector<double> candidates;
    const int num_candidates =
        std::min<int>(kMaxThresholdCandidates,
                      static_cast<int>(sorted_values.size()) - 1);
    for (int q = 1; q <= num_candidates; ++q) {
      const size_t pos = static_cast<size_t>(
          q * (sorted_values.size() - 1) / (num_candidates + 1));
      const double threshold =
          0.5 * (sorted_values[pos] + sorted_values[pos + 1]);
      if (candidates.empty() || threshold != candidates.back()) {
        candidates.push_back(threshold);
      }
    }
    for (double threshold : candidates) {
      // Exact small-integer sums, so any vectorization of the kernel is
      // order-independent (see kernels.h).
      double left_total = 0.0, left_positives = 0.0;
      linalg::kernels::SplitCounts(values.data(), node_labels.data(),
                                   rows.size(), threshold, &left_total,
                                   &left_positives);
      const double right_total = total - left_total;
      if (left_total < 1.0 || right_total < 1.0) continue;
      const double right_positives = positives - left_positives;
      const double weighted_child_gini =
          (left_total / total) * GiniFromCounts(left_positives, left_total) +
          (right_total / total) * GiniFromCounts(right_positives, right_total);
      const double gain = node_gini - weighted_child_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_index;

  std::vector<int> left_rows, right_rows;
  for (int r : rows) {
    (x.At(r, best_feature) <= best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  importances_[best_feature] += best_gain * total;
  const int left = BuildNode(x, y, left_rows, depth + 1);
  const int right = BuildNode(x, y, right_rows, depth + 1);
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  const Node* nodes = nodes_.data();
  const double* v = row.data();
  const Node* node = nodes;
  while (node->feature >= 0) {
    DFS_DCHECK(static_cast<size_t>(node->feature) < row.size());
    node = nodes +
           (v[node->feature] <= node->threshold ? node->left : node->right);
  }
  return node->positive_probability;
}

std::optional<std::vector<double>> DecisionTree::FeatureImportances() const {
  if (!fitted_) return std::nullopt;
  return importances_;
}

std::string DecisionTree::Serialize() const {
  DFS_CHECK(fitted_) << "Serialize before Fit";
  std::ostringstream out;
  out << "tree v1\n";
  out << params_.dt_max_depth << " " << params_.dt_min_samples_split << "\n";
  out << nodes_.size() << "\n";
  char buffer[128];
  for (const Node& node : nodes_) {
    // %.17g round-trips doubles exactly.
    std::snprintf(buffer, sizeof(buffer), "%d %.17g %d %d %.17g\n",
                  node.feature, node.threshold, node.left, node.right,
                  node.positive_probability);
    out << buffer;
  }
  out << importances_.size();
  for (double imp : importances_) {
    std::snprintf(buffer, sizeof(buffer), " %.17g", imp);
    out << buffer;
  }
  out << "\n";
  return out.str();
}

StatusOr<DecisionTree> DecisionTree::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "tree" || version != "v1") {
    return InvalidArgumentError("not a serialized tree");
  }
  Hyperparameters params;
  size_t num_nodes = 0;
  in >> params.dt_max_depth >> params.dt_min_samples_split >> num_nodes;
  if (!in || num_nodes == 0 || num_nodes > 1u << 24) {
    return InvalidArgumentError("corrupt tree header");
  }
  DecisionTree tree(params);
  tree.nodes_.resize(num_nodes);
  for (Node& node : tree.nodes_) {
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.positive_probability;
    if (!in) return InvalidArgumentError("corrupt tree node");
    const int n = static_cast<int>(num_nodes);
    if (node.feature >= 0 && (node.left < 0 || node.left >= n ||
                              node.right < 0 || node.right >= n)) {
      return InvalidArgumentError("tree child index out of range");
    }
  }
  size_t num_importances = 0;
  in >> num_importances;
  if (!in || num_importances > 1u << 24) {
    return InvalidArgumentError("corrupt importances header");
  }
  tree.importances_.resize(num_importances);
  for (double& imp : tree.importances_) {
    in >> imp;
    if (!in) return InvalidArgumentError("corrupt importances");
  }
  tree.fitted_ = true;
  return tree;
}

}  // namespace dfs::ml
