#include "ml/cross_validation.h"

#include <algorithm>

#include "data/split.h"
#include "metrics/classification.h"

namespace dfs::ml {

StatusOr<double> CrossValidatedF1(const Classifier& prototype,
                                  const linalg::Matrix& x,
                                  const std::vector<int>& y, int num_folds,
                                  Rng& rng) {
  const int n = x.rows();
  if (n != static_cast<int>(y.size())) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (num_folds < 2) return InvalidArgumentError("need at least 2 folds");
  if (n < num_folds) return InvalidArgumentError("fewer rows than folds");

  const auto folds = data::StratifiedFolds(y, num_folds, rng);
  double total_f1 = 0.0;
  int scored_folds = 0;
  for (int f = 0; f < num_folds; ++f) {
    std::vector<char> in_test(n, 0);
    for (int r : folds[f]) in_test[r] = 1;

    std::vector<int> train_rows, test_rows;
    for (int r = 0; r < n; ++r) {
      (in_test[r] ? test_rows : train_rows).push_back(r);
    }
    if (train_rows.empty() || test_rows.empty()) continue;

    // Skip folds whose training part has a single class.
    bool has0 = false, has1 = false;
    for (int r : train_rows) (y[r] == 1 ? has1 : has0) = true;
    if (!has0 || !has1) continue;

    linalg::Matrix train_x(static_cast<int>(train_rows.size()), x.cols());
    std::vector<int> train_y(train_rows.size());
    for (size_t i = 0; i < train_rows.size(); ++i) {
      for (int c = 0; c < x.cols(); ++c) {
        train_x(static_cast<int>(i), c) = x(train_rows[i], c);
      }
      train_y[i] = y[train_rows[i]];
    }
    auto model = prototype.Clone();
    DFS_RETURN_IF_ERROR(model->Fit(train_x, train_y));

    std::vector<int> y_true(test_rows.size()), y_pred(test_rows.size());
    for (size_t i = 0; i < test_rows.size(); ++i) {
      y_true[i] = y[test_rows[i]];
      y_pred[i] = model->Predict(x.RowSpan(test_rows[i]));
    }
    total_f1 += metrics::F1Score(y_true, y_pred);
    ++scored_folds;
  }
  if (scored_folds == 0) return 0.0;
  return total_f1 / scored_folds;
}

}  // namespace dfs::ml
