#ifndef DFS_ML_GRID_SEARCH_H_
#define DFS_ML_GRID_SEARCH_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "util/statusor.h"

namespace dfs::ml {

/// Hyperparameter grids from Section 6.1:
///   LR: C in {10^n | n in [-2, 3]}
///   NB: var_smoothing log-spaced in [1e-12, 1e-6]
///   DT: max depth in [1, 7]
///   SVM: C in {10^n | n in [-2, 3]} (for the Table-7 transfer experiment)
/// Returns one Hyperparameters per grid point for `kind`.
std::vector<Hyperparameters> HyperparameterGrid(ModelKind kind);

struct GridSearchResult {
  Hyperparameters best_params;
  std::unique_ptr<Classifier> best_model;  // fitted on the training data
  double best_validation_f1 = 0.0;
  int evaluated_points = 0;
};

/// Trains `kind` at every grid point on (train_x, train_y), scores F1 on
/// (validation_x, validation_y), and returns the best configuration with its
/// fitted model — the "model hyperparameter optimization" stage of the DFS
/// workflow (Figure 2).
StatusOr<GridSearchResult> GridSearch(ModelKind kind,
                                      const linalg::Matrix& train_x,
                                      const std::vector<int>& train_y,
                                      const linalg::Matrix& validation_x,
                                      const std::vector<int>& validation_y);

}  // namespace dfs::ml

#endif  // DFS_ML_GRID_SEARCH_H_
