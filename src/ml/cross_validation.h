#ifndef DFS_ML_CROSS_VALIDATION_H_
#define DFS_ML_CROSS_VALIDATION_H_

#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::ml {

/// Mean F1 over class-stratified k-fold cross-validation of `prototype`
/// (cloned per fold) on (x, y). Used by subsampling-based landmarking in the
/// DFS Optimizer. Folds with a single class score 0.
StatusOr<double> CrossValidatedF1(const Classifier& prototype,
                                  const linalg::Matrix& x,
                                  const std::vector<int>& y, int num_folds,
                                  Rng& rng);

}  // namespace dfs::ml

#endif  // DFS_ML_CROSS_VALIDATION_H_
