#include "ml/logistic_regression.h"

#include <cmath>

#include "util/math_util.h"

namespace dfs::ml {

Status LogisticRegression::Fit(const linalg::Matrix& x,
                               const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (params_.lr_c <= 0) return InvalidArgumentError("C must be positive");

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  const double lambda = 1.0 / (params_.lr_c * n);
  const double n_double = static_cast<double>(n);

  // Gradient descent with a decaying step; features in [0,1] keep the
  // logistic loss Lipschitz constant small, so a fixed base step works.
  // Inner loops run on raw row pointers: one bounds check per row
  // (RowPtr), none per element, and no aliasing between the row and the
  // weight/gradient arrays the compiler has to re-load around.
  double step = 2.0;
  std::vector<double> gradient(d, 0.0);
  const double* w = weights_.data();
  double* g = gradient.data();
  for (int iteration = 0; iteration < params_.lr_max_iterations; ++iteration) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double intercept_gradient = 0.0;
    for (int r = 0; r < n; ++r) {
      const double* xr = x.RowPtr(r);
      double margin = intercept_;
      for (int c = 0; c < d; ++c) margin += w[c] * xr[c];
      double error = Sigmoid(margin) - y[r];
      for (int c = 0; c < d; ++c) g[c] += error * xr[c];
      intercept_gradient += error;
    }
    double gradient_norm_sq = intercept_gradient * intercept_gradient;
    for (int c = 0; c < d; ++c) {
      gradient[c] = gradient[c] / n_double + lambda * weights_[c];
      gradient_norm_sq += gradient[c] * gradient[c];
    }
    intercept_gradient /= n_double;
    const double current_step = step / (1.0 + 0.01 * iteration);
    for (int c = 0; c < d; ++c) weights_[c] -= current_step * gradient[c];
    intercept_ -= current_step * intercept_gradient;
    if (gradient_norm_sq < 1e-10) break;
  }
  fitted_ = true;
  return OkStatus();
}

double LogisticRegression::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double* v = row.data();
  const double* w = weights_.data();
  const size_t d = row.size();
  double margin = intercept_;
  for (size_t c = 0; c < d; ++c) margin += w[c] * v[c];
  return Sigmoid(margin);
}

std::optional<std::vector<double>> LogisticRegression::FeatureImportances()
    const {
  if (!fitted_) return std::nullopt;
  std::vector<double> importances(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::fabs(weights_[c]);
  }
  return importances;
}

}  // namespace dfs::ml
