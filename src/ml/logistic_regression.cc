#include "ml/logistic_regression.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/math_util.h"

namespace dfs::ml {

Status LogisticRegression::Fit(const linalg::Matrix& x,
                               const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (params_.lr_c <= 0) return InvalidArgumentError("C must be positive");

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  const double lambda = 1.0 / (params_.lr_c * n);
  const double n_double = static_cast<double>(n);

  // Gradient descent with a decaying step; features in [0,1] keep the
  // logistic loss Lipschitz constant small, so a fixed base step works.
  // Inner loops run on raw row pointers: one bounds check per row
  // (RowPtr), none per element, and no aliasing between the row and the
  // weight/gradient arrays the compiler has to re-load around.
  double step = 2.0;
  std::vector<double> gradient(d, 0.0);
  const double* w = weights_.data();
  double* g = gradient.data();
  for (int iteration = 0; iteration < params_.lr_max_iterations; ++iteration) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double intercept_gradient = 0.0;
    for (int r = 0; r < n; ++r) {
      const double* xr = x.RowPtr(r);
      const double margin =
          intercept_ + linalg::kernels::Dot(w, xr, static_cast<size_t>(d));
      double error = Sigmoid(margin) - y[r];
      linalg::kernels::AxpyInPlace(g, error, xr, static_cast<size_t>(d));
      intercept_gradient += error;
    }
    double gradient_norm_sq = intercept_gradient * intercept_gradient;
    for (int c = 0; c < d; ++c) {
      gradient[c] = gradient[c] / n_double + lambda * weights_[c];
      gradient_norm_sq += gradient[c] * gradient[c];
    }
    intercept_gradient /= n_double;
    const double current_step = step / (1.0 + 0.01 * iteration);
    for (int c = 0; c < d; ++c) weights_[c] -= current_step * gradient[c];
    intercept_ -= current_step * intercept_gradient;
    if (gradient_norm_sq < 1e-10) break;
  }
  fitted_ = true;
  return OkStatus();
}

double LogisticRegression::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double margin =
      intercept_ +
      linalg::kernels::Dot(row.data(), weights_.data(), row.size());
  return Sigmoid(margin);
}

double LogisticRegression::PredictProba32(std::span<const float> row) const {
  DFS_DCHECK(fitted_) << "PredictProba32 before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double margin =
      intercept_ +
      linalg::kernels::DotF32(row.data(), weights_.data(), row.size());
  return Sigmoid(margin);
}

void LogisticRegression::PredictBatch(const linalg::Matrix& x,
                                      std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  DFS_DCHECK(fitted_) << "PredictBatch before Fit";
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> margins;
  margins.resize(n);  // DFS_ALLOC_OK: reusable thread-local scratch
  linalg::kernels::MatVec(x.Data(), n, x.cols(), weights_.data(), intercept_,
                          margins.data());
  int* dst = out->data();
  // Threshold through Sigmoid, not on the margin sign: Sigmoid(m) can
  // round to exactly 0.5 for tiny negative m, so the two tests are not
  // FP-equivalent and the per-row PredictProba path is the contract.
  for (int r = 0; r < n; ++r) dst[r] = Sigmoid(margins[r]) >= 0.5 ? 1 : 0;
}

void LogisticRegression::PredictBatch32(const linalg::Matrix32& x,
                                        std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  DFS_DCHECK(fitted_) << "PredictBatch32 before Fit";
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> margins;
  margins.resize(n);  // DFS_ALLOC_OK: reusable thread-local scratch
  linalg::kernels::MatVecF32(x.Data(), n, x.cols(), weights_.data(),
                             intercept_, margins.data());
  int* dst = out->data();
  for (int r = 0; r < n; ++r) dst[r] = Sigmoid(margins[r]) >= 0.5 ? 1 : 0;
}

std::optional<std::vector<double>> LogisticRegression::FeatureImportances()
    const {
  if (!fitted_) return std::nullopt;
  std::vector<double> importances(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::fabs(weights_[c]);
  }
  return importances;
}

}  // namespace dfs::ml
