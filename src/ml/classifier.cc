#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace dfs::ml {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "LR";
    case ModelKind::kNaiveBayes:
      return "NB";
    case ModelKind::kDecisionTree:
      return "DT";
    case ModelKind::kLinearSvm:
      return "SVM";
  }
  return "?";
}

void Classifier::PredictBatch(const linalg::Matrix& x,
                              std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  const int n = x.rows();
  out->resize(n);
  int* dst = out->data();
  for (int r = 0; r < n; ++r) dst[r] = Predict(x.RowSpan(r));
}

std::vector<int> Classifier::PredictBatch(const linalg::Matrix& x) const {
  std::vector<int> predictions;
  PredictBatch(x, &predictions);
  return predictions;
}

std::unique_ptr<Classifier> CreateClassifier(ModelKind kind,
                                             const Hyperparameters& params) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>(params);
    case ModelKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>(params);
    case ModelKind::kDecisionTree:
      return std::make_unique<DecisionTree>(params);
    case ModelKind::kLinearSvm:
      return std::make_unique<LinearSvm>(params);
  }
  return nullptr;
}

}  // namespace dfs::ml
