#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace dfs::ml {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "LR";
    case ModelKind::kNaiveBayes:
      return "NB";
    case ModelKind::kDecisionTree:
      return "DT";
    case ModelKind::kLinearSvm:
      return "SVM";
  }
  return "?";
}

double Classifier::PredictProba32(std::span<const float> row) const {
  // Widening fallback: exact f32 -> f64 conversion into reusable
  // thread-local scratch, then the model's f64 kernel. Thread-local (not a
  // member) because PredictProba32 is const and runs concurrently on
  // shared models in the parallel engine.
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> widened;
  widened.resize(row.size());  // DFS_ALLOC_OK: reusable thread-local scratch
  for (size_t i = 0; i < row.size(); ++i) {
    widened[i] = static_cast<double>(row[i]);
  }
  return PredictProba(std::span<const double>(widened));
}

void Classifier::PredictBatch(const linalg::Matrix& x,
                              std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  int* dst = out->data();
  for (int r = 0; r < n; ++r) dst[r] = Predict(x.RowSpan(r));
}

void Classifier::PredictBatch32(const linalg::Matrix32& x,
                                std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  int* dst = out->data();
  for (int r = 0; r < n; ++r) dst[r] = Predict32(x.RowSpan(r));
}

std::vector<int> Classifier::PredictBatch(const linalg::Matrix& x) const {
  std::vector<int> predictions;
  PredictBatch(x, &predictions);
  return predictions;
}

std::unique_ptr<Classifier> CreateClassifier(ModelKind kind,
                                             const Hyperparameters& params) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>(params);
    case ModelKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>(params);
    case ModelKind::kDecisionTree:
      return std::make_unique<DecisionTree>(params);
    case ModelKind::kLinearSvm:
      return std::make_unique<LinearSvm>(params);
  }
  return nullptr;
}

}  // namespace dfs::ml
