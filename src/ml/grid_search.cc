#include "ml/grid_search.h"

#include <cmath>

#include "metrics/classification.h"

namespace dfs::ml {

std::vector<Hyperparameters> HyperparameterGrid(ModelKind kind) {
  std::vector<Hyperparameters> grid;
  switch (kind) {
    case ModelKind::kLogisticRegression:
      for (int exponent = -2; exponent <= 3; ++exponent) {
        Hyperparameters params;
        params.lr_c = std::pow(10.0, exponent);
        grid.push_back(params);
      }
      break;
    case ModelKind::kNaiveBayes:
      for (int exponent = -12; exponent <= -6; ++exponent) {
        Hyperparameters params;
        params.nb_var_smoothing = std::pow(10.0, exponent);
        grid.push_back(params);
      }
      break;
    case ModelKind::kDecisionTree:
      for (int depth = 1; depth <= 7; ++depth) {
        Hyperparameters params;
        params.dt_max_depth = depth;
        grid.push_back(params);
      }
      break;
    case ModelKind::kLinearSvm:
      for (int exponent = -2; exponent <= 3; ++exponent) {
        Hyperparameters params;
        params.svm_c = std::pow(10.0, exponent);
        grid.push_back(params);
      }
      break;
  }
  return grid;
}

StatusOr<GridSearchResult> GridSearch(ModelKind kind,
                                      const linalg::Matrix& train_x,
                                      const std::vector<int>& train_y,
                                      const linalg::Matrix& validation_x,
                                      const std::vector<int>& validation_y) {
  GridSearchResult result;
  result.best_validation_f1 = -1.0;
  std::vector<int> predictions;  // reused across the grid
  for (const auto& params : HyperparameterGrid(kind)) {
    auto model = CreateClassifier(kind, params);
    DFS_RETURN_IF_ERROR(model->Fit(train_x, train_y));
    model->PredictBatch(validation_x, &predictions);
    const double f1 = metrics::F1Score(validation_y, predictions);
    ++result.evaluated_points;
    if (f1 > result.best_validation_f1) {
      result.best_validation_f1 = f1;
      result.best_params = params;
      result.best_model = std::move(model);
    }
  }
  if (result.best_model == nullptr) {
    return InternalError("empty hyperparameter grid");
  }
  return result;
}

}  // namespace dfs::ml
