#include "ml/linear_svm.h"

#include <cmath>

#include "util/math_util.h"
#include "util/rng.h"

namespace dfs::ml {

Status LinearSvm::Fit(const linalg::Matrix& x, const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (params_.svm_c <= 0) return InvalidArgumentError("C must be positive");

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  const double lambda = 1.0 / (params_.svm_c * n);
  // Deterministic instance ordering via a fixed-seed shuffle per epoch.
  Rng rng(0xC0FFEEULL + static_cast<uint64_t>(n) * 31 + d);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  long long t = 0;
  for (int epoch = 0; epoch < params_.svm_epochs; ++epoch) {
    rng.Shuffle(order);
    double* w = weights_.data();
    for (int i : order) {
      ++t;
      const double step = 1.0 / (lambda * static_cast<double>(t));
      const double label = y[i] == 1 ? 1.0 : -1.0;
      const double* xi = x.RowPtr(i);
      double margin = intercept_;
      for (int c = 0; c < d; ++c) margin += w[c] * xi[c];
      // Pegasos update: always shrink, add the hinge subgradient on margin
      // violations.
      const double shrink = 1.0 - step * lambda;
      for (int c = 0; c < d; ++c) w[c] *= shrink;
      if (label * margin < 1.0) {
        for (int c = 0; c < d; ++c) {
          w[c] += step * label * xi[c];
        }
        intercept_ += step * label * 0.1;  // lightly-learned bias
      }
    }
  }
  fitted_ = true;
  return OkStatus();
}

double LinearSvm::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double* v = row.data();
  const double* w = weights_.data();
  const size_t d = row.size();
  double margin = intercept_;
  for (size_t c = 0; c < d; ++c) margin += w[c] * v[c];
  return Sigmoid(4.0 * margin);  // squash; scale keeps mid-margins soft
}

std::optional<std::vector<double>> LinearSvm::FeatureImportances() const {
  if (!fitted_) return std::nullopt;
  std::vector<double> importances(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::fabs(weights_[c]);
  }
  return importances;
}

}  // namespace dfs::ml
