#include "ml/linear_svm.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dfs::ml {

Status LinearSvm::Fit(const linalg::Matrix& x, const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  if (params_.svm_c <= 0) return InvalidArgumentError("C must be positive");

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  const double lambda = 1.0 / (params_.svm_c * n);
  // Deterministic instance ordering via a fixed-seed shuffle per epoch.
  Rng rng(0xC0FFEEULL + static_cast<uint64_t>(n) * 31 + d);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  long long t = 0;
  for (int epoch = 0; epoch < params_.svm_epochs; ++epoch) {
    rng.Shuffle(order);
    double* w = weights_.data();
    for (int i : order) {
      ++t;
      const double step = 1.0 / (lambda * static_cast<double>(t));
      const double label = y[i] == 1 ? 1.0 : -1.0;
      const double* xi = x.RowPtr(i);
      const double margin =
          intercept_ + linalg::kernels::Dot(w, xi, static_cast<size_t>(d));
      // Pegasos update: always shrink, add the hinge subgradient on margin
      // violations.
      const double shrink = 1.0 - step * lambda;
      linalg::kernels::Scale(w, shrink, static_cast<size_t>(d));
      if (label * margin < 1.0) {
        linalg::kernels::AxpyInPlace(w, step * label, xi,
                                     static_cast<size_t>(d));
        intercept_ += step * label * 0.1;  // lightly-learned bias
      }
    }
  }
  fitted_ = true;
  return OkStatus();
}

double LinearSvm::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double margin =
      intercept_ +
      linalg::kernels::Dot(row.data(), weights_.data(), row.size());
  return Sigmoid(4.0 * margin);  // squash; scale keeps mid-margins soft
}

double LinearSvm::PredictProba32(std::span<const float> row) const {
  DFS_DCHECK(fitted_) << "PredictProba32 before Fit";
  DFS_DCHECK(row.size() == weights_.size());
  const double margin =
      intercept_ +
      linalg::kernels::DotF32(row.data(), weights_.data(), row.size());
  return Sigmoid(4.0 * margin);
}

void LinearSvm::PredictBatch(const linalg::Matrix& x,
                             std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  DFS_DCHECK(fitted_) << "PredictBatch before Fit";
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> margins;
  margins.resize(n);  // DFS_ALLOC_OK: reusable thread-local scratch
  linalg::kernels::MatVec(x.Data(), n, x.cols(), weights_.data(), intercept_,
                          margins.data());
  int* dst = out->data();
  // Same Sigmoid-then-threshold contract as LogisticRegression::
  // PredictBatch (margin-sign tests are not FP-equivalent).
  for (int r = 0; r < n; ++r) {
    dst[r] = Sigmoid(4.0 * margins[r]) >= 0.5 ? 1 : 0;
  }
}

void LinearSvm::PredictBatch32(const linalg::Matrix32& x,
                               std::vector<int>* out) const {
  DFS_CHECK(out != nullptr);
  DFS_DCHECK(fitted_) << "PredictBatch32 before Fit";
  const int n = x.rows();
  out->resize(n);  // DFS_ALLOC_OK: caller-owned capacity, warm after first use
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> margins;
  margins.resize(n);  // DFS_ALLOC_OK: reusable thread-local scratch
  linalg::kernels::MatVecF32(x.Data(), n, x.cols(), weights_.data(),
                             intercept_, margins.data());
  int* dst = out->data();
  for (int r = 0; r < n; ++r) {
    dst[r] = Sigmoid(4.0 * margins[r]) >= 0.5 ? 1 : 0;
  }
}

std::optional<std::vector<double>> LinearSvm::FeatureImportances() const {
  if (!fitted_) return std::nullopt;
  std::vector<double> importances(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::fabs(weights_[c]);
  }
  return importances;
}

}  // namespace dfs::ml
