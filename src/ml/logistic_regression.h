#ifndef DFS_ML_LOGISTIC_REGRESSION_H_
#define DFS_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace dfs::ml {

/// L2-regularized logistic regression trained with full-batch gradient
/// descent and a backtracking step size. The regularization strength is
/// 1 / (C * n), matching scikit-learn's parameterization of `C`.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(const Hyperparameters& params)
      : params_(params) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  /// Native mixed-precision path: f32 row lanes widened inline against the
  /// f64 weights (bitwise-equal to widening the whole row first).
  double PredictProba32(std::span<const float> row) const override;

  /// Batched margins through the blocked MatVec kernel; bitwise-equal to
  /// the base per-row loop because both run the same canonical dot.
  void PredictBatch(const linalg::Matrix& x,
                    std::vector<int>* out) const override;
  void PredictBatch32(const linalg::Matrix32& x,
                      std::vector<int>* out) const override;
  using Classifier::PredictBatch;

  /// |w_j| per feature.
  std::optional<std::vector<double>> FeatureImportances() const override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LogisticRegression>(params_);
  }
  std::string name() const override { return "LR"; }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 protected:
  Hyperparameters params_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_LOGISTIC_REGRESSION_H_
