#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dfs::ml {

Status RandomForest::Fit(const linalg::Matrix& x, const std::vector<int>& y) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }
  members_.clear();
  Rng rng(options_.seed);

  std::vector<int> class_rows[2];
  for (int r = 0; r < n; ++r) class_rows[y[r]].push_back(r);
  double positives = static_cast<double>(class_rows[1].size());
  prior_ = positives / n;
  if (class_rows[0].empty() || class_rows[1].empty()) {
    fitted_ = true;  // constant prediction via prior_
    return OkStatus();
  }

  const int features_per_tree =
      options_.max_features > 0
          ? std::min(options_.max_features, d)
          : std::max(1, static_cast<int>(std::ceil(std::sqrt(d))));

  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap rows (balanced across classes when enabled).
    std::vector<int> rows;
    if (options_.class_balancing) {
      const int per_class = std::max<int>(
          1, static_cast<int>(std::min(class_rows[0].size(),
                                       class_rows[1].size())));
      for (int k = 0; k < 2; ++k) {
        for (int i = 0; i < per_class; ++i) {
          rows.push_back(class_rows[k][rng.UniformInt(
              0, static_cast<int>(class_rows[k].size()) - 1)]);
        }
      }
    } else {
      for (int i = 0; i < n; ++i) rows.push_back(rng.UniformInt(0, n - 1));
    }

    Member member;
    member.features = rng.SampleWithoutReplacement(d, features_per_tree);
    std::sort(member.features.begin(), member.features.end());

    linalg::Matrix sub(static_cast<int>(rows.size()),
                       static_cast<int>(member.features.size()));
    std::vector<int> sub_y(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      // Row/feature indices were validated when sampled; use the
      // unchecked accessors in this O(rows * features * trees) gather.
      const double* src = x.RowPtr(rows[i]);
      for (size_t j = 0; j < member.features.size(); ++j) {
        sub.Set(static_cast<int>(i), static_cast<int>(j),
                src[member.features[j]]);
      }
      sub_y[i] = y[rows[i]];
    }
    Hyperparameters params;
    params.dt_max_depth = options_.max_depth;
    member.tree = std::make_unique<DecisionTree>(params);
    DFS_RETURN_IF_ERROR(member.tree->Fit(sub, sub_y));
    members_.push_back(std::move(member));
  }
  fitted_ = true;
  return OkStatus();
}

std::string RandomForest::Serialize() const {
  DFS_CHECK(fitted_) << "Serialize before Fit";
  std::ostringstream out;
  out << "forest v1\n";
  out << options_.num_trees << " " << options_.max_depth << " "
      << options_.max_features << " " << (options_.class_balancing ? 1 : 0)
      << " " << options_.seed << "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g\n", prior_);
  out << buffer;
  out << members_.size() << "\n";
  for (const Member& member : members_) {
    out << member.features.size();
    for (int f : member.features) out << " " << f;
    out << "\n";
    const std::string tree = member.tree->Serialize();
    out << tree.size() << "\n" << tree;
  }
  return out.str();
}

StatusOr<RandomForest> RandomForest::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "forest" || version != "v1") {
    return InvalidArgumentError("not a serialized forest");
  }
  RandomForestOptions options;
  int balancing = 0;
  in >> options.num_trees >> options.max_depth >> options.max_features >>
      balancing >> options.seed;
  options.class_balancing = balancing != 0;
  RandomForest forest(options);
  size_t num_members = 0;
  in >> forest.prior_ >> num_members;
  if (!in || num_members > 1u << 20) {
    return InvalidArgumentError("corrupt forest header");
  }
  for (size_t m = 0; m < num_members; ++m) {
    Member member;
    size_t num_features = 0;
    in >> num_features;
    if (!in || num_features > 1u << 20) {
      return InvalidArgumentError("corrupt member header");
    }
    member.features.resize(num_features);
    for (int& f : member.features) {
      in >> f;
      if (!in || f < 0) return InvalidArgumentError("corrupt feature index");
    }
    size_t tree_bytes = 0;
    in >> tree_bytes;
    in.ignore();  // trailing newline before the blob
    if (!in || tree_bytes > 1u << 26) {
      return InvalidArgumentError("corrupt tree length");
    }
    std::string blob(tree_bytes, '\0');
    in.read(blob.data(), static_cast<std::streamsize>(tree_bytes));
    if (!in) return InvalidArgumentError("truncated tree blob");
    DFS_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Deserialize(blob));
    member.tree = std::make_unique<DecisionTree>(std::move(tree));
    forest.members_.push_back(std::move(member));
  }
  forest.fitted_ = true;
  return forest;
}

double RandomForest::PredictProba(std::span<const double> row) const {
  DFS_CHECK(fitted_) << "PredictProba before Fit";
  if (members_.empty()) return prior_;
  double total = 0.0;
  // Per-thread gather buffer: the router shares one trained forest across
  // serving threads, so the scratch cannot live on the (const) instance.
  // Still allocation-free after each thread's first warm-up call.
  // DFS_THREAD_LOCAL_OK: per-thread scratch; one model serves many threads.
  thread_local std::vector<double> sub_row;
  for (const auto& member : members_) {
    sub_row.resize(member.features.size());  // DFS_ALLOC_OK: reusable thread-local scratch
    for (size_t j = 0; j < member.features.size(); ++j) {
      sub_row[j] = row[member.features[j]];
    }
    total += member.tree->PredictProba(sub_row);
  }
  return total / static_cast<double>(members_.size());
}

}  // namespace dfs::ml
