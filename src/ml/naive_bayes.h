#ifndef DFS_ML_NAIVE_BAYES_H_
#define DFS_ML_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace dfs::ml {

/// Gaussian naive Bayes with variance smoothing: each feature's per-class
/// variance gets `var_smoothing * max feature variance` added, matching
/// scikit-learn's GaussianNB.
class GaussianNaiveBayes : public Classifier {
 public:
  explicit GaussianNaiveBayes(const Hyperparameters& params)
      : params_(params) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  /// Native mixed-precision path (f32 row, f64 statistics/accumulation).
  double PredictProba32(std::span<const float> row) const override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GaussianNaiveBayes>(params_);
  }
  std::string name() const override { return "NB"; }

 protected:
  /// Precomputes the per-class likelihood constants consumed by
  /// PredictProba: log_norm_[k] = log_prior + sum_c -0.5*log(2*pi*var_c)
  /// and inv2var_[k][c] = 1 / (2*var_c). Pulls every std::log out of the
  /// predict hot loop, leaving one WeightedSquaredDiff kernel per class
  /// (DESIGN.md §2i). Every Fit (including the DP subclass, which writes
  /// the statistics itself) must call this last.
  void FinalizeDerivedStats();

  Hyperparameters params_;
  // Index 0 = class 0, index 1 = class 1.
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> variance_[2];
  // Derived by FinalizeDerivedStats from the statistics above.
  double log_norm_[2] = {0.0, 0.0};
  std::vector<double> inv2var_[2];
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_NAIVE_BAYES_H_
