#ifndef DFS_ML_CLASSIFIER_H_
#define DFS_ML_CLASSIFIER_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dfs::ml {

/// The classification-model families used in the study (Section 6.1), plus
/// the SVM used in the transferability experiment (Table 7).
enum class ModelKind {
  kLogisticRegression,
  kNaiveBayes,
  kDecisionTree,
  kLinearSvm,
};

const char* ModelKindToString(ModelKind kind);

/// Model hyperparameters, covering the grids from Section 6.1:
/// LR C in {1e-2..1e3}, NB var_smoothing in [1e-12, 1e-6], DT depth in
/// [1, 7]. Unrelated fields are ignored by each model.
struct Hyperparameters {
  double lr_c = 1.0;                ///< inverse regularization strength
  int lr_max_iterations = 100;
  double nb_var_smoothing = 1e-9;
  int dt_max_depth = 5;
  int dt_min_samples_split = 2;
  double svm_c = 1.0;
  int svm_epochs = 30;
};

/// Interface for binary classifiers operating on row-major feature matrices
/// (features are expected min-max scaled to [0, 1], no missing values).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `x` (rows = instances) with binary labels `y`.
  virtual Status Fit(const linalg::Matrix& x, const std::vector<int>& y) = 0;

  /// P(y = 1 | row). Only valid after a successful Fit. The span form is
  /// the virtual kernel every implementation provides; it must not retain
  /// the span past the call (rows are typically borrowed views into a
  /// caller's scratch matrix — the RowSpan lifetime rules apply, see
  /// DESIGN.md §2e).
  DFS_HOT virtual double PredictProba(std::span<const double> row) const = 0;

  /// Convenience shim for std::vector callers (delegates to the span
  /// kernel; kept so existing call sites and tests stay source-compatible).
  double PredictProba(const std::vector<double>& row) const {
    return PredictProba(std::span<const double>(row));
  }

  /// P(y = 1 | row) from f32 storage: the opt-in f32 evaluation mode
  /// (DESIGN.md §2i). Model parameters and accumulation stay f64 — the
  /// default widens the row to f64 in thread-local scratch and calls the
  /// f64 kernel, which is correct for every model; LR/SVM/NB override
  /// with native mixed-precision kernels that widen lanes inline.
  DFS_HOT virtual double PredictProba32(std::span<const float> row) const;

  /// Hard prediction at threshold 0.5.
  DFS_HOT virtual int Predict(std::span<const double> row) const {
    return PredictProba(row) >= 0.5 ? 1 : 0;
  }
  int Predict(const std::vector<double>& row) const {
    return Predict(std::span<const double>(row));
  }
  int Predict32(std::span<const float> row) const {
    return PredictProba32(row) >= 0.5 ? 1 : 0;
  }

  /// Hard predictions for every row of `x`, written into `*out` (resized to
  /// x.rows(); capacity is reused). No per-row vector is materialized: rows
  /// reach the kernel as borrowed spans. Virtual so linear models can
  /// batch the margins through the blocked MatVec kernel; overrides must
  /// stay bitwise-equal to this per-row loop (engine_golden_test relies
  /// on it).
  DFS_HOT virtual void PredictBatch(const linalg::Matrix& x,
                                    std::vector<int>* out) const;

  /// f32-storage batch predict (same contract as PredictBatch; the
  /// default loops Predict32 row-by-row).
  DFS_HOT virtual void PredictBatch32(const linalg::Matrix32& x,
                                      std::vector<int>* out) const;

  /// Allocating convenience form of the above.
  std::vector<int> PredictBatch(const linalg::Matrix& x) const;

  /// Model-native feature importances (|w| for linear models, impurity
  /// decrease for trees); nullopt when the model has no such notion (NB) —
  /// RFE then falls back to permutation importance, as in the paper.
  virtual std::optional<std::vector<double>> FeatureImportances() const {
    return std::nullopt;
  }

  /// Fresh unfitted copy with identical hyperparameters.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  virtual std::string name() const = 0;
};

/// Factory for the standard (non-private) models.
std::unique_ptr<Classifier> CreateClassifier(ModelKind kind,
                                             const Hyperparameters& params);

}  // namespace dfs::ml

#endif  // DFS_ML_CLASSIFIER_H_
