#include "ml/dp/dp_logistic_regression.h"

#include <cmath>

#include "linalg/matrix.h"

namespace dfs::ml {

Status DpLogisticRegression::Fit(const linalg::Matrix& x,
                                 const std::vector<int>& y) {
  if (epsilon_ <= 0) return InvalidArgumentError("epsilon must be positive");
  DFS_RETURN_IF_ERROR(LogisticRegression::Fit(x, y));

  const int d = x.cols();
  const int n = std::max(1, x.rows());
  const double lambda = 1.0 / (params_.lr_c * n);
  // L2 sensitivity of regularized ERM is 2 / (n * lambda); the output
  // perturbation mechanism samples ||b|| ~ Gamma(d, sensitivity / epsilon).
  const double scale = 2.0 / (n * lambda * epsilon_);

  Rng rng(seed_ ^ 0x5DEECE66DULL);
  // Gamma(d, scale) with integer shape = sum of d Exp(scale) draws.
  double norm = 0.0;
  for (int i = 0; i < d; ++i) {
    double u;
    do {
      u = rng.Uniform();
    } while (u <= 1e-300);
    norm += -scale * std::log(u);
  }
  // Uniform direction on the d-sphere.
  std::vector<double> direction(d);
  double direction_norm = 0.0;
  for (int i = 0; i < d; ++i) {
    direction[i] = rng.Normal();
    direction_norm += direction[i] * direction[i];
  }
  direction_norm = std::sqrt(std::max(direction_norm, 1e-12));
  for (int i = 0; i < d; ++i) {
    weights_[i] += norm * direction[i] / direction_norm;
  }
  return OkStatus();
}

}  // namespace dfs::ml
