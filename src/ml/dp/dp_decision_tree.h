#ifndef DFS_ML_DP_DP_DECISION_TREE_H_
#define DFS_ML_DP_DP_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace dfs::ml {

/// ε-differentially-private decision tree in the spirit of Fletcher & Islam
/// (2017): the tree *structure* is data-independent (random split features,
/// random thresholds in the [0, 1] feature range), so only the leaf class
/// counts touch the data; these receive Laplace(1/ε) noise. Leaves whose
/// noisy counts are too small fall back to the noisy global prior.
class DpDecisionTree : public Classifier {
 public:
  DpDecisionTree(const Hyperparameters& params, double epsilon, uint64_t seed)
      : params_(params), epsilon_(epsilon), seed_(seed) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DpDecisionTree>(params_, epsilon_, seed_);
  }
  std::string name() const override { return "DP-DT"; }

  double epsilon() const { return epsilon_; }

 private:
  struct Node {
    int feature = -1;  // -1 for leaves
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double positive_probability = 0.5;
  };

  int BuildRandomStructure(int depth, int num_features, Rng& rng);

  Hyperparameters params_;
  double epsilon_;
  uint64_t seed_;
  std::vector<Node> nodes_;
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_DP_DP_DECISION_TREE_H_
