#include "ml/dp/dp_decision_tree.h"

#include <algorithm>
#include <cmath>

namespace dfs::ml {

int DpDecisionTree::BuildRandomStructure(int depth, int num_features,
                                         Rng& rng) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (depth >= params_.dt_max_depth) return node_index;
  const int feature = rng.UniformInt(0, num_features - 1);
  const double threshold = rng.Uniform(0.05, 0.95);
  const int left = BuildRandomStructure(depth + 1, num_features, rng);
  const int right = BuildRandomStructure(depth + 1, num_features, rng);
  nodes_[node_index].feature = feature;
  nodes_[node_index].threshold = threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

Status DpDecisionTree::Fit(const linalg::Matrix& x, const std::vector<int>& y) {
  if (epsilon_ <= 0) return InvalidArgumentError("epsilon must be positive");
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (d == 0) return InvalidArgumentError("no features");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }

  Rng rng(seed_ ^ 0x1F123BB5159A55E5ULL);
  nodes_.clear();
  // Cap depth so the expected leaf population stays meaningful under noise.
  const int depth_cap = std::max(
      1, std::min(params_.dt_max_depth,
                  static_cast<int>(std::log2(std::max(2, n / 8)))));
  Hyperparameters capped = params_;
  capped.dt_max_depth = depth_cap;
  std::swap(capped, params_);
  BuildRandomStructure(0, d, rng);
  std::swap(capped, params_);

  // Route training rows to leaves and tally noisy counts. Each record lands
  // in exactly one leaf, so the per-leaf counters compose in parallel and
  // the full budget applies per counter pair.
  std::vector<double> leaf_positive(nodes_.size(), 0.0);
  std::vector<double> leaf_total(nodes_.size(), 0.0);
  for (int r = 0; r < n; ++r) {
    int node = 0;
    while (nodes_[node].feature >= 0) {
      node = x(r, nodes_[node].feature) <= nodes_[node].threshold
                 ? nodes_[node].left
                 : nodes_[node].right;
    }
    leaf_total[node] += 1.0;
    leaf_positive[node] += y[r];
  }
  double global_positive = 0.0;
  for (int r = 0; r < n; ++r) global_positive += y[r];
  const double noisy_prior =
      std::clamp((global_positive + rng.Laplace(2.0 / epsilon_)) /
                     std::max(1.0, static_cast<double>(n)),
                 0.01, 0.99);

  const double half_epsilon = epsilon_ / 2.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0) continue;  // internal node
    const double noisy_total =
        leaf_total[i] + rng.Laplace(1.0 / half_epsilon);
    const double noisy_positive =
        leaf_positive[i] + rng.Laplace(1.0 / half_epsilon);
    if (noisy_total < 3.0) {
      nodes_[i].positive_probability = noisy_prior;
    } else {
      nodes_[i].positive_probability =
          std::clamp(noisy_positive / noisy_total, 0.0, 1.0);
    }
  }
  fitted_ = true;
  return OkStatus();
}

double DpDecisionTree::PredictProba(std::span<const double> row) const {
  DFS_DCHECK(fitted_) << "PredictProba before Fit";
  const Node* nodes = nodes_.data();
  const double* v = row.data();
  const Node* node = nodes;
  while (node->feature >= 0) {
    DFS_DCHECK(static_cast<size_t>(node->feature) < row.size());
    node = nodes +
           (v[node->feature] <= node->threshold ? node->left : node->right);
  }
  return node->positive_probability;
}

}  // namespace dfs::ml
