#ifndef DFS_ML_DP_DP_LOGISTIC_REGRESSION_H_
#define DFS_ML_DP_DP_LOGISTIC_REGRESSION_H_

#include <memory>

#include "ml/logistic_regression.h"
#include "util/rng.h"

namespace dfs::ml {

/// ε-differentially-private logistic regression via output perturbation
/// (Chaudhuri, Monteleoni & Sarwate 2011): train the L2-regularized model,
/// then add a noise vector b with ||b|| ~ Gamma(d, 2 / (n λ ε)) and uniform
/// direction. Smaller ε (stronger privacy) adds more noise.
class DpLogisticRegression : public LogisticRegression {
 public:
  DpLogisticRegression(const Hyperparameters& params, double epsilon,
                       uint64_t seed)
      : LogisticRegression(params), epsilon_(epsilon), seed_(seed) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DpLogisticRegression>(params_, epsilon_, seed_);
  }
  std::string name() const override { return "DP-LR"; }

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  uint64_t seed_;
};

}  // namespace dfs::ml

#endif  // DFS_ML_DP_DP_LOGISTIC_REGRESSION_H_
