#include "ml/dp/dp_naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace dfs::ml {

Status DpGaussianNaiveBayes::Fit(const linalg::Matrix& x,
                                 const std::vector<int>& y) {
  if (epsilon_ <= 0) return InvalidArgumentError("epsilon must be positive");
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0) return InvalidArgumentError("empty training set");
  if (static_cast<int>(y.size()) != n) {
    return InvalidArgumentError("labels size mismatch");
  }

  Rng rng(seed_ ^ 0xB5297A4D3F84D5B5ULL);
  // Budget split: counts, sums, sums of squares. Per-feature statistics each
  // receive epsilon_stat / d (parallel composition does not apply across
  // features of the same record).
  const double epsilon_counts = epsilon_ / 3.0;
  const double epsilon_sums = epsilon_ / 3.0 / std::max(1, d);
  const double epsilon_squares = epsilon_ / 3.0 / std::max(1, d);

  double count[2] = {0.0, 0.0};
  std::vector<double> sum[2], sum_squares[2];
  for (int k = 0; k < 2; ++k) {
    sum[k].assign(d, 0.0);
    sum_squares[k].assign(d, 0.0);
  }
  for (int r = 0; r < n; ++r) {
    count[y[r]] += 1.0;
    for (int c = 0; c < d; ++c) {
      const double value = Clamp(x(r, c), 0.0, 1.0);
      sum[y[r]][c] += value;
      sum_squares[y[r]][c] += value * value;
    }
  }
  // Perturb: sensitivity 1 for each statistic under the [0,1] feature bound.
  for (int k = 0; k < 2; ++k) {
    count[k] = std::max(1.0, count[k] + rng.Laplace(1.0 / epsilon_counts));
    for (int c = 0; c < d; ++c) {
      sum[k][c] += rng.Laplace(1.0 / epsilon_sums);
      sum_squares[k][c] += rng.Laplace(1.0 / epsilon_squares);
    }
  }

  const double total = count[0] + count[1];
  for (int k = 0; k < 2; ++k) {
    log_prior_[k] = SafeLog(count[k] / total);
    mean_[k].assign(d, 0.0);
    variance_[k].assign(d, 0.0);
    for (int c = 0; c < d; ++c) {
      mean_[k][c] = Clamp(sum[k][c] / count[k], 0.0, 1.0);
      const double raw_variance =
          sum_squares[k][c] / count[k] - mean_[k][c] * mean_[k][c];
      variance_[k][c] = std::max(raw_variance, 1e-4);
    }
  }
  const double smoothing = std::max(params_.nb_var_smoothing, 1e-12);
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < d; ++c) variance_[k][c] += smoothing;
  }
  // The base predict path reads the derived constants, not the raw
  // statistics perturbed above.
  FinalizeDerivedStats();
  fitted_ = true;
  return OkStatus();
}

}  // namespace dfs::ml
