#ifndef DFS_ML_DP_DP_NAIVE_BAYES_H_
#define DFS_ML_DP_DP_NAIVE_BAYES_H_

#include <memory>

#include "ml/naive_bayes.h"
#include "util/rng.h"

namespace dfs::ml {

/// ε-differentially-private Gaussian naive Bayes following Vaidya et al.
/// (2013): Laplace noise is added to the sufficient statistics (class
/// counts, per-feature sums and sums of squares). The privacy budget is
/// split evenly across the three statistic families; features are assumed
/// min-max scaled to [0, 1] (true throughout this library), bounding each
/// statistic's sensitivity by 1.
class DpGaussianNaiveBayes : public GaussianNaiveBayes {
 public:
  DpGaussianNaiveBayes(const Hyperparameters& params, double epsilon,
                       uint64_t seed)
      : GaussianNaiveBayes(params), epsilon_(epsilon), seed_(seed) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DpGaussianNaiveBayes>(params_, epsilon_, seed_);
  }
  std::string name() const override { return "DP-NB"; }

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  uint64_t seed_;
};

}  // namespace dfs::ml

#endif  // DFS_ML_DP_DP_NAIVE_BAYES_H_
