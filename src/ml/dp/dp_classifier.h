#ifndef DFS_ML_DP_DP_CLASSIFIER_H_
#define DFS_ML_DP_DP_CLASSIFIER_H_

#include <memory>

#include "ml/classifier.h"

namespace dfs::ml {

/// Creates the ε-differentially-private counterpart of `kind`, as required
/// by the Min-Privacy constraint (Section 3): DP empirical risk minimization
/// for LR (Chaudhuri et al. 2011), Laplace-perturbed sufficient statistics
/// for NB (Vaidya et al. 2013), and a noisy-count random tree for DT
/// (Fletcher & Islam 2017). SVM reuses the LR mechanism on its linear
/// weights. `seed` determinizes the privacy noise for reproducible
/// experiments.
std::unique_ptr<Classifier> CreateDpClassifier(ModelKind kind,
                                               const Hyperparameters& params,
                                               double epsilon, uint64_t seed);

}  // namespace dfs::ml

#endif  // DFS_ML_DP_DP_CLASSIFIER_H_
