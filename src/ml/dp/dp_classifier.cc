#include "ml/dp/dp_classifier.h"

#include "ml/dp/dp_decision_tree.h"
#include "ml/dp/dp_logistic_regression.h"
#include "ml/dp/dp_naive_bayes.h"

namespace dfs::ml {

std::unique_ptr<Classifier> CreateDpClassifier(ModelKind kind,
                                               const Hyperparameters& params,
                                               double epsilon, uint64_t seed) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return std::make_unique<DpLogisticRegression>(params, epsilon, seed);
    case ModelKind::kNaiveBayes:
      return std::make_unique<DpGaussianNaiveBayes>(params, epsilon, seed);
    case ModelKind::kDecisionTree:
      return std::make_unique<DpDecisionTree>(params, epsilon, seed);
    case ModelKind::kLinearSvm: {
      // No dedicated DP-SVM in the paper; the Chaudhuri output-perturbation
      // mechanism applies to any regularized linear ERM, so reuse DP-LR.
      Hyperparameters lr_params = params;
      lr_params.lr_c = params.svm_c;
      return std::make_unique<DpLogisticRegression>(lr_params, epsilon, seed);
    }
  }
  return nullptr;
}

}  // namespace dfs::ml
