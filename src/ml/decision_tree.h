#ifndef DFS_ML_DECISION_TREE_H_
#define DFS_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/statusor.h"

namespace dfs::ml {

/// CART-style binary decision tree with gini impurity, limited by
/// `dt_max_depth` (the hyperparameter the paper tunes in [1, 7]) and
/// `dt_min_samples_split`. Split thresholds are searched over up to
/// `kMaxThresholdCandidates` quantile candidates per feature, which keeps
/// training near-linear for the dataset sizes in the benchmark.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(const Hyperparameters& params) : params_(params) {}

  Status Fit(const linalg::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(std::span<const double> row) const override;
  /// Re-expose the base-class std::vector convenience shim (the span
  /// override would otherwise hide it from unqualified lookup).
  using Classifier::PredictProba;

  /// Total gini-impurity decrease contributed by each feature, normalized to
  /// sum to 1 (0s if the tree is a single leaf).
  std::optional<std::vector<double>> FeatureImportances() const override;

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DecisionTree>(params_);
  }
  std::string name() const override { return "DT"; }

  /// Number of nodes in the fitted tree.
  int NodeCount() const { return static_cast<int>(nodes_.size()); }

  /// Serializes the fitted tree (hyperparameters, nodes, importances) into
  /// a line-oriented text form; Deserialize restores an equivalent tree.
  /// Predictions of the round-tripped tree are bit-identical.
  std::string Serialize() const;
  static StatusOr<DecisionTree> Deserialize(const std::string& text);

 protected:
  static constexpr int kMaxThresholdCandidates = 24;

  struct Node {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left if value <= threshold
    int left = -1;
    int right = -1;
    double positive_probability = 0.5;
  };

  int BuildNode(const linalg::Matrix& x, const std::vector<int>& y,
                std::vector<int>& rows, int depth);

  Hyperparameters params_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  bool fitted_ = false;
};

}  // namespace dfs::ml

#endif  // DFS_ML_DECISION_TREE_H_
