#include "router/replay.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "data/synthetic.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dfs::router {
namespace {

std::string FormatProbability(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Extracts the "detail" string value of one flat-JSON trace line. The
/// details the router emits contain no quotes or backslashes, so a
/// backslash-aware scan to the closing quote is exact.
StatusOr<std::string> ExtractDetail(const std::string& line) {
  static const std::string kKey = "\"detail\":\"";
  const size_t pos = line.find(kKey);
  if (pos == std::string::npos) {
    return InvalidArgumentError("trace line has no detail field: " + line);
  }
  std::string out;
  for (size_t i = pos + kKey.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out.push_back(line[++i]);
      continue;
    }
    if (c == '"') return out;
    out.push_back(c);
  }
  return InvalidArgumentError("unterminated detail field: " + line);
}

StatusOr<uint64_t> ParseU64(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty integer field");
  char* end = nullptr;
  const uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("bad integer field: " + text);
  }
  return value;
}

}  // namespace

StatusOr<fs::StrategyId> StrategyFromIndex(int index) {
  if (index < 0 || index > static_cast<int>(fs::StrategyId::kTpeMrmr)) {
    return InvalidArgumentError("strategy index out of range: " +
                                std::to_string(index));
  }
  return static_cast<fs::StrategyId>(index);
}

std::string DecisionDetail(const RouteDecision& decision) {
  std::ostringstream out;
  out << "seq=" << decision.sequence << " gen=" << decision.generation
      << " fp=" << decision.fingerprint << " seed=" << decision.decision_seed
      << " policy=" << decision.policy
      << " feat=" << (decision.featurized ? 1 : 0)
      << " explored=" << (decision.explored ? 1 : 0)
      << " portfolio=" << (decision.portfolio ? 1 : 0)
      << " chosen=" << static_cast<int>(decision.chosen) << " members=";
  if (decision.members.empty()) {
    out << "-";
  } else {
    for (size_t i = 0; i < decision.members.size(); ++i) {
      if (i > 0) out << ",";
      out << static_cast<int>(decision.members[i]);
    }
  }
  out << " probs=";
  if (decision.probabilities.empty()) {
    out << "-";
  } else {
    for (size_t i = 0; i < decision.probabilities.size(); ++i) {
      if (i > 0) out << ",";
      out << static_cast<int>(decision.probabilities[i].first) << ":"
          << FormatProbability(decision.probabilities[i].second);
    }
  }
  return out.str();
}

StatusOr<TracedDecision> ParseDecisionDetail(const std::string& detail) {
  std::map<std::string, std::string> fields;
  std::istringstream in(detail);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("bad decision detail token: " + token);
    }
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  for (const char* required : {"seq", "gen", "fp", "seed", "feat"}) {
    if (fields.find(required) == fields.end()) {
      return InvalidArgumentError(std::string("decision detail is missing ") +
                                  required + ": " + detail);
    }
  }
  TracedDecision traced;
  DFS_ASSIGN_OR_RETURN(traced.sequence, ParseU64(fields["seq"]));
  DFS_ASSIGN_OR_RETURN(traced.generation, ParseU64(fields["gen"]));
  DFS_ASSIGN_OR_RETURN(traced.fingerprint, ParseU64(fields["fp"]));
  DFS_ASSIGN_OR_RETURN(traced.decision_seed, ParseU64(fields["seed"]));
  traced.featurized = fields["feat"] == "1";
  return traced;
}

StatusOr<ReplayReport> VerifyTrace(const StrategyRouter& router,
                                   const std::string& trace_jsonl) {
  const uint64_t generation = router.Stats().generation;
  ReplayReport report;
  std::istringstream in(trace_jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"span\":\"router.decision\"") == std::string::npos) {
      continue;
    }
    DFS_ASSIGN_OR_RETURN(const std::string detail, ExtractDetail(line));
    DFS_ASSIGN_OR_RETURN(const TracedDecision traced,
                         ParseDecisionDetail(detail));
    if (traced.generation != generation) {
      ++report.skipped;
      continue;
    }
    ++report.checked;
    auto decision = router.ReplayDecision(traced.fingerprint,
                                          traced.decision_seed,
                                          traced.featurized);
    std::string derived;
    if (decision.ok()) {
      // The sequence is history, not state: replay takes it from the trace.
      decision->sequence = traced.sequence;
      derived = DecisionDetail(*decision);
    } else {
      derived = "<" + decision.status().ToString() + ">";
    }
    if (derived != detail) {
      ++report.mismatched;
      if (report.mismatches.size() < 8) {
        report.mismatches.push_back("seq " + std::to_string(traced.sequence) +
                                    "\n  trace:  " + detail +
                                    "\n  replay: " + derived);
      }
    }
  }
  return report;
}

namespace {

Status SelfCheckOnePolicy(const std::string& policy,
                          const std::string& trace_path,
                          const data::Dataset& dataset,
                          const std::string& dataset_name) {
  // Two scenario shapes so the feature cache holds multiple fingerprints.
  constraints::ConstraintSet relaxed;
  relaxed.min_f1 = 0.0;
  relaxed.max_search_seconds = 10.0;
  constraints::ConstraintSet strict;
  strict.min_f1 = 0.2;
  strict.max_search_seconds = 10.0;
  strict.max_feature_fraction = 0.8;

  RouterOptions options;
  options.policy = policy;
  options.policy_options.epsilon = 0.5;
  // Force the low-confidence portfolio path once probabilities exist.
  options.policy_options.confidence_threshold = 0.99;
  options.refit_every = 6;
  options.replay_capacity = 64;
  options.seed = 21;
  options.exploration = {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
                         fs::StrategyId::kSbs};
  // Tiny landmark settings: the self-check exercises plumbing, not model
  // quality.
  options.optimizer_options.landmark_sample_size = 40;
  options.optimizer_options.landmark_folds = 2;

  DFS_RETURN_IF_ERROR(obs::TraceWriter::Open(trace_path));
  std::string snapshot;
  {
    StrategyRouter live(options);

    // Feed outcomes across three strategies (successes favor SFS) so the
    // refit trains a multi-candidate optimizer mid-stream.
    const fs::StrategyId cycle[] = {fs::StrategyId::kSfs,
                                    fs::StrategyId::kTpeChi2,
                                    fs::StrategyId::kSbs};
    for (int i = 0; i < 12; ++i) {
      const RouteDecision decision =
          live.Route(dataset, dataset_name, ml::ModelKind::kLogisticRegression,
                     i % 2 == 0 ? relaxed : strict);
      live.ReportOutcome(decision, cycle[i % 3], i % 3 == 0);
    }
    // Drain the refit pipeline before the snapshot so the tail decisions
    // below share its generation. Triggers coalesce, so wait for one
    // successful refit and then for quiescence rather than counting fires.
    if (live.Stats().outcomes >=
        static_cast<uint64_t>(options.refit_every)) {
      if (!live.WaitForRefits(1, 60.0) || !live.DrainRefits(60.0)) {
        obs::TraceWriter::Close();
        return InternalError("router refit did not complete in time");
      }
    }

    // Tail decisions at the final generation — these are the replayed ones.
    for (int i = 0; i < 8; ++i) {
      (void)live.Route(dataset, dataset_name,
                       ml::ModelKind::kLogisticRegression,
                       i % 2 == 0 ? relaxed : strict);
    }
    DFS_ASSIGN_OR_RETURN(snapshot, live.Serialize());
  }
  obs::TraceWriter::Close();

  std::ifstream trace_in(trace_path, std::ios::binary);
  if (!trace_in) return InternalError("cannot reopen trace: " + trace_path);
  std::ostringstream trace;
  trace << trace_in.rdbuf();

  StrategyRouter restored;
  DFS_RETURN_IF_ERROR(restored.RestoreState(snapshot));
  DFS_ASSIGN_OR_RETURN(const ReplayReport report,
                       VerifyTrace(restored, trace.str()));
  if (report.checked < 8) {
    return InternalError("policy " + policy + ": expected >= 8 replayable "
                         "decisions, checked " +
                         std::to_string(report.checked));
  }
  if (report.mismatched != 0) {
    std::string message = "policy " + policy + ": " +
                          std::to_string(report.mismatched) + "/" +
                          std::to_string(report.checked) +
                          " decisions did not replay byte-identically";
    for (const std::string& diff : report.mismatches) {
      message += "\n" + diff;
    }
    return InternalError(message);
  }
  DFS_LOG(INFO) << "replay self-check: policy " << policy << " checked "
                << report.checked << ", skipped " << report.skipped;
  return OkStatus();
}

}  // namespace

Status ReplaySelfCheck(const std::string& scratch_prefix) {
  data::SyntheticSpec spec;
  spec.name = "replay-selfcheck";
  spec.sensitive_attribute = "Group";
  spec.rows = 80;
  spec.informative_numeric = 3;
  spec.redundant_numeric = 1;
  spec.noise_numeric = 2;
  spec.proxy_features = 1;
  spec.categorical_attributes = 1;
  DFS_ASSIGN_OR_RETURN(const data::Dataset dataset,
                       data::GenerateDataset(spec, 11));

  for (const char* policy : {"static", "confidence", "epsilon-greedy"}) {
    const std::string trace_path =
        scratch_prefix + "." + policy + ".trace.jsonl";
    DFS_RETURN_IF_ERROR(
        SelfCheckOnePolicy(policy, trace_path, dataset, spec.name));
    std::remove(trace_path.c_str());
  }
  return OkStatus();
}

}  // namespace dfs::router
