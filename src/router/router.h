#ifndef DFS_ROUTER_ROUTER_H_
#define DFS_ROUTER_ROUTER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "fs/registry.h"
#include "router/policy.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace dfs::router {

/// Static configuration of a StrategyRouter. The policy fields and seed
/// are part of the snapshot (they determine decisions); optimizer_options
/// is deployment configuration and stays with the process.
struct RouterOptions {
  /// "static" | "confidence" | "epsilon-greedy" (see router/policy.h).
  std::string policy = "static";
  PolicyOptions policy_options;
  /// Resolution of "auto" when no optimizer probabilities are available
  /// (display name from the fs registry).
  std::string default_strategy = "SFFS(NR)";
  /// Exploration support for EpsilonGreedyPolicy; empty = the full
  /// benchmark registry (fs::AllStrategies()).
  std::vector<fs::StrategyId> exploration;
  /// Background refit after this many recorded outcomes (0 disables the
  /// online loop; the router then never featurizes untrained scenarios).
  int refit_every = 0;
  /// Bounded replay buffer of (features, strategy, success) records.
  size_t replay_capacity = 1024;
  /// Bounded featurization cache: landmark CV runs once per scenario shape.
  size_t feature_cache_capacity = 256;
  /// Root of every per-decision seed (mixed with the decision sequence).
  uint64_t seed = 17;
  /// Featurization + refit settings for the meta-optimizer.
  core::OptimizerOptions optimizer_options;
};

/// One routing decision, as recorded in the trace (DESIGN.md §2g): the
/// scenario fingerprint, the policy's inputs (per-strategy probabilities)
/// and its outputs, plus the seed that replays it.
struct RouteDecision {
  uint64_t sequence = 0;     ///< decision ordinal (monotonic per router)
  uint64_t generation = 0;   ///< optimizer generation the decision used
  uint64_t fingerprint = 0;  ///< core::ScenarioFingerprint of the scenario
  uint64_t decision_seed = 0;
  std::string policy;
  bool featurized = false;  ///< probabilities were available
  /// Carried so ReportOutcome can append to the replay buffer without a
  /// cache lookup; empty when !featurized. Not part of the trace record.
  core::ScenarioFeatures features;
  /// P(success) per optimizer strategy, in optimizer order.
  std::vector<std::pair<fs::StrategyId, double>> probabilities;
  fs::StrategyId chosen = fs::StrategyId::kSffs;
  bool explored = false;
  bool portfolio = false;
  std::vector<fs::StrategyId> members;  ///< when portfolio, best first
};

/// Counters of one router, reconciling at quiescence:
/// decisions == explored + portfolio + plain argmax routes, and
/// decisions == sum over routes[] counts.
struct RouterStats {
  std::string policy;
  uint64_t decisions = 0;
  uint64_t explored = 0;
  uint64_t portfolio = 0;
  uint64_t outcomes = 0;  ///< feedback records appended to the buffer
  uint64_t refits = 0;
  uint64_t generation = 0;
  bool optimizer_loaded = false;
  size_t buffer_depth = 0;
  size_t buffer_capacity = 0;
  size_t feature_cache_size = 0;
  uint64_t feature_cache_hits = 0;
  uint64_t feature_cache_misses = 0;
  /// Decisions per chosen strategy, by display name.
  std::map<std::string, uint64_t> routes;
};

/// Bounded FIFO of outcome records (the online feedback loop's memory).
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity);

  void Append(core::OutcomeRecord record);
  std::vector<core::OutcomeRecord> Records() const;
  size_t depth() const;
  size_t capacity() const;
  uint64_t total_appended() const;

  /// Snapshot restore: replaces capacity and contents wholesale.
  void Reset(size_t capacity, std::vector<core::OutcomeRecord> records);

 private:
  mutable util::Mutex mu_;
  size_t capacity_ DFS_GUARDED_BY(mu_);
  std::deque<core::OutcomeRecord> records_ DFS_GUARDED_BY(mu_);
  uint64_t total_ DFS_GUARDED_BY(mu_) = 0;
};

/// Bounded fingerprint → ScenarioFeatures cache (FIFO eviction). Both
/// sides of the landmark-CV amortization: the serving hot path pays
/// FeaturizeScenario once per scenario shape, and the snapshot carries the
/// entries so traced decisions replay without re-landmarking.
class FeatureCache {
 public:
  explicit FeatureCache(size_t capacity);

  bool Lookup(uint64_t fingerprint, core::ScenarioFeatures* features) const;
  /// Lookup that does not count as a hit or miss (replay must not perturb
  /// the cache statistics it is checking against).
  bool Peek(uint64_t fingerprint, core::ScenarioFeatures* features) const;
  void Insert(uint64_t fingerprint, const core::ScenarioFeatures& features);
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

  /// Entries in insertion (eviction) order, for serialization.
  std::vector<std::pair<uint64_t, core::ScenarioFeatures>> Entries() const;
  /// Snapshot restore: replaces capacity and contents wholesale.
  void Reset(size_t capacity,
             std::vector<std::pair<uint64_t, core::ScenarioFeatures>> entries);

 private:
  mutable util::Mutex mu_;
  size_t capacity_ DFS_GUARDED_BY(mu_);
  std::map<uint64_t, core::ScenarioFeatures> entries_ DFS_GUARDED_BY(mu_);
  std::deque<uint64_t> order_ DFS_GUARDED_BY(mu_);
  mutable uint64_t hits_ DFS_GUARDED_BY(mu_) = 0;
  mutable uint64_t misses_ DFS_GUARDED_BY(mu_) = 0;
};

/// Online meta-learned strategy routing (the serving-side Algorithm 1):
/// owns "auto" resolution for the DfsServer, learns from completed jobs,
/// and emits a replayable trace record per decision.
///
///   router::StrategyRouter router({.policy = "epsilon-greedy",
///                                  .refit_every = 64});
///   RouteDecision d = router.Route(dataset, "COMPAS", model, constraints);
///   ... run d.chosen (or race d.members) ...
///   router.ReportOutcome(d, d.chosen, /*success=*/true);
///
/// Thread-safety: all public methods are thread-safe. Route never blocks
/// on the refit (the optimizer swaps in atomically via shared_ptr under a
/// short lock), and feedback never blocks on featurization.
class StrategyRouter {
 public:
  explicit StrategyRouter(RouterOptions options = {});
  ~StrategyRouter();

  StrategyRouter(const StrategyRouter&) = delete;
  StrategyRouter& operator=(const StrategyRouter&) = delete;

  /// Routes one "auto" job: fingerprints the scenario, featurizes through
  /// the cache (only when an optimizer is loaded or the online loop is on),
  /// asks the policy, and emits the trace record. Deterministic given the
  /// router state and decision sequence.
  RouteDecision Route(const data::Dataset& dataset,
                      const std::string& dataset_name, ml::ModelKind model,
                      const constraints::ConstraintSet& constraint_set);

  /// Feedback from a finished routed job: appends (features, strategy,
  /// success) to the replay buffer and triggers a background refit every
  /// `refit_every` outcomes. Decisions made without features (untrained
  /// router with the online loop off) and portfolio decisions (success is
  /// not attributable to one member) are skipped.
  void ReportOutcome(const RouteDecision& decision, fs::StrategyId ran,
                     bool success);

  /// Installs a trained optimizer and bumps the generation (the
  /// SetOptimizer path of the server; also used by warm restart).
  void InstallOptimizer(core::DfsOptimizer optimizer);

  RouterStats Stats() const;

  /// Blocks until at least `count` background refits have completed.
  /// Returns false on timeout. Test/benchmark synchronization.
  bool WaitForRefits(uint64_t count, double timeout_seconds) const;

  /// Blocks until no refit is pending or in flight. Pending triggers
  /// coalesce (two triggers can land as one refit), so callers that need
  /// a quiescent optimizer generation drain instead of counting.
  bool DrainRefits(double timeout_seconds) const;

  // Snapshot / restore ------------------------------------------------
  /// Serializes policy configuration, seed, decision sequence, generation,
  /// feature cache, replay buffer and the optimizer (via its own
  /// Serialize) — everything a replay needs (DESIGN.md §2g).
  StatusOr<std::string> Serialize() const;
  /// Inverse of Serialize: replaces the router's policy configuration and
  /// state in place. optimizer_options is NOT in the snapshot and is kept.
  Status RestoreState(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  /// Replay hook: re-derives a traced decision from the snapshot state.
  /// Does not advance the sequence, touch metrics, or emit a trace record.
  /// `featurized` must be the trace record's feat flag; the features come
  /// from the snapshot's cache (NotFound if the entry is missing).
  StatusOr<RouteDecision> ReplayDecision(uint64_t fingerprint,
                                         uint64_t decision_seed,
                                         bool featurized) const;

  RouterOptions options() const;

 private:
  /// Deterministic per-decision seed: SplitMix64 of the root seed and the
  /// decision sequence.
  static uint64_t DecisionSeed(uint64_t root_seed, uint64_t sequence);

  /// The pure decision core shared by Route and ReplayDecision: builds the
  /// RouteContext from (optimizer, features) and runs the policy with a
  /// fresh Rng(decision_seed).
  RouteDecision DeriveDecision(
      const RouterPolicy& policy,
      const std::shared_ptr<const core::DfsOptimizer>& optimizer,
      const RouterOptions& options, fs::StrategyId fallback,
      const core::ScenarioFeatures* features, uint64_t decision_seed) const;

  /// Cache lookup or FeaturizeScenario (outside all locks); false when
  /// featurization fails.
  bool LookupOrFeaturize(uint64_t fingerprint, const data::Dataset& dataset,
                         ml::ModelKind model,
                         const constraints::ConstraintSet& constraint_set,
                         const core::OptimizerOptions& optimizer_options,
                         core::ScenarioFeatures* features);

  void RecordDecision(const RouteDecision& decision);
  void EmitTrace(const RouteDecision& decision) const;

  void RefitLoop();
  /// One refit attempt; true when a new optimizer generation was swapped in.
  bool DoRefit();

  // Decision state: options, policy, optimizer, counters. Route holds this
  // only to snapshot pointers and bump the sequence.
  mutable util::Mutex mu_;
  RouterOptions options_ DFS_GUARDED_BY(mu_);
  std::shared_ptr<const RouterPolicy> policy_ DFS_GUARDED_BY(mu_);
  fs::StrategyId fallback_ DFS_GUARDED_BY(mu_) = fs::StrategyId::kSffs;
  std::shared_ptr<const core::DfsOptimizer> optimizer_ DFS_GUARDED_BY(mu_);
  uint64_t generation_ DFS_GUARDED_BY(mu_) = 0;
  uint64_t sequence_ DFS_GUARDED_BY(mu_) = 0;

  FeatureCache cache_;
  ReplayBuffer buffer_;

  mutable util::Mutex stats_mu_;
  uint64_t explored_total_ DFS_GUARDED_BY(stats_mu_) = 0;
  uint64_t portfolio_total_ DFS_GUARDED_BY(stats_mu_) = 0;
  std::map<fs::StrategyId, uint64_t> routes_ DFS_GUARDED_BY(stats_mu_);
  /// Cached registry references for the "router.routes.<label>" family so
  /// the hot path registers each name only once.
  std::map<fs::StrategyId, obs::Counter*> route_counters_
      DFS_GUARDED_BY(stats_mu_);

  // Refit signaling. outcomes_since_refit_ lives here (not with the
  // buffer) because it belongs to the trigger, not the data.
  mutable util::Mutex refit_mu_;
  mutable util::CondVar refit_cv_;       ///< wakes the refit thread
  mutable util::CondVar refit_done_cv_;  ///< wakes WaitForRefits
  bool refit_pending_ DFS_GUARDED_BY(refit_mu_) = false;
  bool refit_inflight_ DFS_GUARDED_BY(refit_mu_) = false;
  bool stop_ DFS_GUARDED_BY(refit_mu_) = false;
  int outcomes_since_refit_ DFS_GUARDED_BY(refit_mu_) = 0;
  uint64_t refits_done_ DFS_GUARDED_BY(refit_mu_) = 0;

  std::thread refit_thread_;  ///< last member: joined in the destructor
};

}  // namespace dfs::router

#endif  // DFS_ROUTER_ROUTER_H_
