#include "router/policy.h"

#include <algorithm>

namespace dfs::router {
namespace {

double ProbabilityOf(const RouteContext& context, fs::StrategyId id) {
  auto it = context.probabilities.find(id);
  return it != context.probabilities.end() ? it->second : 0.0;
}

/// The deployment argmax of DfsOptimizer::Choose, verbatim: iterate the
/// candidates in optimizer order, strictly-greater comparison, so the
/// router reproduces SetOptimizer-era choices bit-for-bit.
PolicyChoice ArgmaxChoice(const RouteContext& context) {
  PolicyChoice choice;
  if (context.candidates.empty()) {
    choice.chosen = context.fallback;
    return choice;
  }
  fs::StrategyId best = context.candidates.front();
  double best_probability = -1.0;
  for (fs::StrategyId id : context.candidates) {
    const double probability = ProbabilityOf(context, id);
    if (probability > best_probability) {
      best_probability = probability;
      best = id;
    }
  }
  choice.chosen = best;
  return choice;
}

}  // namespace

PolicyChoice StaticPolicy::Decide(const RouteContext& context,
                                  Rng& rng) const {
  (void)rng;  // deterministic: never draws
  return ArgmaxChoice(context);
}

PolicyChoice ConfidencePolicy::Decide(const RouteContext& context,
                                      Rng& rng) const {
  (void)rng;  // deterministic: never draws
  PolicyChoice choice = ArgmaxChoice(context);
  if (context.candidates.size() < 2 || options_.portfolio_top_k < 2) {
    return choice;
  }
  if (ProbabilityOf(context, choice.chosen) >= options_.confidence_threshold) {
    return choice;
  }
  // Low confidence: race the top-k candidates on the one shared budget.
  // Stable sort by probability keeps candidate order as the tie-break, so
  // the member list is deterministic.
  std::vector<fs::StrategyId> ranked = context.candidates;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&context](fs::StrategyId a, fs::StrategyId b) {
                     return ProbabilityOf(context, a) >
                            ProbabilityOf(context, b);
                   });
  const size_t k = std::min(ranked.size(),
                            static_cast<size_t>(options_.portfolio_top_k));
  choice.members.assign(ranked.begin(), ranked.begin() + k);
  choice.portfolio = true;
  choice.chosen = choice.members.front();
  return choice;
}

PolicyChoice EpsilonGreedyPolicy::Decide(const RouteContext& context,
                                         Rng& rng) const {
  // Draw order is fixed (Bernoulli, then at most one UniformInt) so a
  // replayed Rng with the same seed walks the same stream.
  if (!context.exploration.empty() && rng.Bernoulli(options_.epsilon)) {
    PolicyChoice choice;
    choice.explored = true;
    choice.chosen = context.exploration[rng.UniformInt(
        0, static_cast<int>(context.exploration.size()) - 1)];
    return choice;
  }
  return ArgmaxChoice(context);
}

StatusOr<std::unique_ptr<const RouterPolicy>> CreatePolicy(
    const std::string& name, const PolicyOptions& options) {
  if (name == "static") return {std::make_unique<StaticPolicy>()};
  if (name == "confidence") {
    return {std::make_unique<ConfidencePolicy>(options)};
  }
  if (name == "epsilon-greedy") {
    return {std::make_unique<EpsilonGreedyPolicy>(options)};
  }
  return InvalidArgumentError(
      "unknown router policy '" + name +
      "' (expected static, confidence, or epsilon-greedy)");
}

}  // namespace dfs::router
