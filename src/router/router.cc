#include "router/router.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/replay.h"
#include "util/logging.h"

namespace dfs::router {
namespace {

/// dfs::obs instruments of the router (registry: docs/PROTOCOL.md). The
/// counters reconcile with RouterStats at quiescence; the histograms hold
/// what the counters cannot: the cost distribution of the landmark-CV
/// featurization and of the background refits.
struct RouterMetrics {
  obs::Counter& decisions;
  obs::Counter& explored;
  obs::Counter& portfolio;
  obs::Counter& outcomes;
  obs::Counter& refits;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& generation;
  obs::Gauge& buffer_depth;
  obs::Histogram& featurize_seconds;
  obs::Histogram& refit_seconds;

  static RouterMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static RouterMetrics* metrics = new RouterMetrics{
        registry.counter("router.decisions"),
        registry.counter("router.explored"),
        registry.counter("router.portfolio"),
        registry.counter("router.outcomes"),
        registry.counter("router.refits"),
        registry.counter("router.feature_cache_hits"),
        registry.counter("router.feature_cache_misses"),
        registry.gauge("router.generation"),
        registry.gauge("router.buffer_depth"),
        registry.histogram("router.featurize_seconds"),
        registry.histogram("router.refit_seconds"),
    };
    return *metrics;
  }
};

/// %.17g round-trips doubles exactly (the snapshot must restore the exact
/// feature values the trace's probabilities were computed from).
std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplayBuffer

ReplayBuffer::ReplayBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ReplayBuffer::Append(core::OutcomeRecord record) {
  util::MutexLock lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
  ++total_;
}

std::vector<core::OutcomeRecord> ReplayBuffer::Records() const {
  util::MutexLock lock(mu_);
  return {records_.begin(), records_.end()};
}

size_t ReplayBuffer::depth() const {
  util::MutexLock lock(mu_);
  return records_.size();
}

size_t ReplayBuffer::capacity() const {
  util::MutexLock lock(mu_);
  return capacity_;
}

uint64_t ReplayBuffer::total_appended() const {
  util::MutexLock lock(mu_);
  return total_;
}

void ReplayBuffer::Reset(size_t capacity,
                         std::vector<core::OutcomeRecord> records) {
  util::MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  records_.assign(std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  while (records_.size() > capacity_) records_.pop_front();
}

// ---------------------------------------------------------------------------
// FeatureCache

FeatureCache::FeatureCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool FeatureCache::Lookup(uint64_t fingerprint,
                          core::ScenarioFeatures* features) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *features = it->second;
  return true;
}

bool FeatureCache::Peek(uint64_t fingerprint,
                        core::ScenarioFeatures* features) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  *features = it->second;
  return true;
}

void FeatureCache::Insert(uint64_t fingerprint,
                          const core::ScenarioFeatures& features) {
  util::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(fingerprint, features);
  if (!inserted) return;  // a concurrent featurize won; values are equal
  order_.push_back(fingerprint);
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

size_t FeatureCache::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

uint64_t FeatureCache::hits() const {
  util::MutexLock lock(mu_);
  return hits_;
}

uint64_t FeatureCache::misses() const {
  util::MutexLock lock(mu_);
  return misses_;
}

std::vector<std::pair<uint64_t, core::ScenarioFeatures>>
FeatureCache::Entries() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, core::ScenarioFeatures>> entries;
  entries.reserve(order_.size());
  for (const uint64_t fingerprint : order_) {
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) entries.emplace_back(fingerprint, it->second);
  }
  return entries;
}

void FeatureCache::Reset(
    size_t capacity,
    std::vector<std::pair<uint64_t, core::ScenarioFeatures>> entries) {
  util::MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  entries_.clear();
  order_.clear();
  for (auto& [fingerprint, features] : entries) {
    if (entries_.try_emplace(fingerprint, std::move(features)).second) {
      order_.push_back(fingerprint);
    }
  }
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// StrategyRouter

StrategyRouter::StrategyRouter(RouterOptions options)
    : options_(std::move(options)),
      cache_(options_.feature_cache_capacity),
      buffer_(options_.replay_capacity) {
  auto policy = CreatePolicy(options_.policy, options_.policy_options);
  if (!policy.ok()) {
    DFS_LOG(ERROR) << "router: " << policy.status().ToString()
                   << "; falling back to the static policy";
    options_.policy = "static";
    policy = CreatePolicy(options_.policy, options_.policy_options);
  }
  policy_ = std::move(*policy);
  auto fallback = fs::StrategyIdFromString(options_.default_strategy);
  if (fallback.ok()) {
    fallback_ = *fallback;
  } else {
    DFS_LOG(ERROR) << "router: unknown default strategy '"
                   << options_.default_strategy << "'; using SFFS(NR)";
    options_.default_strategy = "SFFS(NR)";
    fallback_ = fs::StrategyId::kSffs;
  }
  refit_thread_ = std::thread([this] { RefitLoop(); });
}

StrategyRouter::~StrategyRouter() {
  {
    util::MutexLock lock(refit_mu_);
    stop_ = true;
  }
  refit_cv_.NotifyOne();
  if (refit_thread_.joinable()) refit_thread_.join();
}

uint64_t StrategyRouter::DecisionSeed(uint64_t root_seed, uint64_t sequence) {
  return SplitMix64(root_seed ^ SplitMix64(sequence + 1));
}

RouteDecision StrategyRouter::DeriveDecision(
    const RouterPolicy& policy,
    const std::shared_ptr<const core::DfsOptimizer>& optimizer,
    const RouterOptions& options, fs::StrategyId fallback,
    const core::ScenarioFeatures* features, uint64_t decision_seed) const {
  RouteDecision decision;
  decision.decision_seed = decision_seed;
  decision.policy = policy.name();
  decision.featurized = features != nullptr;

  RouteContext context;
  context.fallback = fallback;
  context.exploration =
      options.exploration.empty() ? fs::AllStrategies() : options.exploration;
  if (optimizer != nullptr && features != nullptr) {
    auto probabilities = optimizer->PredictProbabilities(*features);
    if (probabilities.ok()) {
      context.candidates = optimizer->strategies();
      context.probabilities = *std::move(probabilities);
    } else {
      DFS_LOG(WARNING) << "router: prediction failed: "
                       << probabilities.status().ToString();
    }
  }

  Rng rng(decision_seed);
  const PolicyChoice choice = policy.Decide(context, rng);
  decision.chosen = choice.chosen;
  decision.explored = choice.explored;
  decision.portfolio = choice.portfolio;
  decision.members = choice.members;
  decision.probabilities.reserve(context.candidates.size());
  for (fs::StrategyId id : context.candidates) {
    decision.probabilities.emplace_back(id, context.probabilities[id]);
  }
  return decision;
}

bool StrategyRouter::LookupOrFeaturize(
    uint64_t fingerprint, const data::Dataset& dataset, ml::ModelKind model,
    const constraints::ConstraintSet& constraint_set,
    const core::OptimizerOptions& optimizer_options,
    core::ScenarioFeatures* features) {
  RouterMetrics& metrics = RouterMetrics::Get();
  if (cache_.Lookup(fingerprint, features)) {
    metrics.cache_hits.Increment();
    return true;
  }
  metrics.cache_misses.Increment();
  // The landmark CV is the expensive part — outside every router lock.
  // FeaturizeScenario is deterministic, so a concurrent miss on the same
  // fingerprint computes the same values and Insert keeps the first.
  obs::ScopedTimer timer(metrics.featurize_seconds);
  auto featurized =
      core::FeaturizeScenario(dataset, model, constraint_set,
                              optimizer_options);
  if (!featurized.ok()) {
    timer.Cancel();
    DFS_LOG(WARNING) << "router: featurization failed: "
                     << featurized.status().ToString();
    return false;
  }
  *features = *std::move(featurized);
  cache_.Insert(fingerprint, *features);
  return true;
}

RouteDecision StrategyRouter::Route(
    const data::Dataset& dataset, const std::string& dataset_name,
    ml::ModelKind model, const constraints::ConstraintSet& constraint_set) {
  std::shared_ptr<const RouterPolicy> policy;
  std::shared_ptr<const core::DfsOptimizer> optimizer;
  RouterOptions options;
  fs::StrategyId fallback;
  uint64_t sequence, generation;
  {
    util::MutexLock lock(mu_);
    policy = policy_;
    optimizer = optimizer_;
    options = options_;
    fallback = fallback_;
    generation = generation_;
    sequence = sequence_++;
  }
  const uint64_t fingerprint = core::ScenarioFingerprint(
      dataset_name, dataset.num_rows(), dataset.num_features(), model,
      constraint_set);

  // Featurize only when someone can use the features: a loaded optimizer
  // (probabilities) or the online loop (training data). A static router
  // with learning off routes in microseconds.
  core::ScenarioFeatures features;
  bool featurized = false;
  if (optimizer != nullptr || options.refit_every > 0) {
    featurized = LookupOrFeaturize(fingerprint, dataset, model,
                                   constraint_set, options.optimizer_options,
                                   &features);
  }

  RouteDecision decision =
      DeriveDecision(*policy, optimizer, options, fallback,
                     featurized ? &features : nullptr,
                     DecisionSeed(options.seed, sequence));
  decision.sequence = sequence;
  decision.generation = generation;
  decision.fingerprint = fingerprint;
  if (featurized) decision.features = features;

  RecordDecision(decision);
  EmitTrace(decision);
  return decision;
}

void StrategyRouter::RecordDecision(const RouteDecision& decision) {
  RouterMetrics& metrics = RouterMetrics::Get();
  metrics.decisions.Increment();
  if (decision.explored) metrics.explored.Increment();
  if (decision.portfolio) metrics.portfolio.Increment();
  util::MutexLock lock(stats_mu_);
  if (decision.explored) ++explored_total_;
  if (decision.portfolio) ++portfolio_total_;
  ++routes_[decision.chosen];
  // Per-strategy route counters are a dynamic family ("router.routes.<label>"
  // in the registry); the reference is cached per strategy so the hot path
  // registers each name once.
  obs::Counter*& counter = route_counters_[decision.chosen];
  if (counter == nullptr) {
    counter = &obs::MetricsRegistry::Global().counter(
        "router.routes." +
        obs::SanitizeLabel(fs::StrategyIdToString(decision.chosen)));
  }
  counter->Increment();
}

void StrategyRouter::EmitTrace(const RouteDecision& decision) const {
  if (!obs::TraceWriter::enabled()) return;
  obs::TraceSpan span("router.decision", DecisionDetail(decision));
}

void StrategyRouter::ReportOutcome(const RouteDecision& decision,
                                   fs::StrategyId ran, bool success) {
  // No features → nothing to train on; portfolio → the outcome is the
  // race's, not attributable to one member.
  if (!decision.featurized || decision.portfolio) return;
  RouterMetrics& metrics = RouterMetrics::Get();
  buffer_.Append({decision.fingerprint, decision.features, ran, success});
  metrics.outcomes.Increment();
  metrics.buffer_depth.Set(static_cast<int64_t>(buffer_.depth()));

  int refit_every;
  {
    util::MutexLock lock(mu_);
    refit_every = options_.refit_every;
  }
  if (refit_every <= 0) return;
  bool fire = false;
  {
    util::MutexLock lock(refit_mu_);
    if (++outcomes_since_refit_ >= refit_every) {
      outcomes_since_refit_ = 0;
      refit_pending_ = true;
      fire = true;
    }
  }
  if (fire) refit_cv_.NotifyOne();
}

void StrategyRouter::InstallOptimizer(core::DfsOptimizer optimizer) {
  util::MutexLock lock(mu_);
  optimizer_ =
      std::make_shared<const core::DfsOptimizer>(std::move(optimizer));
  ++generation_;
  RouterMetrics::Get().generation.Set(static_cast<int64_t>(generation_));
}

void StrategyRouter::RefitLoop() {
  while (true) {
    {
      util::MutexLock lock(refit_mu_);
      while (!refit_pending_ && !stop_) refit_cv_.Wait(lock);
      if (stop_) return;
      refit_pending_ = false;
      refit_inflight_ = true;
    }
    const bool trained = DoRefit();
    {
      util::MutexLock lock(refit_mu_);
      refit_inflight_ = false;
      if (trained) ++refits_done_;
    }
    // Every attempt (even a failed one) wakes waiters: WaitForRefits
    // re-checks its count and DrainRefits re-checks quiescence.
    refit_done_cv_.NotifyAll();
  }
}

bool StrategyRouter::DoRefit() {
  RouterMetrics& metrics = RouterMetrics::Get();
  const std::vector<core::OutcomeRecord> records = buffer_.Records();
  if (records.empty()) return false;
  std::set<fs::StrategyId> seen;
  for (const core::OutcomeRecord& record : records) {
    seen.insert(record.strategy);
  }
  // Train only over strategies with observed outcomes: Train scores a
  // strategy missing from an example as a failure, so including never-run
  // strategies would poison them with fabricated negatives.
  const std::vector<fs::StrategyId> strategies(seen.begin(), seen.end());
  const std::vector<core::DfsOptimizer::TrainingExample> examples =
      core::ExamplesFromOutcomeRecords(records);

  core::OptimizerOptions optimizer_options;
  {
    util::MutexLock lock(mu_);
    optimizer_options = options_.optimizer_options;
  }
  obs::ScopedTimer timer(metrics.refit_seconds, &metrics.refits);
  core::DfsOptimizer optimizer(optimizer_options);
  if (Status status = optimizer.Train(examples, strategies); !status.ok()) {
    timer.Cancel();
    DFS_LOG(WARNING) << "router: refit failed: " << status.ToString();
    return false;
  }
  {
    util::MutexLock lock(mu_);
    optimizer_ =
        std::make_shared<const core::DfsOptimizer>(std::move(optimizer));
    ++generation_;
    metrics.generation.Set(static_cast<int64_t>(generation_));
  }
  return true;
}

RouterStats StrategyRouter::Stats() const {
  RouterStats stats;
  {
    util::MutexLock lock(mu_);
    stats.policy = policy_->name();
    stats.decisions = sequence_;
    stats.generation = generation_;
    stats.optimizer_loaded = optimizer_ != nullptr;
  }
  {
    util::MutexLock lock(stats_mu_);
    stats.explored = explored_total_;
    stats.portfolio = portfolio_total_;
    for (const auto& [id, count] : routes_) {
      stats.routes[fs::StrategyIdToString(id)] = count;
    }
  }
  {
    util::MutexLock lock(refit_mu_);
    stats.refits = refits_done_;
  }
  stats.outcomes = buffer_.total_appended();
  stats.buffer_depth = buffer_.depth();
  stats.buffer_capacity = buffer_.capacity();
  stats.feature_cache_size = cache_.size();
  stats.feature_cache_hits = cache_.hits();
  stats.feature_cache_misses = cache_.misses();
  return stats;
}

bool StrategyRouter::WaitForRefits(uint64_t count,
                                   double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  util::MutexLock lock(refit_mu_);
  while (refits_done_ < count) {
    if (!refit_done_cv_.WaitUntil(lock, deadline)) {
      return refits_done_ >= count;
    }
  }
  return true;
}

bool StrategyRouter::DrainRefits(double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  util::MutexLock lock(refit_mu_);
  while (refit_pending_ || refit_inflight_) {
    if (!refit_done_cv_.WaitUntil(lock, deadline)) {
      return !refit_pending_ && !refit_inflight_;
    }
  }
  return true;
}

StatusOr<RouteDecision> StrategyRouter::ReplayDecision(
    uint64_t fingerprint, uint64_t decision_seed, bool featurized) const {
  std::shared_ptr<const RouterPolicy> policy;
  std::shared_ptr<const core::DfsOptimizer> optimizer;
  RouterOptions options;
  fs::StrategyId fallback;
  uint64_t generation;
  {
    util::MutexLock lock(mu_);
    policy = policy_;
    optimizer = optimizer_;
    options = options_;
    fallback = fallback_;
    generation = generation_;
  }
  core::ScenarioFeatures features;
  const core::ScenarioFeatures* features_ptr = nullptr;
  if (featurized) {
    // Peek, not Lookup: replay must not perturb the cache statistics.
    if (!cache_.Peek(fingerprint, &features)) {
      return NotFoundError("fingerprint " + std::to_string(fingerprint) +
                           " is not in the snapshot's feature cache");
    }
    features_ptr = &features;
  }
  RouteDecision decision = DeriveDecision(*policy, optimizer, options,
                                          fallback, features_ptr,
                                          decision_seed);
  decision.fingerprint = fingerprint;
  decision.generation = generation;
  return decision;
}

RouterOptions StrategyRouter::options() const {
  util::MutexLock lock(mu_);
  return options_;
}

// ---------------------------------------------------------------------------
// Snapshot / restore

StatusOr<std::string> StrategyRouter::Serialize() const {
  RouterOptions options;
  std::shared_ptr<const core::DfsOptimizer> optimizer;
  uint64_t sequence, generation;
  {
    util::MutexLock lock(mu_);
    options = options_;
    optimizer = optimizer_;
    sequence = sequence_;
    generation = generation_;
  }
  std::ostringstream out;
  out << "dfs-router v1\n";
  out << "policy " << options.policy << "\n";
  out << "epsilon " << FormatDouble(options.policy_options.epsilon) << "\n";
  out << "confidence_threshold "
      << FormatDouble(options.policy_options.confidence_threshold) << "\n";
  out << "portfolio_top_k " << options.policy_options.portfolio_top_k << "\n";
  out << "refit_every " << options.refit_every << "\n";
  out << "replay_capacity " << options.replay_capacity << "\n";
  out << "feature_cache_capacity " << options.feature_cache_capacity << "\n";
  out << "seed " << options.seed << "\n";
  out << "sequence " << sequence << "\n";
  out << "generation " << generation << "\n";
  out << "default_strategy " << options.default_strategy << "\n";
  out << "exploration";
  for (fs::StrategyId id : options.exploration) {
    out << " " << static_cast<int>(id);
  }
  out << "\n";

  const auto entries = cache_.Entries();
  out << "cache " << entries.size() << "\n";
  for (const auto& [fingerprint, features] : entries) {
    out << fingerprint << " " << features.values.size();
    for (const double value : features.values) {
      out << " " << FormatDouble(value);
    }
    out << "\n";
  }

  const auto records = buffer_.Records();
  out << "buffer " << records.size() << "\n";
  for (const core::OutcomeRecord& record : records) {
    out << record.fingerprint << " " << static_cast<int>(record.strategy)
        << " " << (record.success ? 1 : 0) << " "
        << record.features.values.size();
    for (const double value : record.features.values) {
      out << " " << FormatDouble(value);
    }
    out << "\n";
  }

  if (optimizer != nullptr) {
    DFS_ASSIGN_OR_RETURN(const std::string blob, optimizer->Serialize());
    out << "optimizer " << blob.size() << "\n" << blob << "\n";
  } else {
    out << "optimizer none\n";
  }
  return out.str();
}

Status StrategyRouter::RestoreState(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "dfs-router v1") {
    return InvalidArgumentError("not a serialized dfs::router snapshot");
  }
  RouterOptions options;
  options.exploration.clear();
  uint64_t sequence = 0, generation = 0;
  std::vector<std::pair<uint64_t, core::ScenarioFeatures>> cache_entries;
  std::vector<core::OutcomeRecord> records;
  std::shared_ptr<const core::DfsOptimizer> optimizer;

  const auto corrupt = [](const std::string& what) {
    return InvalidArgumentError("corrupt router snapshot: " + what);
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "policy") {
      fields >> options.policy;
    } else if (key == "epsilon") {
      fields >> options.policy_options.epsilon;
    } else if (key == "confidence_threshold") {
      fields >> options.policy_options.confidence_threshold;
    } else if (key == "portfolio_top_k") {
      fields >> options.policy_options.portfolio_top_k;
    } else if (key == "refit_every") {
      fields >> options.refit_every;
    } else if (key == "replay_capacity") {
      fields >> options.replay_capacity;
    } else if (key == "feature_cache_capacity") {
      fields >> options.feature_cache_capacity;
    } else if (key == "seed") {
      fields >> options.seed;
    } else if (key == "sequence") {
      fields >> sequence;
    } else if (key == "generation") {
      fields >> generation;
    } else if (key == "default_strategy") {
      std::string rest;
      std::getline(fields, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      options.default_strategy = rest;
    } else if (key == "exploration") {
      int index;
      while (fields >> index) {
        DFS_ASSIGN_OR_RETURN(fs::StrategyId id, StrategyFromIndex(index));
        options.exploration.push_back(id);
      }
      continue;  // an empty exploration list leaves `fields` failed
    } else if (key == "cache") {
      size_t count = 0;
      fields >> count;
      if (!fields || count > (1u << 20)) return corrupt("cache count");
      for (size_t i = 0; i < count; ++i) {
        if (!std::getline(in, line)) return corrupt("truncated cache");
        std::istringstream entry(line);
        uint64_t fingerprint = 0;
        size_t dims = 0;
        entry >> fingerprint >> dims;
        if (!entry || dims > 4096) return corrupt("cache entry");
        core::ScenarioFeatures features;
        features.values.resize(dims);
        for (size_t d = 0; d < dims; ++d) entry >> features.values[d];
        if (!entry) return corrupt("cache entry values");
        cache_entries.emplace_back(fingerprint, std::move(features));
      }
    } else if (key == "buffer") {
      size_t count = 0;
      fields >> count;
      if (!fields || count > (1u << 20)) return corrupt("buffer count");
      for (size_t i = 0; i < count; ++i) {
        if (!std::getline(in, line)) return corrupt("truncated buffer");
        std::istringstream entry(line);
        uint64_t fingerprint = 0;
        int strategy = 0, success = 0;
        size_t dims = 0;
        entry >> fingerprint >> strategy >> success >> dims;
        if (!entry || dims > 4096) return corrupt("buffer record");
        core::OutcomeRecord record;
        record.fingerprint = fingerprint;
        DFS_ASSIGN_OR_RETURN(record.strategy, StrategyFromIndex(strategy));
        record.success = success != 0;
        record.features.values.resize(dims);
        for (size_t d = 0; d < dims; ++d) entry >> record.features.values[d];
        if (!entry) return corrupt("buffer record values");
        records.push_back(std::move(record));
      }
    } else if (key == "optimizer") {
      std::string token;
      fields >> token;
      if (token == "none") {
        optimizer = nullptr;
      } else {
        size_t bytes = 0;
        std::istringstream size_in(token);
        size_in >> bytes;
        if (!size_in || bytes > (1u << 28)) return corrupt("optimizer size");
        std::string blob(bytes, '\0');
        in.read(blob.data(), static_cast<std::streamsize>(bytes));
        if (!in) return corrupt("truncated optimizer blob");
        std::getline(in, line);  // consume the blob's trailing newline
        DFS_ASSIGN_OR_RETURN(core::DfsOptimizer deserialized,
                             core::DfsOptimizer::Deserialize(blob));
        optimizer = std::make_shared<const core::DfsOptimizer>(
            std::move(deserialized));
      }
    } else {
      return corrupt("unknown key '" + key + "'");
    }
    if (key != "policy" && key != "default_strategy" && !fields &&
        key != "cache" && key != "buffer" && key != "optimizer") {
      return corrupt("unreadable value for '" + key + "'");
    }
  }

  DFS_ASSIGN_OR_RETURN(auto policy,
                       CreatePolicy(options.policy, options.policy_options));
  DFS_ASSIGN_OR_RETURN(fs::StrategyId fallback,
                       fs::StrategyIdFromString(options.default_strategy));
  {
    util::MutexLock lock(mu_);
    // optimizer_options is deployment config, not snapshot state.
    options.optimizer_options = options_.optimizer_options;
    options_ = std::move(options);
    policy_ = std::move(policy);
    fallback_ = fallback;
    optimizer_ = std::move(optimizer);
    sequence_ = sequence;
    generation_ = generation;
  }
  cache_.Reset(options_.feature_cache_capacity, std::move(cache_entries));
  buffer_.Reset(options_.replay_capacity, std::move(records));
  return OkStatus();
}

Status StrategyRouter::SaveToFile(const std::string& path) const {
  DFS_ASSIGN_OR_RETURN(const std::string text, Serialize());
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot write file: " + path);
  out << text;
  return OkStatus();
}

Status StrategyRouter::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return RestoreState(buffer.str());
}

}  // namespace dfs::router
