#ifndef DFS_ROUTER_REPLAY_H_
#define DFS_ROUTER_REPLAY_H_

#include <string>
#include <vector>

#include "router/router.h"
#include "util/statusor.h"

namespace dfs::router {

/// The canonical trace encoding of one routing decision — the byte string
/// that the replay contract (DESIGN.md §2g) compares. Emitted by the
/// router as the detail of every "router.decision" span and re-derived by
/// VerifyTrace from the snapshot:
///
///   seq=3 gen=1 fp=1234 seed=99 policy=epsilon-greedy feat=1 explored=0
///   portfolio=0 chosen=15 members=- probs=14:0.25,15:0.8125
///
/// Strategy ids are their fs::StrategyId integer values; probabilities are
/// %.17g (exact round-trip); empty member/probability lists are "-".
std::string DecisionDetail(const RouteDecision& decision);

/// The replay-relevant fields parsed back out of a DecisionDetail string.
struct TracedDecision {
  uint64_t sequence = 0;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
  uint64_t decision_seed = 0;
  bool featurized = false;
};

/// Parses the seq/gen/fp/seed/feat fields of one "router.decision" detail.
StatusOr<TracedDecision> ParseDecisionDetail(const std::string& detail);

/// fs::StrategyId from its integer wire index (range-checked, so corrupt
/// snapshots and traces fail loudly instead of forging an enum).
StatusOr<fs::StrategyId> StrategyFromIndex(int index);

struct ReplayReport {
  uint64_t checked = 0;     ///< same-generation decisions re-derived
  uint64_t skipped = 0;     ///< decisions from other optimizer generations
  uint64_t mismatched = 0;  ///< re-derivations that were not byte-identical
  std::vector<std::string> mismatches;  ///< first few diffs, for diagnostics
};

/// Re-derives every "router.decision" record of `trace_jsonl` (the raw
/// contents of a TraceWriter file) against `router` — typically a fresh
/// router restored from a snapshot — and byte-compares each re-derived
/// DecisionDetail with the traced one. Decisions from optimizer
/// generations other than the snapshot's are counted as skipped: the
/// snapshot carries exactly one optimizer, so only its generation is
/// replayable.
StatusOr<ReplayReport> VerifyTrace(const StrategyRouter& router,
                                   const std::string& trace_jsonl);

/// Hermetic end-to-end exercise of the replay contract (the
/// router.replay_selfcheck ctest entry): for each policy, routes synthetic
/// traffic with the online loop enabled, snapshots the router, restores it
/// into a fresh one, and requires the trace to replay byte-identically.
/// Temporary trace/snapshot files are created as `scratch_prefix` + suffix
/// and removed on success.
Status ReplaySelfCheck(const std::string& scratch_prefix);

}  // namespace dfs::router

#endif  // DFS_ROUTER_REPLAY_H_
