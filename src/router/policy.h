#ifndef DFS_ROUTER_POLICY_H_
#define DFS_ROUTER_POLICY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/registry.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace dfs::router {

/// Tunables shared by the routing policies. Every field is part of the
/// router snapshot, so a restored router decides identically.
struct PolicyOptions {
  /// EpsilonGreedyPolicy: probability of exploring instead of exploiting.
  double epsilon = 0.1;
  /// ConfidencePolicy: argmax only when the top probability clears this.
  double confidence_threshold = 0.55;
  /// ConfidencePolicy: portfolio width of the low-confidence fallback.
  int portfolio_top_k = 3;
};

/// Everything a policy may look at when routing one "auto" job.
struct RouteContext {
  /// The optimizer's strategy set in training order; empty when no trained
  /// optimizer is installed or the scenario could not be featurized.
  std::vector<fs::StrategyId> candidates;
  /// P(success) per candidate (DfsOptimizer::PredictProbabilities).
  std::map<fs::StrategyId, double> probabilities;
  /// Strategies an exploring policy may pick from even before the
  /// optimizer has trained (cold-start exploration support).
  std::vector<fs::StrategyId> exploration;
  /// Resolution of "auto" when no probabilities are available.
  fs::StrategyId fallback = fs::StrategyId::kSffs;
};

/// What a policy decided for one job.
struct PolicyChoice {
  fs::StrategyId chosen = fs::StrategyId::kSffs;
  /// EpsilonGreedyPolicy picked at random instead of by argmax.
  bool explored = false;
  /// ConfidencePolicy fell back to racing `members` on one shared budget
  /// (fs::TimeSlicedPortfolio); `chosen` is then the best-ranked member.
  bool portfolio = false;
  std::vector<fs::StrategyId> members;  ///< portfolio members, best first
};

/// Strategy-selection policy of the router. Implementations are immutable
/// and stateless across decisions: all randomness comes from `rng`, which
/// the router seeds with the per-decision seed — re-running Decide with the
/// same context and seed reproduces the choice exactly (replay contract,
/// DESIGN.md §2g).
class RouterPolicy {
 public:
  virtual ~RouterPolicy() = default;

  /// Wire/snapshot name: "static", "confidence", "epsilon-greedy".
  virtual std::string name() const = 0;

  virtual PolicyChoice Decide(const RouteContext& context, Rng& rng) const = 0;
};

/// Today's serving behavior: the optimizer argmax when probabilities are
/// available (bit-for-bit DfsOptimizer::Choose — same iteration order, same
/// strictly-greater tie-break), else the configured fallback strategy.
class StaticPolicy : public RouterPolicy {
 public:
  std::string name() const override { return "static"; }
  PolicyChoice Decide(const RouteContext& context, Rng& rng) const override;
};

/// Argmax when the top probability clears `confidence_threshold`; otherwise
/// races the top-k strategies as a time-sliced portfolio on the job's one
/// search budget instead of betting everything on a shaky prediction.
class ConfidencePolicy : public RouterPolicy {
 public:
  explicit ConfidencePolicy(const PolicyOptions& options)
      : options_(options) {}

  std::string name() const override { return "confidence"; }
  PolicyChoice Decide(const RouteContext& context, Rng& rng) const override;

 private:
  PolicyOptions options_;
};

/// With probability epsilon, explores a uniform pick from the exploration
/// set (so an untrained router gathers outcomes for every strategy);
/// otherwise exploits the argmax like StaticPolicy.
class EpsilonGreedyPolicy : public RouterPolicy {
 public:
  explicit EpsilonGreedyPolicy(const PolicyOptions& options)
      : options_(options) {}

  std::string name() const override { return "epsilon-greedy"; }
  PolicyChoice Decide(const RouteContext& context, Rng& rng) const override;

 private:
  PolicyOptions options_;
};

/// Instantiates a policy by wire name (InvalidArgument on unknown names).
StatusOr<std::unique_ptr<const RouterPolicy>> CreatePolicy(
    const std::string& name, const PolicyOptions& options);

}  // namespace dfs::router

#endif  // DFS_ROUTER_POLICY_H_
