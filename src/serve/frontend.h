#ifndef DFS_SERVE_FRONTEND_H_
#define DFS_SERVE_FRONTEND_H_

#include <string>

#include "serve/server.h"
#include "serve/tcp.h"

namespace dfs::serve {

/// Outcome of handling one protocol line.
struct DispatchResult {
  /// Response line (always a flat JSON object, no trailing newline).
  std::string response;
  /// The client asked the daemon to shut down.
  bool shutdown_requested = false;
};

/// Maps one request line onto DfsServer calls and renders the response.
/// Never throws and never returns an empty response: protocol errors come
/// back as {"ok":false,"error":...} lines.
DispatchResult Dispatch(DfsServer& server, const std::string& line);

/// Serves one connected client: reads lines, dispatches each against
/// `server`, writes responses. Returns true if the client requested daemon
/// shutdown (after acknowledging it). Blocks until the peer disconnects or
/// shutdown is requested; intended to run on a per-connection thread.
bool ServeConnection(DfsServer& server, LineChannel& channel);

}  // namespace dfs::serve

#endif  // DFS_SERVE_FRONTEND_H_
