#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dfs::serve {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(int port, bool loopback_only) {
  if (fd_ >= 0) return FailedPreconditionError("already listening");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return ErrnoError("socket");
  const int enable = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr =
      loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0) {
    const Status status = ErrnoError("bind");
    Close();
    return status;
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const Status status = ErrnoError("listen");
    Close();
    return status;
  }
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return OkStatus();
}

StatusOr<int> TcpListener::Accept() const {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EBADF || errno == EINVAL) {
      return CancelledError("listener closed");
    }
    return ErrnoError("accept");
  }
  return client;
}

void TcpListener::InterruptAccept() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<int> TcpConnect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results);
  if (rc != 0 || results == nullptr) {
    return InternalError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Status last_error = InternalError("no addresses for " + host);
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    const int fd =
        ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      last_error = ErrnoError("socket");
      continue;
    }
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    last_error = ErrnoError("connect");
    ::close(fd);
  }
  ::freeaddrinfo(results);
  return last_error;
}

LineChannel::~LineChannel() { Close(); }

StatusOr<std::string> LineChannel::ReadLine() {
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("read");
    }
    if (n == 0) {
      if (!buffer_.empty()) {  // final unterminated line
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return NotFoundError("connection closed");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    if (buffer_.size() > kMaxLineBytes) {
      buffer_.clear();
      return ResourceExhaustedError("line exceeds " +
                                    std::to_string(kMaxLineBytes) + " bytes");
    }
  }
}

Status LineChannel::WriteLine(const std::string& line) {
  std::string payload = line;
  payload.push_back('\n');
  size_t written = 0;
  while (written < payload.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE, not deliver SIGPIPE and kill the whole daemon.
    const ssize_t n = ::send(fd_, payload.data() + written,
                             payload.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    written += static_cast<size_t>(n);
  }
  return OkStatus();
}

void LineChannel::ShutdownSocket() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void LineChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dfs::serve
