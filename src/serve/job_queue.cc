#include "serve/job_queue.h"

#include <algorithm>

namespace dfs::serve {

const char* SubmitOutcomeName(SubmitOutcome outcome) {
  switch (outcome) {
    case SubmitOutcome::kAccepted:
      return "ACCEPTED";
    case SubmitOutcome::kQueueFull:
      return "QUEUE_FULL";
    case SubmitOutcome::kClosed:
      return "CLOSED";
  }
  return "UNKNOWN";
}

JobQueue::JobQueue(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

SubmitOutcome JobQueue::TrySubmit(std::shared_ptr<Job> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return SubmitOutcome::kClosed;
    if (entries_.size() >= capacity_) return SubmitOutcome::kQueueFull;
    const OrderKey key{job->request().priority, next_sequence_++};
    key_by_id_.emplace(job->id(), key);
    entries_.emplace(key, std::move(job));
  }
  available_.notify_one();
  return SubmitOutcome::kAccepted;
}

std::shared_ptr<Job> JobQueue::PopBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait(lock, [this] { return closed_ || !entries_.empty(); });
  if (entries_.empty()) return nullptr;  // closed and drained
  auto it = entries_.begin();
  std::shared_ptr<Job> job = std::move(it->second);
  key_by_id_.erase(job->id());
  entries_.erase(it);
  return job;
}

bool JobQueue::Remove(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = key_by_id_.find(id);
  if (it == key_by_id_.end()) return false;
  entries_.erase(it->second);
  key_by_id_.erase(it);
  return true;
}

void JobQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  available_.notify_all();
}

size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dfs::serve
