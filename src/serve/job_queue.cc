#include "serve/job_queue.h"

#include <algorithm>

namespace dfs::serve {

const char* SubmitOutcomeName(SubmitOutcome outcome) {
  switch (outcome) {
    case SubmitOutcome::kAccepted:
      return "ACCEPTED";
    case SubmitOutcome::kQueueFull:
      return "QUEUE_FULL";
    case SubmitOutcome::kClosed:
      return "CLOSED";
  }
  return "UNKNOWN";
}

JobQueue::JobQueue(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

SubmitOutcome JobQueue::TrySubmit(std::shared_ptr<Job> job) {
  {
    util::MutexLock lock(mu_);
    if (closed_) return SubmitOutcome::kClosed;
    if (entries_.size() >= capacity_) return SubmitOutcome::kQueueFull;
    const OrderKey key{job->request().priority, next_sequence_++};
    key_by_id_.emplace(job->id(), key);
    entries_.emplace(key, std::move(job));
  }
  available_.NotifyOne();
  return SubmitOutcome::kAccepted;
}

std::shared_ptr<Job> JobQueue::PopBlocking() {
  util::MutexLock lock(mu_);
  while (!closed_ && entries_.empty()) available_.Wait(lock);
  if (entries_.empty()) return nullptr;  // closed and drained
  auto it = entries_.begin();
  std::shared_ptr<Job> job = std::move(it->second);
  key_by_id_.erase(job->id());
  entries_.erase(it);
  return job;
}

bool JobQueue::Remove(JobId id) {
  util::MutexLock lock(mu_);
  auto it = key_by_id_.find(id);
  if (it == key_by_id_.end()) return false;
  entries_.erase(it->second);
  key_by_id_.erase(it);
  return true;
}

void JobQueue::Close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  available_.NotifyAll();
}

size_t JobQueue::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

bool JobQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

}  // namespace dfs::serve
