#include "serve/job.h"

namespace dfs::serve {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
    case JobState::kTimedOut:
      return "TIMED_OUT";
  }
  return "UNKNOWN";
}

bool IsTerminalState(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

bool IsValidTransition(JobState from, JobState to) {
  switch (from) {
    case JobState::kQueued:
      return to == JobState::kRunning || to == JobState::kCancelled;
    case JobState::kRunning:
      return IsTerminalState(to);
    default:
      return false;  // terminal states are final
  }
}

Job::Job(JobId id, JobRequest request)
    : id_(id),
      request_(std::move(request)),
      stop_token_(std::make_shared<std::atomic<bool>>(false)),
      submitted_at_(Clock::now()) {}

JobState Job::state() const {
  util::MutexLock lock(mu_);
  return state_;
}

bool Job::TryTransition(JobState to) {
  util::MutexLock lock(mu_);
  if (!IsValidTransition(state_, to)) return false;
  state_ = to;
  const Clock::time_point now = Clock::now();
  if (to == JobState::kRunning) started_at_ = now;
  if (IsTerminalState(to)) {
    // A queued job cancelled before running never started.
    if (started_at_ == Clock::time_point{}) started_at_ = now;
    terminal_at_ = now;
  }
  return true;
}

void Job::RequestCancel() {
  stop_token_->store(true, std::memory_order_relaxed);
}

bool Job::cancel_requested() const {
  return stop_token_->load(std::memory_order_relaxed);
}

void Job::set_result(JobResult result) {
  util::MutexLock lock(mu_);
  result_ = std::move(result);
}

JobResult Job::result() const {
  util::MutexLock lock(mu_);
  return result_;
}

void Job::set_error(std::string error) {
  util::MutexLock lock(mu_);
  error_ = std::move(error);
}

std::string Job::error() const {
  util::MutexLock lock(mu_);
  return error_;
}

void Job::set_route(router::RouteDecision route) {
  util::MutexLock lock(mu_);
  route_ = std::move(route);
}

std::optional<router::RouteDecision> Job::route() const {
  util::MutexLock lock(mu_);
  return route_;
}

double Job::queue_seconds() const {
  util::MutexLock lock(mu_);
  const Clock::time_point end =
      started_at_ == Clock::time_point{} ? Clock::now() : started_at_;
  return std::chrono::duration<double>(end - submitted_at_).count();
}

double Job::run_seconds() const {
  util::MutexLock lock(mu_);
  if (started_at_ == Clock::time_point{}) return 0.0;
  const Clock::time_point end =
      terminal_at_ == Clock::time_point{} ? Clock::now() : terminal_at_;
  return std::chrono::duration<double>(end - started_at_).count();
}

double Job::seconds_since_terminal() const {
  util::MutexLock lock(mu_);
  if (terminal_at_ == Clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(Clock::now() - terminal_at_).count();
}

}  // namespace dfs::serve
