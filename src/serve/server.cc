#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "core/engine.h"
#include "core/scenario.h"
#include "data/benchmark_suite.h"
#include "data/synthetic.h"
#include "fs/feature_subset.h"
#include "fs/portfolio.h"
#include "fs/registry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dfs::serve {
namespace {

/// dfs::obs instruments of the serve fleet. Counters mirror ServerStats
/// (same reconcile-at-quiescence contract); the gauges and the job-latency
/// histograms are what ServerStats cannot answer: instantaneous depth and
/// the shape of the end-to-end distribution, queryable over the wire via
/// the "metrics" verb.
struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Counter& timed_out;
  obs::Gauge& queue_depth;
  obs::Gauge& running;
  obs::Histogram& queue_seconds;
  obs::Histogram& run_seconds;
  obs::Histogram& job_seconds;  ///< end-to-end: submit -> terminal

  static ServeMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static ServeMetrics* metrics = new ServeMetrics{
        registry.counter("serve.jobs.accepted"),
        registry.counter("serve.jobs.rejected"),
        registry.counter("serve.jobs.completed"),
        registry.counter("serve.jobs.failed"),
        registry.counter("serve.jobs.cancelled"),
        registry.counter("serve.jobs.timed_out"),
        registry.gauge("serve.queue_depth"),
        registry.gauge("serve.running"),
        registry.histogram("serve.queue_seconds"),
        registry.histogram("serve.run_seconds"),
        registry.histogram("serve.job_seconds"),
    };
    return *metrics;
  }
};

/// Fingerprint of everything that determines a wrapper evaluation's
/// outcome for a job: the scenario identity (dataset name/shape, model,
/// constraint set) plus the engine options ExecuteJob derives from the
/// request (seed drives both the split and evaluation-side randomness).
/// Jobs with equal fingerprints compute byte-identical outcomes per mask
/// (DESIGN.md §2d), which is what makes sharing an L2 cache across them
/// sound. kSuiteVersion is deliberately NOT mixed in — the spill header
/// carries it separately so stale spills are rejected with the right
/// message (docs/CACHE.md).
uint64_t JobContextFingerprint(const JobRequest& request,
                               const data::Dataset& dataset) {
  uint64_t fp = core::ScenarioFingerprint(
      request.dataset, dataset.num_rows(), dataset.num_features(),
      request.model, request.constraint_set);
  const auto mix = [&fp](uint64_t value) {
    fp ^= value + 0x9E3779B97F4A7C15ULL + (fp << 6) + (fp >> 2);
  };
  mix(request.seed);
  mix(request.use_hpo ? 1 : 0);
  mix(request.maximize_utility ? 1 : 0);
  return fp;
}

}  // namespace

DfsServer::DfsServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.router.default_strategy = options_.default_auto_strategy;
  router_ = std::make_unique<router::StrategyRouter>(options_.router);
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DfsServer::~DfsServer() { Shutdown(/*cancel_pending=*/true); }

void DfsServer::RegisterDataset(const std::string& name,
                                data::Dataset dataset) {
  util::MutexLock lock(datasets_mu_);
  datasets_[name] = std::make_shared<const data::Dataset>(std::move(dataset));
}

void DfsServer::SetOptimizer(core::DfsOptimizer optimizer) {
  router_->InstallOptimizer(std::move(optimizer));
}

StatusOr<JobId> DfsServer::Submit(const JobRequest& request) {
  if (!accepting_.load()) {
    return FailedPreconditionError("server is shutting down");
  }
  if (request.dataset.empty()) {
    return InvalidArgumentError("job request needs a dataset name");
  }
  // Reject unknown strategy names at the door (cheap client-error feedback;
  // these are not backpressure rejections and count toward neither
  // `accepted` nor `rejected`).
  if (request.strategy != "auto") {
    DFS_RETURN_IF_ERROR(
        fs::StrategyIdFromString(request.strategy).status());
  }

  const JobId id = next_id_.fetch_add(1);
  auto job = std::make_shared<Job>(id, request);
  if (request.strategy == "auto") {
    // Route before enqueueing so the worker runs exactly what was decided
    // and the submit response can explain the decision. Dataset-resolution
    // failures leave the job unrouted; the worker fails it with the same
    // error. A subsequent queue-full rejection still counts the decision
    // (no outcome ever arrives for it).
    auto dataset = ResolveDataset(request.dataset);
    if (dataset.ok()) {
      job->set_route(router_->Route(**dataset, request.dataset, request.model,
                                    request.constraint_set));
    }
  }
  {
    util::MutexLock lock(jobs_mu_);
    SweepLocked();
    jobs_.emplace(id, job);
  }
  switch (queue_.TrySubmit(job)) {
    case SubmitOutcome::kAccepted: {
      ServeMetrics::Get().accepted.Increment();
      ServeMetrics::Get().queue_depth.Set(
          static_cast<int64_t>(queue_.size()));
      util::MutexLock lock(stats_mu_);
      ++stats_.accepted;
      return id;
    }
    case SubmitOutcome::kQueueFull: {
      {
        util::MutexLock lock(jobs_mu_);
        jobs_.erase(id);
      }
      ServeMetrics::Get().rejected.Increment();
      util::MutexLock lock(stats_mu_);
      ++stats_.rejected;
      return ResourceExhaustedError(
          "queue full (capacity " + std::to_string(queue_.capacity()) +
          "): backpressure, retry later");
    }
    case SubmitOutcome::kClosed:
      break;
  }
  util::MutexLock lock(jobs_mu_);
  jobs_.erase(id);
  return FailedPreconditionError("server is shutting down");
}

StatusOr<JobStatusView> DfsServer::GetStatus(JobId id) const {
  std::shared_ptr<Job> job;
  {
    util::MutexLock lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return NotFoundError("unknown or evicted job " + std::to_string(id));
    }
    job = it->second;
  }
  JobStatusView view;
  view.id = job->id();
  view.state = job->state();
  view.priority = job->request().priority;
  view.strategy = job->request().strategy;
  view.error = job->error();
  view.queue_seconds = job->queue_seconds();
  view.run_seconds = job->run_seconds();
  return view;
}

StatusOr<JobResult> DfsServer::GetResult(JobId id) const {
  std::shared_ptr<Job> job;
  {
    util::MutexLock lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return NotFoundError("unknown or evicted job " + std::to_string(id));
    }
    job = it->second;
  }
  switch (job->state()) {
    case JobState::kDone:
    case JobState::kTimedOut:
      return job->result();
    case JobState::kFailed:
      return InternalError("job failed: " + job->error());
    case JobState::kCancelled:
      return CancelledError("job was cancelled");
    default:
      return FailedPreconditionError("job is not terminal yet");
  }
}

Status DfsServer::Cancel(JobId id) {
  std::shared_ptr<Job> job;
  {
    util::MutexLock lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return NotFoundError("unknown or evicted job " + std::to_string(id));
    }
    job = it->second;
  }
  return CancelJob(job);
}

Status DfsServer::CancelJob(const std::shared_ptr<Job>& job) {
  const JobState state = job->state();
  if (IsTerminalState(state)) {
    if (state == JobState::kCancelled) return OkStatus();  // idempotent
    return FailedPreconditionError(std::string("job already terminal: ") +
                                   JobStateName(state));
  }
  job->RequestCancel();
  // Still queued: take it out of the queue and finish it here. If a worker
  // popped it in the meantime, Remove fails and the worker observes the
  // stop token instead — exactly one side records the terminal state.
  if (queue_.Remove(job->id())) {
    ServeMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    if (job->TryTransition(JobState::kCancelled)) {
      RecordTerminal(*job, /*evaluations=*/0);
    }
  }
  return OkStatus();
}

Status DfsServer::WaitForTerminal(JobId id, double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  util::MutexLock lock(jobs_mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return NotFoundError("unknown or evicted job " + std::to_string(id));
  }
  const std::shared_ptr<Job> job = it->second;
  while (!IsTerminalState(job->state())) {
    if (!terminal_cv_.WaitUntil(lock, deadline)) {
      if (IsTerminalState(job->state())) break;  // terminal at the wire
      return DeadlineExceededError("job " + std::to_string(id) +
                                   " not terminal after " +
                                   std::to_string(timeout_seconds) + "s");
    }
  }
  return OkStatus();
}

ServerStats DfsServer::Stats() const {
  ServerStats snapshot;
  {
    util::MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  snapshot.queue_depth = queue_.size();
  snapshot.running = running_.load();
  {
    util::MutexLock lock(jobs_mu_);
    snapshot.retained_jobs = jobs_.size();
  }
  return snapshot;
}

size_t DfsServer::QueueDepth() const { return queue_.size(); }

void DfsServer::Shutdown(bool cancel_pending) {
  util::MutexLock shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return;
  accepting_.store(false);
  if (cancel_pending) {
    std::vector<std::shared_ptr<Job>> live;
    {
      util::MutexLock lock(jobs_mu_);
      // DFS_UNORDERED_OK: cancellation order is not results-affecting.
      for (const auto& [id, job] : jobs_) {
        if (!IsTerminalState(job->state())) live.push_back(job);
      }
    }
    for (const auto& job : live) (void)CancelJob(job);
  }
  queue_.Close();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  shutdown_done_ = true;
}

void DfsServer::WorkerLoop() {
  ServeMetrics& metrics = ServeMetrics::Get();
  while (std::shared_ptr<Job> job = queue_.PopBlocking()) {
    metrics.queue_depth.Set(static_cast<int64_t>(queue_.size()));
    if (job->cancel_requested()) {
      if (job->TryTransition(JobState::kCancelled)) {
        RecordTerminal(*job, /*evaluations=*/0);
      }
      continue;
    }
    if (!job->TryTransition(JobState::kRunning)) continue;
    running_.fetch_add(1);
    metrics.running.Add(1);
    const JobOutcome outcome = ExecuteJob(*job);
    // Drop the gauge before the terminal transition: anyone woken by
    // WaitForTerminal must not observe the finished job as still running.
    running_.fetch_sub(1);
    metrics.running.Add(-1);
    if (job->TryTransition(outcome.state)) {
      RecordTerminal(*job, outcome.evaluations);
      ReportRouteOutcome(*job);
    }
  }
}

DfsServer::JobOutcome DfsServer::ExecuteJob(Job& job) {
  obs::TraceSpan span("serve.job",
                      "id=" + std::to_string(job.id()) + " strategy=" +
                          job.request().strategy);
  const JobRequest& request = job.request();
  const auto fail = [&](const std::string& message) {
    job.set_error(message);
    return JobOutcome{JobState::kFailed, 0};
  };

  auto dataset = ResolveDataset(request.dataset);
  if (!dataset.ok()) return fail(dataset.status().ToString());

  // Resolve what to run: an explicit strategy name, the router's decision
  // (stamped at submission), or the configured default for "auto" jobs that
  // could not be routed.
  std::unique_ptr<fs::FeatureSelectionStrategy> strategy;
  if (request.strategy != "auto") {
    auto strategy_id = fs::StrategyIdFromString(request.strategy);
    if (!strategy_id.ok()) return fail(strategy_id.status().ToString());
    strategy = fs::CreateStrategy(*strategy_id, request.seed);
  } else if (auto route = job.route(); route.has_value()) {
    if (route->portfolio) {
      strategy = std::make_unique<fs::TimeSlicedPortfolio>(route->members,
                                                           request.seed);
    } else {
      strategy = fs::CreateStrategy(route->chosen, request.seed);
    }
  } else {
    auto fallback = fs::StrategyIdFromString(options_.default_auto_strategy);
    if (!fallback.ok()) return fail(fallback.status().ToString());
    strategy = fs::CreateStrategy(*fallback, request.seed);
  }

  Rng rng(request.seed);
  auto scenario = core::MakeScenario(**dataset, request.model,
                                     request.constraint_set, rng);
  if (!scenario.ok()) return fail(scenario.status().ToString());

  core::EngineOptions engine_options;
  engine_options.use_hpo = request.use_hpo;
  engine_options.maximize_f1_utility = request.maximize_utility;
  engine_options.seed = request.seed;
  engine_options.stop_token = job.stop_token();
  // Split the process-wide thread budget across the worker fleet so
  // num_workers concurrently-running jobs do not oversubscribe the host.
  engine_options.num_threads =
      std::max(1, HardwareThreadBudget() / std::max(1, options_.num_workers));
  if (options_.share_eval_cache) {
    engine_options.shared_cache = eval_caches_.GetOrCreate(
        JobContextFingerprint(request, **dataset));
  }
  core::DfsEngine engine(*std::move(scenario), engine_options);
  const core::RunResult run = engine.Run(*strategy);

  JobResult result;
  result.success = run.success;
  result.strategy = strategy->name();
  result.features = fs::MaskToIndices(run.selected);
  const auto& names = (*dataset)->feature_names();
  for (int feature : result.features) {
    result.feature_names.push_back(names[feature]);
  }
  result.validation_values = run.validation_values;
  result.test_values = run.test_values;
  result.search_seconds = run.search_seconds;
  result.evaluations = run.evaluations;
  job.set_result(std::move(result));

  const JobState final_state = run.cancelled  ? JobState::kCancelled
                               : run.timed_out ? JobState::kTimedOut
                                               : JobState::kDone;
  return JobOutcome{final_state, run.evaluations};
}

void DfsServer::RecordTerminal(const Job& job, int evaluations) {
  ServeMetrics& metrics = ServeMetrics::Get();
  {
    util::MutexLock lock(stats_mu_);
    switch (job.state()) {
      case JobState::kDone:
        ++stats_.completed;
        metrics.completed.Increment();
        break;
      case JobState::kFailed:
        ++stats_.failed;
        metrics.failed.Increment();
        break;
      case JobState::kCancelled:
        ++stats_.cancelled;
        metrics.cancelled.Increment();
        break;
      case JobState::kTimedOut:
        ++stats_.timed_out;
        metrics.timed_out.Increment();
        break;
      default:
        DFS_LOG(WARNING) << "RecordTerminal on non-terminal job";
        return;
    }
    stats_.evaluations += static_cast<uint64_t>(evaluations);
    stats_.queue_seconds_total += job.queue_seconds();
    const double run_seconds = job.run_seconds();
    stats_.run_seconds_total += run_seconds;
    stats_.run_seconds_max = std::max(stats_.run_seconds_max, run_seconds);
  }
  metrics.queue_seconds.Record(job.queue_seconds());
  metrics.run_seconds.Record(job.run_seconds());
  metrics.job_seconds.Record(job.queue_seconds() + job.run_seconds());
  // Pairing the notify with the waiters' mutex closes the missed-wakeup
  // window (the state transition itself happens under the job's own lock).
  { util::MutexLock lock(jobs_mu_); }
  terminal_cv_.NotifyAll();
}

StatusOr<std::shared_ptr<const data::Dataset>> DfsServer::ResolveDataset(
    const std::string& name) {
  util::MutexLock lock(datasets_mu_);
  auto it = datasets_.find(name);
  if (it != datasets_.end()) return it->second;
  // Fall back to the benchmark suite, generating (and caching) on first
  // use. Generation holds the lock — concurrent first requests for
  // different suite datasets serialize, which is fine at service scale.
  auto spec = data::BenchmarkSpecByName(name);
  if (!spec.ok()) {
    return NotFoundError("unknown dataset '" + name +
                         "' (not registered, not in the benchmark suite)");
  }
  auto generated =
      data::GenerateDataset(*spec, options_.seed, options_.dataset_row_scale);
  if (!generated.ok()) return generated.status();
  auto shared =
      std::make_shared<const data::Dataset>(*std::move(generated));
  datasets_[name] = shared;
  return shared;
}

void DfsServer::ReportRouteOutcome(const Job& job) {
  const std::optional<router::RouteDecision> route = job.route();
  if (!route.has_value()) return;
  bool success;
  switch (job.state()) {
    case JobState::kDone:
      success = job.result().success;
      break;
    case JobState::kTimedOut:
      success = false;  // the budget expired: the strategy did not satisfy
      break;
    default:
      return;  // cancelled / failed say nothing about the strategy
  }
  router_->ReportOutcome(*route, route->chosen, success);
}

std::optional<router::RouteDecision> DfsServer::GetRoute(JobId id) const {
  std::shared_ptr<Job> job;
  {
    util::MutexLock lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  return job->route();
}

void DfsServer::SweepLocked() {
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const Job& job = *it->second;
    if (IsTerminalState(job.state()) &&
        job.seconds_since_terminal() > options_.result_ttl_seconds) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (jobs_.size() <= options_.max_retained_jobs) return;
  std::vector<std::pair<double, JobId>> terminal;  // (age, id)
  // DFS_UNORDERED_OK: the (age desc, id) sort below imposes a total order.
  for (const auto& [id, job] : jobs_) {
    if (IsTerminalState(job->state())) {
      terminal.emplace_back(job->seconds_since_terminal(), id);
    }
  }
  // Tie-break on id: with age alone, equal-aged jobs would be evicted in
  // unordered_map iteration order (std::sort is unstable).
  std::sort(terminal.begin(), terminal.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [age, id] : terminal) {
    if (jobs_.size() <= options_.max_retained_jobs) break;
    jobs_.erase(id);
  }
}

}  // namespace dfs::serve
