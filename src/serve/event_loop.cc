#include "serve/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"
#include "serve/line_protocol.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace dfs::serve {
namespace {

/// dfs::obs instruments of the network front-end (documented in
/// docs/PROTOCOL.md's instrument registry). `open_connections` mirrors the
/// acceptor/loop bookkeeping; `request_seconds` times one line from parse
/// to response-queued (dispatch inclusive), which is the front-end's own
/// latency contribution — job time lives in serve.run_seconds.
struct NetMetrics {
  obs::Counter& accepted;
  obs::Counter& shed_requests;
  obs::Counter& shed_accepts;
  obs::Counter& closed;
  obs::Gauge& open_connections;
  obs::Histogram& request_seconds;

  static NetMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static NetMetrics* metrics = new NetMetrics{
        registry.counter("serve.net.accepted"),
        registry.counter("serve.net.shed_requests"),
        registry.counter("serve.net.shed_accepts"),
        registry.counter("serve.net.closed"),
        registry.gauge("serve.net.open_connections"),
        registry.histogram("serve.net.request_seconds"),
    };
    return *metrics;
  }
};

/// Canonical-encoding submit detector for admission control. Both first-
/// party encoders (FormatSubmitLine, and WriteJsonLine in general) emit
/// `"op":"submit"` with no interior whitespace, so a substring test is
/// enough to recognize every request our own clients can produce. A
/// non-canonical submit (hand-written JSON with spaces) falls through to
/// the bounded queue, whose TrySubmit rejects with the same "queue_full"
/// tag — shedding is an optimization, never the only backstop.
bool IsCanonicalSubmit(const std::string& line) {
  return line.find("\"op\":\"submit\"") != std::string::npos;
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

/// Non-blocking + Nagle off: responses are one small line each and the
/// event loop never blocks on a channel.
bool PrepareClientFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return false;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return true;
}

}  // namespace

std::string ShedResponse() {
  JsonObject object;
  object["error"] = JsonValue::String("queue_full");
  object["message"] =
      JsonValue::String("shed: job queue at admission watermark");
  object["ok"] = JsonValue::Bool(false);
  return WriteJsonLine(object);
}

std::string AcceptShedResponse() {
  JsonObject object;
  object["error"] = JsonValue::String("queue_full");
  object["message"] =
      JsonValue::String("shed: connection limit reached");
  object["ok"] = JsonValue::Bool(false);
  return WriteJsonLine(object);
}

/// One epoll instance + its thread. A connection is owned by exactly one
/// IoLoop for its whole life, so channel state needs no locking; the only
/// cross-thread surface is the pending-accept queue (acceptor -> loop) and
/// the eventfd wakeup.
class EventLoopFrontEnd::IoLoop {
 public:
  explicit IoLoop(EventLoopFrontEnd& owner) : owner_(owner) {}

  ~IoLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return ErrnoError("epoll_create1");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) return ErrnoError("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = event_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
      return ErrnoError("epoll_ctl(eventfd)");
    }
    return OkStatus();
  }

  void StartThread() { thread_ = std::thread(&IoLoop::Run, this); }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Acceptor-side handoff of a freshly accepted (already non-blocking)
  /// fd. If the loop has already exited (stop racing an accept), the fd
  /// stays in pending_ until the destructor-adjacent CloseAll — the
  /// process is exiting anyway.
  void Enqueue(int fd) {
    {
      util::MutexLock lock(mu_);
      pending_.push_back(fd);
    }
    Wake();
  }

  /// Async-signal-safe wakeup (write(2) on an eventfd).
  void Wake() {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof(one));
  }

 private:
  /// Per-connection state machine. Owned by this loop's thread; the
  /// buffers live here (not in a LineChannel) so reads and writes survive
  /// any number of epoll wakeups mid-line.
  struct Channel {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    size_t out_offset = 0;     ///< bytes of outbuf already sent
    uint32_t armed = EPOLLIN;  ///< epoll interest currently registered
    bool read_closed = false;  ///< peer EOF seen; drain then close
  };

  bool HasPendingOut(const Channel& ch) const {
    return ch.out_offset < ch.outbuf.size();
  }

  void Run() {
    std::array<epoll_event, 128> events;
    while (true) {
      const int n =
          ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), /*timeout=*/-1);
      if (n < 0) {
        if (errno == EINTR) continue;
        DFS_LOG(ERROR) << "epoll_wait: " << std::strerror(errno);
        break;
      }
      bool woken = false;
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == event_fd_) {
          woken = true;
          continue;
        }
        HandleEvent(events[i].data.fd, events[i].events);
      }
      if (woken) {
        DrainEventFd();
        if (owner_.stopping_.load(std::memory_order_acquire)) break;
        // Register after the event batch, never during it: a closed fd's
        // number can then never be reused by a new channel while stale
        // events for the old one are still in this batch.
        RegisterPending();
      }
    }
    CloseAll();
  }

  void DrainEventFd() {
    uint64_t value = 0;
    while (::read(event_fd_, &value, sizeof(value)) > 0) {
    }
  }

  void RegisterPending() {
    std::vector<int> fds;
    {
      util::MutexLock lock(mu_);
      fds.swap(pending_);
    }
    for (const int fd : fds) {
      auto channel = std::make_unique<Channel>();
      channel->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        DFS_LOG(WARNING) << "epoll_ctl(add): " << std::strerror(errno);
        ::close(fd);
        AccountClose();
        continue;
      }
      channels_.emplace(fd, std::move(channel));
    }
  }

  void HandleEvent(int fd, uint32_t revents) {
    auto it = channels_.find(fd);
    // Stale event for a channel closed earlier in this same batch.
    if (it == channels_.end()) return;
    Channel& ch = *it->second;
    if ((revents & EPOLLIN) != 0 && !ReadChannel(ch)) {
      Close(ch);
      return;
    }
    if (!FlushChannel(ch)) {
      Close(ch);
      return;
    }
    if ((revents & (EPOLLERR | EPOLLHUP)) != 0) {
      // Peer fully closed or the socket errored; any unsent response
      // would only earn an RST.
      Close(ch);
      return;
    }
    if (ch.read_closed && !HasPendingOut(ch)) {
      Close(ch);
      return;
    }
    UpdateInterest(ch);
  }

  /// Reads until EAGAIN/EOF, extracting and dispatching every complete
  /// line. Returns false when the connection must be closed (I/O error,
  /// RST, or the 1 MiB line cap exceeded).
  bool ReadChannel(Channel& ch) {
    if (ch.read_closed) return true;
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(ch.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        ch.inbuf.append(chunk, static_cast<size_t>(n));
        if (!ExtractAndDispatch(ch)) return false;
        if (static_cast<size_t>(n) < sizeof(chunk)) return true;
        continue;
      }
      if (n == 0) {
        ch.read_closed = true;
        // LineChannel semantics: a final unterminated line is served.
        if (!ch.inbuf.empty()) {
          std::string line = std::move(ch.inbuf);
          ch.inbuf.clear();
          if (!line.empty() && line.back() == '\r') line.pop_back();
          HandleLine(ch, line);
        }
        return true;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // ECONNRESET and friends
    }
  }

  /// Splits inbuf on '\n' (stripping a trailing '\r' per line) and
  /// dispatches each complete line in arrival order — pipelined requests
  /// produce pipelined responses. False once the unterminated residue
  /// exceeds kMaxLineBytes (same cap as LineChannel::ReadLine).
  bool ExtractAndDispatch(Channel& ch) {
    size_t start = 0;
    while (true) {
      const size_t newline = ch.inbuf.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = ch.inbuf.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      HandleLine(ch, line);
    }
    if (start > 0) ch.inbuf.erase(0, start);
    return ch.inbuf.size() <= kMaxLineBytes;
  }

  void HandleLine(Channel& ch, const std::string& line) {
    if (Strip(line).empty()) return;
    NetMetrics& metrics = NetMetrics::Get();
    obs::ScopedTimer timer(metrics.request_seconds);
    bool shutdown_requested = false;
    const EventLoopOptions& options = owner_.options_;
    if (options.shed_watermark > 0 && IsCanonicalSubmit(line) &&
        owner_.server_.QueueDepth() >= options.shed_watermark) {
      metrics.shed_requests.Increment();
      ch.outbuf += ShedResponse();
    } else {
      DispatchResult result = Dispatch(owner_.server_, line);
      ch.outbuf += result.response;
      shutdown_requested = result.shutdown_requested;
    }
    ch.outbuf += '\n';
    if (shutdown_requested) {
      // Acknowledge on the wire before the fleet goes down, then stop
      // everything (the other loops flush best-effort on their way out).
      BlockingFlush(ch);
      owner_.client_shutdown_.store(true, std::memory_order_release);
      owner_.RequestStop();
    }
  }

  /// Writes as much buffered output as the socket accepts. Returns false
  /// when the connection must be closed (write error, or a peer that
  /// stopped reading past max_write_buffer_bytes).
  bool FlushChannel(Channel& ch) {
    while (HasPendingOut(ch)) {
      const ssize_t n =
          ::send(ch.fd, ch.outbuf.data() + ch.out_offset,
                 ch.outbuf.size() - ch.out_offset, MSG_NOSIGNAL);
      if (n >= 0) {
        ch.out_offset += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // EPIPE/ECONNRESET
    }
    if (!HasPendingOut(ch)) {
      ch.outbuf.clear();
      ch.out_offset = 0;
    } else if (ch.out_offset > (64u << 10)) {
      ch.outbuf.erase(0, ch.out_offset);
      ch.out_offset = 0;
    }
    return ch.outbuf.size() - ch.out_offset <=
           owner_.options_.max_write_buffer_bytes;
  }

  /// Bounded blocking drain for the shutdown acknowledgment: poll(2) the
  /// non-blocking fd for up to ~1 s. Best-effort — a dead peer just ends
  /// the drain early.
  void BlockingFlush(Channel& ch) {
    Stopwatch watch;
    while (HasPendingOut(ch) && watch.ElapsedSeconds() < 1.0) {
      pollfd poller{ch.fd, POLLOUT, 0};
      ::poll(&poller, 1, /*timeout_ms=*/50);
      if (!FlushChannel(ch)) return;
    }
  }

  void UpdateInterest(Channel& ch) {
    uint32_t wanted = 0;
    if (!ch.read_closed) wanted |= EPOLLIN;
    if (HasPendingOut(ch)) wanted |= EPOLLOUT;
    if (wanted == ch.armed) return;
    epoll_event ev{};
    ev.events = wanted;
    ev.data.fd = ch.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, ch.fd, &ev) == 0) {
      ch.armed = wanted;
    }
  }

  void AccountClose() {
    NetMetrics& metrics = NetMetrics::Get();
    metrics.closed.Increment();
    metrics.open_connections.Add(-1);
    owner_.open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  void Close(Channel& ch) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, ch.fd, nullptr);
    ::close(ch.fd);
    const int fd = ch.fd;
    channels_.erase(fd);
    AccountClose();
  }

  /// Loop exit: one best-effort flush per channel (so responses queued
  /// just before shutdown usually reach their peers), then close
  /// everything including never-registered pending accepts.
  void CloseAll() {
    {
      util::MutexLock lock(mu_);
      for (const int fd : pending_) {
        ::close(fd);
        AccountClose();
      }
      pending_.clear();
    }
    while (!channels_.empty()) {
      Channel& ch = *channels_.begin()->second;
      FlushChannel(ch);
      Close(ch);
    }
  }

  EventLoopFrontEnd& owner_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;

  util::Mutex mu_;
  std::vector<int> pending_ DFS_GUARDED_BY(mu_);

  /// Loop-thread only: fd -> connection state. Keyed by fd (not pointer)
  /// so stale events in the current batch resolve to "already closed".
  std::unordered_map<int, std::unique_ptr<Channel>> channels_;
};

EventLoopFrontEnd::EventLoopFrontEnd(DfsServer& server,
                                     EventLoopOptions options)
    : server_(server), options_(options) {
  if (options_.io_threads < 1) options_.io_threads = 1;
  if (options_.io_threads > 64) options_.io_threads = 64;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

EventLoopFrontEnd::~EventLoopFrontEnd() {
  RequestStop();
  Wait();
}

Status EventLoopFrontEnd::Start() {
  if (started_.exchange(true)) {
    return FailedPreconditionError("front-end already started");
  }
  DFS_RETURN_IF_ERROR(
      listener_.Listen(options_.port, options_.loopback_only));
  loops_.reserve(static_cast<size_t>(options_.io_threads));
  for (int i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>(*this);
    if (Status status = loop->Init(); !status.ok()) {
      listener_.Close();
      loops_.clear();
      return status;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) loop->StartThread();
  acceptor_ = std::thread(&EventLoopFrontEnd::AcceptLoop, this);
  return OkStatus();
}

void EventLoopFrontEnd::RequestStop() {
  // Async-signal-safe by construction: an atomic store, shutdown(2) on
  // the listener, and one write(2) per I/O thread. loops_ is immutable
  // after Start().
  stopping_.store(true, std::memory_order_release);
  listener_.InterruptAccept();
  for (auto& loop : loops_) loop->Wake();
}

bool EventLoopFrontEnd::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
  // The acceptor also exits on a fatal listener error; make sure the I/O
  // threads stop in that case too.
  RequestStop();
  for (auto& loop : loops_) loop->Join();
  listener_.Close();
  return client_shutdown_.load(std::memory_order_acquire);
}

void EventLoopFrontEnd::AcceptLoop() {
  NetMetrics& metrics = NetMetrics::Get();
  int consecutive_errors = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto client = listener_.Accept();
    if (!client.ok()) {
      if (stopping_.load(std::memory_order_acquire) ||
          client.status().code() == StatusCode::kCancelled) {
        break;
      }
      // Transient accept failures (ECONNABORTED, EMFILE under a burst)
      // must not kill the daemon; a persistently failing listener does.
      if (++consecutive_errors >= 100) {
        DFS_LOG(ERROR) << "accept loop giving up: "
                       << client.status().ToString();
        break;
      }
      continue;
    }
    consecutive_errors = 0;
    const int fd = *client;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Accept-time shed under fd pressure: one best-effort line (the fd
      // is still blocking; the line is far below any socket buffer), then
      // close. The kernel backlog drains instead of timing clients out.
      const std::string line = AcceptShedResponse() + "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      metrics.shed_accepts.Increment();
      continue;
    }
    if (!PrepareClientFd(fd)) {
      ::close(fd);
      continue;
    }
    metrics.accepted.Increment();
    metrics.open_connections.Add(1);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    loops_[next_loop_]->Enqueue(fd);
    next_loop_ = (next_loop_ + 1) % loops_.size();
  }
}

}  // namespace dfs::serve
