#ifndef DFS_SERVE_LINE_PROTOCOL_H_
#define DFS_SERVE_LINE_PROTOCOL_H_

#include <map>
#include <optional>
#include <string>

#include "serve/job.h"
#include "util/statusor.h"

namespace dfs::serve {

/// The wire format of the DFS job service: one request per line, one
/// response per line, each a *flat* JSON object (string / number / boolean
/// values only — no nesting, no arrays). Examples:
///
///   -> {"op":"submit","dataset":"COMPAS","model":"LR","strategy":"auto",
///       "min_f1":0.7,"min_eo":0.9,"budget":1.5,"priority":2}
///   <- {"ok":true,"id":7,"state":"QUEUED"}
///   -> {"op":"status","id":7}
///   <- {"ok":true,"id":7,"state":"RUNNING","queue_seconds":0.01,...}
///   -> {"op":"result","id":7}
///   <- {"ok":true,"state":"DONE","success":true,"features":"0 3 9",...}
///   -> {"op":"cancel","id":7}        -> {"op":"stats"}
///   -> {"op":"ping"}                 -> {"op":"shutdown"}
///   -> {"op":"metrics"}   // dfs::obs registry snapshot, flattened
///   -> {"op":"router"}    // routing policy, refits, per-strategy counts
///   -> {"op":"cache"}     // shared eval-cache counters + occupancy
///
/// Errors: {"ok":false,"error":"<machine tag>","message":"<detail>"}.
/// The "queue_full" error tag is the backpressure signal; clients should
/// back off and retry instead of reconnecting.
///
/// The complete wire contract (field tables per verb, error codes, the
/// 1 MiB line cap, polling semantics, transcripts) is docs/PROTOCOL.md.

/// One scalar value of the flat JSON object.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kString;
  std::string string_value;
  double number_value = 0.0;
  bool bool_value = false;

  static JsonValue String(std::string value);
  static JsonValue Number(double value);
  static JsonValue Bool(bool value);
};

/// Flat JSON object; std::map keeps serialized key order deterministic.
using JsonObject = std::map<std::string, JsonValue>;

/// Parses one line holding a flat JSON object. Strings support the
/// \" \\ \/ \n \t \r escapes; numbers are doubles; values must be scalars.
StatusOr<JsonObject> ParseJsonLine(const std::string& line);

/// Serializes `object` as a single-line JSON object (no trailing newline).
std::string WriteJsonLine(const JsonObject& object);

// Typed field accessors (InvalidArgument on missing key / wrong type).
StatusOr<std::string> GetString(const JsonObject& object,
                                const std::string& key);
StatusOr<double> GetNumber(const JsonObject& object, const std::string& key);
StatusOr<bool> GetBool(const JsonObject& object, const std::string& key);
std::optional<double> GetOptionalNumber(const JsonObject& object,
                                        const std::string& key);

/// A parsed client request.
struct Request {
  enum class Op { kSubmit, kStatus, kResult, kCancel, kStats, kMetrics,
                  kRouter, kCache, kPing, kShutdown };
  Op op = Op::kPing;
  /// Valid when op == kSubmit.
  JobRequest submit;
  /// Valid for status/result/cancel.
  JobId id = 0;
};

/// Parses a request line (op dispatch + submit-field validation via
/// ConstraintSetBuilder, so malformed constraints fail at the protocol
/// edge, not inside a worker).
StatusOr<Request> ParseRequestLine(const std::string& line);

/// Client-side encoder for a submit request (inverse of ParseRequestLine).
std::string FormatSubmitLine(const JobRequest& request);

/// "LR" / "NB" / "DT" / "SVM" (case-insensitive) to ModelKind.
StatusOr<ml::ModelKind> ParseModelKind(const std::string& name);

}  // namespace dfs::serve

#endif  // DFS_SERVE_LINE_PROTOCOL_H_
