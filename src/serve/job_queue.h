#ifndef DFS_SERVE_JOB_QUEUE_H_
#define DFS_SERVE_JOB_QUEUE_H_

#include <map>
#include <memory>
#include <unordered_map>

#include "serve/job.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs::serve {

/// Outcome of a non-blocking submission attempt.
enum class SubmitOutcome {
  kAccepted,
  /// The queue is at capacity. This is the backpressure contract: TrySubmit
  /// never blocks the caller; it is the client's job to retry or shed load.
  kQueueFull,
  /// The queue was closed (server shutting down).
  kClosed,
};

const char* SubmitOutcomeName(SubmitOutcome outcome);

/// Bounded multi-producer/multi-consumer queue of jobs with
/// priority-then-FIFO ordering: a popped job is the oldest among those with
/// the highest priority. Producers never block (TrySubmit reports
/// kQueueFull); consumers block in PopBlocking until a job or Close().
class JobQueue {
 public:
  explicit JobQueue(size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Non-blocking submit; kQueueFull when `size() == capacity()`.
  [[nodiscard]] SubmitOutcome TrySubmit(std::shared_ptr<Job> job);

  /// Blocks until a job is available and returns it, or returns nullptr
  /// once the queue is closed and drained.
  std::shared_ptr<Job> PopBlocking();

  /// Removes a still-queued job (cancellation); false if it is not in the
  /// queue (already popped or never submitted).
  bool Remove(JobId id);

  /// Closes the queue: subsequent TrySubmit calls return kClosed and
  /// blocked consumers drain the remaining jobs, then receive nullptr.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  /// Pop order: highest priority first, then submission order.
  struct OrderKey {
    int priority = 0;
    uint64_t sequence = 0;
    bool operator<(const OrderKey& other) const {
      if (priority != other.priority) return priority > other.priority;
      return sequence < other.sequence;
    }
  };

  mutable util::Mutex mu_;
  util::CondVar available_;
  std::map<OrderKey, std::shared_ptr<Job>> entries_ DFS_GUARDED_BY(mu_);
  std::unordered_map<JobId, OrderKey> key_by_id_ DFS_GUARDED_BY(mu_);
  uint64_t next_sequence_ DFS_GUARDED_BY(mu_) = 0;
  const size_t capacity_;
  bool closed_ DFS_GUARDED_BY(mu_) = false;
};

}  // namespace dfs::serve

#endif  // DFS_SERVE_JOB_QUEUE_H_
