#ifndef DFS_SERVE_JOB_H_
#define DFS_SERVE_JOB_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "constraints/constraint_set.h"
#include "ml/classifier.h"
#include "router/router.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dfs::serve {

using JobId = uint64_t;

/// Lifecycle of a job inside the DFS job service:
///
///   QUEUED ──> RUNNING ──> DONE | FAILED | CANCELLED | TIMED_OUT
///      └────────────────────────────────────> CANCELLED
///
/// DONE means the search finished under its own rules (a satisfying subset
/// was found, or the strategy exhausted its space — JobResult::success says
/// which); FAILED means the job could not run (unknown dataset/strategy,
/// scenario construction error); TIMED_OUT means the constraint-set search
/// budget expired; CANCELLED means a client cancelled it while queued or
/// running.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kTimedOut,
};

/// Wire/display name, e.g. "QUEUED", "TIMED_OUT".
const char* JobStateName(JobState state);

/// True for DONE, FAILED, CANCELLED and TIMED_OUT.
bool IsTerminalState(JobState state);

/// True iff `from -> to` is an edge of the lifecycle diagram above.
bool IsValidTransition(JobState from, JobState to);

/// A declarative feature-selection request as submitted to the service: the
/// ML scenario spec (dataset by name, model, constraint set) plus how to
/// search (a strategy name from the registry, or "auto" to let the server's
/// meta-optimizer choose) and queueing metadata.
struct JobRequest {
  /// Name of a dataset registered on the server or of a benchmark-suite
  /// dataset (generated on first use).
  std::string dataset;
  ml::ModelKind model = ml::ModelKind::kLogisticRegression;
  /// Registry name (e.g. "SFFS(NR)", "TPE(FCBF)") or "auto".
  std::string strategy = "auto";
  constraints::ConstraintSet constraint_set;
  bool use_hpo = false;
  bool maximize_utility = false;
  /// Higher-priority jobs run first; equal priorities run FIFO.
  int priority = 0;
  uint64_t seed = 42;
};

/// Final outcome of a DONE (or best-effort TIMED_OUT) job.
struct JobResult {
  bool success = false;
  /// Strategy that actually ran (resolved from "auto" if requested).
  std::string strategy;
  std::vector<int> features;
  std::vector<std::string> feature_names;
  constraints::MetricValues validation_values;
  constraints::MetricValues test_values;
  double search_seconds = 0.0;
  int evaluations = 0;
};

/// One job owned by the DfsServer: request, state machine, result slot and
/// the cooperative stop token shared with the engine. State transitions and
/// reads are internally synchronized; workers and protocol threads share
/// Job instances through shared_ptr.
class Job {
 public:
  Job(JobId id, JobRequest request);

  JobId id() const { return id_; }
  const JobRequest& request() const { return request_; }

  JobState state() const;

  /// Atomically applies `to` if the edge is valid from the current state;
  /// returns false (and leaves the state alone) otherwise. Terminal
  /// transitions stamp the terminal time used for TTL-bounded retention.
  [[nodiscard]] bool TryTransition(JobState to);

  /// Flips the engine stop token. The state transition to CANCELLED is
  /// performed by the server (immediately when queued, by the worker when
  /// the engine returns for running jobs).
  void RequestCancel();
  bool cancel_requested() const;

  const std::shared_ptr<std::atomic<bool>>& stop_token() const {
    return stop_token_;
  }

  // Result slot -------------------------------------------------------
  void set_result(JobResult result);
  JobResult result() const;
  void set_error(std::string error);
  std::string error() const;

  // Route slot --------------------------------------------------------
  /// The router's decision for an "auto" job, stamped at submission (before
  /// the job is queued) so the worker runs exactly what was decided and the
  /// submit response can explain it. Absent for explicit-strategy jobs and
  /// for "auto" jobs whose dataset could not be resolved at submit.
  void set_route(router::RouteDecision route);
  std::optional<router::RouteDecision> route() const;

  // Timing ------------------------------------------------------------
  /// Seconds spent QUEUED (until run start, or until now while queued).
  double queue_seconds() const;
  /// Seconds spent RUNNING (until terminal, or until now while running).
  double run_seconds() const;
  /// Seconds since the job reached a terminal state (0 if not terminal).
  double seconds_since_terminal() const;

 private:
  using Clock = std::chrono::steady_clock;

  JobId id_;
  JobRequest request_;
  std::shared_ptr<std::atomic<bool>> stop_token_;

  mutable util::Mutex mu_;
  JobState state_ DFS_GUARDED_BY(mu_) = JobState::kQueued;
  JobResult result_ DFS_GUARDED_BY(mu_);
  std::string error_ DFS_GUARDED_BY(mu_);
  std::optional<router::RouteDecision> route_ DFS_GUARDED_BY(mu_);
  /// Stamped once in the constructor, read-only afterwards — not guarded.
  Clock::time_point submitted_at_;
  Clock::time_point started_at_ DFS_GUARDED_BY(mu_){};
  Clock::time_point terminal_at_ DFS_GUARDED_BY(mu_){};
};

}  // namespace dfs::serve

#endif  // DFS_SERVE_JOB_H_
