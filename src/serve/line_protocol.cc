#include "serve/line_protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace dfs::serve {
namespace {

// ---- Flat JSON scanner ----------------------------------------------

struct Scanner {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  char Peek() {
    SkipSpace();
    return pos < text.size() ? text[pos] : '\0';
  }
};

StatusOr<std::string> ParseString(Scanner& scanner) {
  if (!scanner.Consume('"')) return InvalidArgumentError("expected '\"'");
  std::string out;
  while (scanner.pos < scanner.text.size()) {
    const char c = scanner.text[scanner.pos++];
    if (c == '"') return out;
    if (c == '\\') {
      if (scanner.pos >= scanner.text.size()) break;
      const char escaped = scanner.text[scanner.pos++];
      switch (escaped) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        default:
          return InvalidArgumentError(std::string("bad escape \\") + escaped);
      }
      continue;
    }
    out.push_back(c);
  }
  return InvalidArgumentError("unterminated string");
}

StatusOr<JsonValue> ParseValue(Scanner& scanner) {
  const char c = scanner.Peek();
  if (c == '"') {
    auto text = ParseString(scanner);
    if (!text.ok()) return text.status();
    return JsonValue::String(*std::move(text));
  }
  if (c == 't' || c == 'f') {
    const bool value = c == 't';
    const std::string word = value ? "true" : "false";
    if (scanner.text.compare(scanner.pos, word.size(), word) != 0) {
      return InvalidArgumentError("bad literal");
    }
    scanner.pos += word.size();
    return JsonValue::Bool(value);
  }
  if (c == '{' || c == '[') {
    return InvalidArgumentError("nested values are not part of the protocol");
  }
  // Number.
  const size_t start = scanner.pos;
  size_t end = start;
  while (end < scanner.text.size() &&
         (std::isdigit(static_cast<unsigned char>(scanner.text[end])) ||
          scanner.text[end] == '-' || scanner.text[end] == '+' ||
          scanner.text[end] == '.' || scanner.text[end] == 'e' ||
          scanner.text[end] == 'E')) {
    ++end;
  }
  if (end == start) return InvalidArgumentError("expected a value");
  try {
    size_t used = 0;
    const double value =
        std::stod(scanner.text.substr(start, end - start), &used);
    if (used != end - start) return InvalidArgumentError("bad number");
    scanner.pos = end;
    return JsonValue::Number(value);
  } catch (const std::exception&) {
    return InvalidArgumentError("bad number");
  }
}

std::string EscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string FormatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

bool GetOptionalBool(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  return it != object.end() && it->second.kind == JsonValue::Kind::kBool &&
         it->second.bool_value;
}

}  // namespace

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind = Kind::kString;
  v.string_value = std::move(value);
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  v.number_value = value;
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind = Kind::kBool;
  v.bool_value = value;
  return v;
}

StatusOr<JsonObject> ParseJsonLine(const std::string& line) {
  Scanner scanner{line};
  if (!scanner.Consume('{')) {
    return InvalidArgumentError("a request line must be a JSON object");
  }
  JsonObject object;
  if (scanner.Consume('}')) {
    if (!scanner.AtEnd()) return InvalidArgumentError("trailing characters");
    return object;
  }
  while (true) {
    auto key = ParseString(scanner);
    if (!key.ok()) return key.status();
    if (!scanner.Consume(':')) return InvalidArgumentError("expected ':'");
    auto value = ParseValue(scanner);
    if (!value.ok()) return value.status();
    object[*key] = *std::move(value);
    if (scanner.Consume(',')) continue;
    if (scanner.Consume('}')) break;
    return InvalidArgumentError("expected ',' or '}'");
  }
  if (!scanner.AtEnd()) return InvalidArgumentError("trailing characters");
  return object;
}

std::string WriteJsonLine(const JsonObject& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeString(key) + "\":";
    switch (value.kind) {
      case JsonValue::Kind::kString:
        out += "\"" + EscapeString(value.string_value) + "\"";
        break;
      case JsonValue::Kind::kNumber:
        out += FormatNumber(value.number_value);
        break;
      case JsonValue::Kind::kBool:
        out += value.bool_value ? "true" : "false";
        break;
    }
  }
  out += "}";
  return out;
}

StatusOr<std::string> GetString(const JsonObject& object,
                                const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) return InvalidArgumentError("missing key: " + key);
  if (it->second.kind != JsonValue::Kind::kString) {
    return InvalidArgumentError("key is not a string: " + key);
  }
  return it->second.string_value;
}

StatusOr<double> GetNumber(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) return InvalidArgumentError("missing key: " + key);
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return InvalidArgumentError("key is not a number: " + key);
  }
  return it->second.number_value;
}

StatusOr<bool> GetBool(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) return InvalidArgumentError("missing key: " + key);
  if (it->second.kind != JsonValue::Kind::kBool) {
    return InvalidArgumentError("key is not a boolean: " + key);
  }
  return it->second.bool_value;
}

std::optional<double> GetOptionalNumber(const JsonObject& object,
                                        const std::string& key) {
  auto it = object.find(key);
  if (it == object.end() || it->second.kind != JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  return it->second.number_value;
}

StatusOr<ml::ModelKind> ParseModelKind(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "lr") return ml::ModelKind::kLogisticRegression;
  if (lower == "nb") return ml::ModelKind::kNaiveBayes;
  if (lower == "dt") return ml::ModelKind::kDecisionTree;
  if (lower == "svm") return ml::ModelKind::kLinearSvm;
  return InvalidArgumentError("unknown model: " + name +
                              " (expected LR, NB, DT or SVM)");
}

StatusOr<Request> ParseRequestLine(const std::string& line) {
  auto object = ParseJsonLine(line);
  if (!object.ok()) return object.status();
  auto op_name = GetString(*object, "op");
  if (!op_name.ok()) return op_name.status();
  const std::string op = ToLower(*op_name);

  Request request;
  if (op == "ping") {
    request.op = Request::Op::kPing;
    return request;
  }
  if (op == "stats") {
    request.op = Request::Op::kStats;
    return request;
  }
  if (op == "metrics") {
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (op == "cache") {
    request.op = Request::Op::kCache;
    return request;
  }
  if (op == "router") {
    request.op = Request::Op::kRouter;
    return request;
  }
  if (op == "shutdown") {
    request.op = Request::Op::kShutdown;
    return request;
  }
  if (op == "status" || op == "result" || op == "cancel") {
    request.op = op == "status"   ? Request::Op::kStatus
                 : op == "result" ? Request::Op::kResult
                                  : Request::Op::kCancel;
    auto id = GetNumber(*object, "id");
    if (!id.ok()) return id.status();
    if (*id < 1 || *id != std::floor(*id)) {
      return InvalidArgumentError("id must be a positive integer");
    }
    request.id = static_cast<JobId>(*id);
    return request;
  }
  if (op != "submit") return InvalidArgumentError("unknown op: " + op);

  request.op = Request::Op::kSubmit;
  JobRequest& job = request.submit;
  auto dataset = GetString(*object, "dataset");
  if (!dataset.ok()) return dataset.status();
  job.dataset = *dataset;
  if (object->count("model") > 0) {
    auto model_name = GetString(*object, "model");
    if (!model_name.ok()) return model_name.status();
    auto model = ParseModelKind(*model_name);
    if (!model.ok()) return model.status();
    job.model = *model;
  }
  if (object->count("strategy") > 0) {
    auto strategy = GetString(*object, "strategy");
    if (!strategy.ok()) return strategy.status();
    job.strategy = *strategy;
  }

  // Constraints go through the builder so malformed thresholds are caught
  // at the protocol edge. Service default budget is 60 s, not the library
  // default of one hour — a job service wants bounded work items.
  constraints::ConstraintSetBuilder builder;
  builder.MinF1(GetOptionalNumber(*object, "min_f1").value_or(0.7));
  builder.MaxSearchSeconds(
      GetOptionalNumber(*object, "budget").value_or(60.0));
  if (auto v = GetOptionalNumber(*object, "max_features")) {
    builder.MaxFeatureFraction(*v);
  }
  if (auto v = GetOptionalNumber(*object, "min_eo")) {
    builder.MinEqualOpportunity(*v);
  }
  if (auto v = GetOptionalNumber(*object, "min_safety")) {
    builder.MinSafety(*v);
  }
  if (auto v = GetOptionalNumber(*object, "epsilon")) {
    builder.PrivacyEpsilon(*v);
  }
  auto constraint_set = builder.Build();
  if (!constraint_set.ok()) return constraint_set.status();
  job.constraint_set = *constraint_set;

  job.use_hpo = GetOptionalBool(*object, "hpo");
  job.maximize_utility = GetOptionalBool(*object, "utility");
  job.priority =
      static_cast<int>(GetOptionalNumber(*object, "priority").value_or(0.0));
  job.seed = static_cast<uint64_t>(
      GetOptionalNumber(*object, "seed").value_or(42.0));
  return request;
}

std::string FormatSubmitLine(const JobRequest& request) {
  JsonObject object;
  object["op"] = JsonValue::String("submit");
  object["dataset"] = JsonValue::String(request.dataset);
  object["model"] = JsonValue::String(ml::ModelKindToString(request.model));
  object["strategy"] = JsonValue::String(request.strategy);
  const constraints::ConstraintSet& set = request.constraint_set;
  object["min_f1"] = JsonValue::Number(set.min_f1);
  object["budget"] = JsonValue::Number(set.max_search_seconds);
  if (set.max_feature_fraction) {
    object["max_features"] = JsonValue::Number(*set.max_feature_fraction);
  }
  if (set.min_equal_opportunity) {
    object["min_eo"] = JsonValue::Number(*set.min_equal_opportunity);
  }
  if (set.min_safety) {
    object["min_safety"] = JsonValue::Number(*set.min_safety);
  }
  if (set.privacy_epsilon) {
    object["epsilon"] = JsonValue::Number(*set.privacy_epsilon);
  }
  if (request.use_hpo) object["hpo"] = JsonValue::Bool(true);
  if (request.maximize_utility) object["utility"] = JsonValue::Bool(true);
  if (request.priority != 0) {
    object["priority"] = JsonValue::Number(request.priority);
  }
  object["seed"] = JsonValue::Number(static_cast<double>(request.seed));
  return WriteJsonLine(object);
}

}  // namespace dfs::serve
