#include "serve/frontend.h"

#include <cstdio>
#include <string>
#include <vector>

#include "core/eval_cache.h"
#include "fs/registry.h"
#include "obs/metrics.h"
#include "serve/line_protocol.h"
#include "util/string_util.h"

namespace dfs::serve {
namespace {

/// Machine-readable error tag per status code ("queue_full" is the one
/// clients must special-case: it is backpressure, not failure).
const char* ErrorTag(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
      return "queue_full";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "bad_request";
    case StatusCode::kFailedPrecondition:
      return "precondition";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "timeout";
    default:
      return "internal";
  }
}

std::string ErrorResponse(const Status& status) {
  JsonObject object;
  object["ok"] = JsonValue::Bool(false);
  object["error"] = JsonValue::String(ErrorTag(status.code()));
  object["message"] = JsonValue::String(status.message());
  return WriteJsonLine(object);
}

std::string HandleSubmit(DfsServer& server, const JobRequest& request) {
  auto id = server.Submit(request);
  if (!id.ok()) return ErrorResponse(id.status());
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["id"] = JsonValue::Number(static_cast<double>(*id));
  object["state"] = JsonValue::String(JobStateName(JobState::kQueued));
  // Routed "auto" jobs explain their decision in the submit response
  // (docs/PROTOCOL.md "submit", dfs_submit --explain-route).
  if (const auto route = server.GetRoute(*id); route.has_value()) {
    object["strategy"] =
        JsonValue::String(fs::StrategyIdToString(route->chosen));
    object["route_policy"] = JsonValue::String(route->policy);
    object["route_explored"] = JsonValue::Bool(route->explored);
    object["route_portfolio"] = JsonValue::Bool(route->portfolio);
    if (!route->probabilities.empty()) {
      std::vector<std::string> probs;
      probs.reserve(route->probabilities.size());
      for (const auto& [strategy, probability] : route->probabilities) {
        char value[40];
        std::snprintf(value, sizeof(value), "%.6g", probability);
        probs.push_back(fs::StrategyIdToString(strategy) + ":" + value);
      }
      object["route_probs"] = JsonValue::String(Join(probs, " "));
    }
    if (route->portfolio) {
      std::vector<std::string> members;
      members.reserve(route->members.size());
      for (const fs::StrategyId member : route->members) {
        members.push_back(fs::StrategyIdToString(member));
      }
      object["route_members"] = JsonValue::String(Join(members, ", "));
    }
  }
  return WriteJsonLine(object);
}

std::string HandleStatus(DfsServer& server, JobId id) {
  auto view = server.GetStatus(id);
  if (!view.ok()) return ErrorResponse(view.status());
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["id"] = JsonValue::Number(static_cast<double>(view->id));
  object["state"] = JsonValue::String(JobStateName(view->state));
  object["priority"] = JsonValue::Number(view->priority);
  object["strategy"] = JsonValue::String(view->strategy);
  object["queue_seconds"] = JsonValue::Number(view->queue_seconds);
  object["run_seconds"] = JsonValue::Number(view->run_seconds);
  if (!view->error.empty()) {
    object["message"] = JsonValue::String(view->error);
  }
  return WriteJsonLine(object);
}

std::string HandleResult(DfsServer& server, JobId id) {
  auto result = server.GetResult(id);
  if (!result.ok()) return ErrorResponse(result.status());
  auto view = server.GetStatus(id);

  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["id"] = JsonValue::Number(static_cast<double>(id));
  object["state"] = JsonValue::String(
      JobStateName(view.ok() ? view->state : JobState::kDone));
  object["success"] = JsonValue::Bool(result->success);
  object["strategy"] = JsonValue::String(result->strategy);
  std::vector<std::string> features;
  features.reserve(result->features.size());
  for (const int feature : result->features) {
    features.push_back(std::to_string(feature));
  }
  object["features"] = JsonValue::String(Join(features, " "));
  object["num_features"] =
      JsonValue::Number(static_cast<double>(result->features.size()));
  object["validation_f1"] = JsonValue::Number(result->validation_values.f1);
  object["test_f1"] = JsonValue::Number(result->test_values.f1);
  object["validation_eo"] =
      JsonValue::Number(result->validation_values.equal_opportunity);
  object["test_eo"] =
      JsonValue::Number(result->test_values.equal_opportunity);
  object["seconds"] = JsonValue::Number(result->search_seconds);
  object["evaluations"] = JsonValue::Number(result->evaluations);
  return WriteJsonLine(object);
}

std::string HandleCancel(DfsServer& server, JobId id) {
  const Status status = server.Cancel(id);
  if (!status.ok()) return ErrorResponse(status);
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["id"] = JsonValue::Number(static_cast<double>(id));
  return WriteJsonLine(object);
}

std::string HandleStats(DfsServer& server) {
  const ServerStats stats = server.Stats();
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["accepted"] = JsonValue::Number(static_cast<double>(stats.accepted));
  object["rejected"] = JsonValue::Number(static_cast<double>(stats.rejected));
  object["completed"] =
      JsonValue::Number(static_cast<double>(stats.completed));
  object["failed"] = JsonValue::Number(static_cast<double>(stats.failed));
  object["cancelled"] =
      JsonValue::Number(static_cast<double>(stats.cancelled));
  object["timed_out"] =
      JsonValue::Number(static_cast<double>(stats.timed_out));
  object["evaluations"] =
      JsonValue::Number(static_cast<double>(stats.evaluations));
  object["queue_depth"] =
      JsonValue::Number(static_cast<double>(stats.queue_depth));
  object["running"] = JsonValue::Number(stats.running);
  object["retained_jobs"] =
      JsonValue::Number(static_cast<double>(stats.retained_jobs));
  object["queue_seconds_total"] =
      JsonValue::Number(stats.queue_seconds_total);
  object["run_seconds_total"] = JsonValue::Number(stats.run_seconds_total);
  object["run_seconds_max"] = JsonValue::Number(stats.run_seconds_max);
  return WriteJsonLine(object);
}

/// The "router" verb: policy, learning-loop progress and per-strategy route
/// counts of the server's strategy router (docs/PROTOCOL.md "router").
std::string HandleRouter(DfsServer& server) {
  const router::RouterStats stats = server.router().Stats();
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["policy"] = JsonValue::String(stats.policy);
  object["decisions"] =
      JsonValue::Number(static_cast<double>(stats.decisions));
  object["explored"] = JsonValue::Number(static_cast<double>(stats.explored));
  object["portfolio"] =
      JsonValue::Number(static_cast<double>(stats.portfolio));
  object["outcomes"] = JsonValue::Number(static_cast<double>(stats.outcomes));
  object["refits"] = JsonValue::Number(static_cast<double>(stats.refits));
  object["generation"] =
      JsonValue::Number(static_cast<double>(stats.generation));
  object["optimizer_loaded"] = JsonValue::Bool(stats.optimizer_loaded);
  object["buffer_depth"] =
      JsonValue::Number(static_cast<double>(stats.buffer_depth));
  object["buffer_capacity"] =
      JsonValue::Number(static_cast<double>(stats.buffer_capacity));
  object["feature_cache_size"] =
      JsonValue::Number(static_cast<double>(stats.feature_cache_size));
  object["feature_cache_hits"] =
      JsonValue::Number(static_cast<double>(stats.feature_cache_hits));
  object["feature_cache_misses"] =
      JsonValue::Number(static_cast<double>(stats.feature_cache_misses));
  for (const auto& [name, count] : stats.routes) {
    object["routes." + obs::SanitizeLabel(name)] =
        JsonValue::Number(static_cast<double>(count));
  }
  return WriteJsonLine(object);
}

/// The "cache" verb: the shared eval-cache registry's aggregated counters
/// and occupancy (docs/PROTOCOL.md "cache"). Counters cover the shared
/// surface only — Lookup/InsertPublished and spill/restore; the engine's
/// private in-flight dedup keeps its accounting in "engine.cache_hits".
std::string HandleCache(DfsServer& server) {
  const core::EvalCacheStats stats = server.eval_caches().Stats();
  obs::MetricsRegistry::Global().gauge("cache.entries").Set(
      static_cast<int64_t>(stats.entries));
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  object["caches"] = JsonValue::Number(static_cast<double>(stats.caches));
  object["entries"] = JsonValue::Number(static_cast<double>(stats.entries));
  object["hits"] = JsonValue::Number(static_cast<double>(stats.hits));
  object["misses"] = JsonValue::Number(static_cast<double>(stats.misses));
  object["filter_negatives"] =
      JsonValue::Number(static_cast<double>(stats.filter_negatives));
  object["filter_false_positives"] =
      JsonValue::Number(static_cast<double>(stats.filter_false_positives));
  object["inserts"] = JsonValue::Number(static_cast<double>(stats.inserts));
  object["spills"] = JsonValue::Number(static_cast<double>(stats.spills));
  object["restores"] =
      JsonValue::Number(static_cast<double>(stats.restores));
  std::vector<std::string> occupancy;
  occupancy.reserve(stats.shard_entries.size());
  for (const size_t entries : stats.shard_entries) {
    occupancy.push_back(std::to_string(entries));
  }
  object["shard_entries"] = JsonValue::String(Join(occupancy, " "));
  return WriteJsonLine(object);
}

/// The "metrics" verb: the dfs::obs registry snapshot flattened onto the
/// wire's flat-JSON shape. Counters and gauges keep their registry names;
/// a histogram <h> becomes "<h>.count", "<h>.sum", "<h>.mean", "<h>.max",
/// "<h>.p50/.p90/.p99" plus "<h>.buckets", a "bound:count ..." string of
/// its non-empty buckets ("+inf" for the overflow bucket). The serve
/// gauges are refreshed from live server state first, so queue depth and
/// running count are current even while jobs are moving.
std::string HandleMetrics(DfsServer& server) {
  auto& registry = obs::MetricsRegistry::Global();
  const ServerStats stats = server.Stats();
  registry.gauge("serve.queue_depth")
      .Set(static_cast<int64_t>(stats.queue_depth));
  registry.gauge("serve.running").Set(stats.running);
  registry.gauge("serve.retained_jobs")
      .Set(static_cast<int64_t>(stats.retained_jobs));

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  JsonObject object;
  object["ok"] = JsonValue::Bool(true);
  for (const auto& [name, value] : snapshot.counters) {
    object[name] = JsonValue::Number(static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    object[name] = JsonValue::Number(static_cast<double>(value));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    object[name + ".count"] =
        JsonValue::Number(static_cast<double>(h.count));
    object[name + ".sum"] = JsonValue::Number(h.sum);
    object[name + ".mean"] = JsonValue::Number(h.mean());
    object[name + ".max"] = JsonValue::Number(h.max);
    object[name + ".p50"] = JsonValue::Number(h.Quantile(0.5));
    object[name + ".p90"] = JsonValue::Number(h.Quantile(0.9));
    object[name + ".p99"] = JsonValue::Number(h.Quantile(0.99));
    std::vector<std::string> buckets;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      char bound[40];
      if (i < h.bounds.size()) {
        std::snprintf(bound, sizeof(bound), "%.3g", h.bounds[i]);
      } else {
        std::snprintf(bound, sizeof(bound), "+inf");
      }
      buckets.push_back(std::string(bound) + ":" +
                        std::to_string(h.counts[i]));
    }
    object[name + ".buckets"] = JsonValue::String(Join(buckets, " "));
  }
  return WriteJsonLine(object);
}

}  // namespace

DispatchResult Dispatch(DfsServer& server, const std::string& line) {
  auto request = ParseRequestLine(line);
  if (!request.ok()) return {ErrorResponse(request.status()), false};
  switch (request->op) {
    case Request::Op::kSubmit:
      return {HandleSubmit(server, request->submit), false};
    case Request::Op::kStatus:
      return {HandleStatus(server, request->id), false};
    case Request::Op::kResult:
      return {HandleResult(server, request->id), false};
    case Request::Op::kCancel:
      return {HandleCancel(server, request->id), false};
    case Request::Op::kStats:
      return {HandleStats(server), false};
    case Request::Op::kMetrics:
      return {HandleMetrics(server), false};
    case Request::Op::kRouter:
      return {HandleRouter(server), false};
    case Request::Op::kCache:
      return {HandleCache(server), false};
    case Request::Op::kPing: {
      JsonObject object;
      object["ok"] = JsonValue::Bool(true);
      object["service"] = JsonValue::String("dfs-serve");
      object["protocol"] = JsonValue::Number(1);
      return {WriteJsonLine(object), false};
    }
    case Request::Op::kShutdown: {
      JsonObject object;
      object["ok"] = JsonValue::Bool(true);
      object["shutting_down"] = JsonValue::Bool(true);
      return {WriteJsonLine(object), true};
    }
  }
  return {ErrorResponse(InternalError("unhandled op")), false};
}

bool ServeConnection(DfsServer& server, LineChannel& channel) {
  while (true) {
    auto line = channel.ReadLine();
    if (!line.ok()) return false;  // peer closed or I/O error
    if (Strip(*line).empty()) continue;
    const DispatchResult result = Dispatch(server, *line);
    if (!channel.WriteLine(result.response).ok()) return false;
    if (result.shutdown_requested) return true;
  }
}

}  // namespace dfs::serve
