#ifndef DFS_SERVE_EVENT_LOOP_H_
#define DFS_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/tcp.h"
#include "util/statusor.h"

namespace dfs::serve {

/// The epoll event-loop front-end (DESIGN.md §2j): one blocking acceptor
/// thread plus a small pool of I/O threads, each multiplexing thousands of
/// non-blocking connections on its own epoll instance. Connection state
/// machines own their per-channel read/write buffers (1 MiB line cap,
/// same as LineChannel); complete request lines dispatch on the I/O thread
/// through the same Dispatch() as the thread-per-connection path, so the
/// wire protocol is byte-identical. The worker fleet behind DfsServer is
/// untouched — the event loop only replaces how bytes reach Dispatch.
///
/// Admission control / load shedding:
///   * Request shed: when `shed_watermark > 0` and the server's bounded
///     job-queue depth has reached the watermark, canonically-encoded
///     submit lines are answered with ShedResponse() immediately — the
///     front-end never pays constraint parsing, fingerprinting, or routing
///     for work the queue would reject anyway. Non-submit verbs (status
///     polls, result fetches, cancels) are never shed.
///   * Accept shed: past `max_connections` open channels, a newly accepted
///     connection gets one best-effort AcceptShedResponse() line and is
///     closed — fd pressure degrades gracefully instead of exhausting the
///     process fd table.
/// Both responses carry the existing "queue_full" error tag, so clients
/// already treating it as backpressure need no changes.
struct EventLoopOptions {
  /// TCP port; 0 picks an ephemeral port (see port()).
  int port = 0;
  bool loopback_only = true;
  /// Epoll I/O threads multiplexing the connections (clamped to [1, 64]).
  int io_threads = 2;
  /// Accept-time shed threshold: open channels beyond this are answered
  /// with AcceptShedResponse() and closed.
  size_t max_connections = 4096;
  /// Submit-request shed threshold over DfsServer::QueueDepth();
  /// 0 disables request shedding (the bounded queue still rejects).
  size_t shed_watermark = 0;
  /// A peer that stops reading while responses accumulate past this many
  /// buffered bytes is disconnected (slow-reader protection).
  size_t max_write_buffer_bytes = 4u << 20;
};

/// The exact bytes of the admission-control shed line (no trailing '\n').
/// Wire-stable: tests byte-compare against it, clients match the
/// "queue_full" tag.
std::string ShedResponse();

/// The exact bytes of the accept-time fd-pressure shed line.
std::string AcceptShedResponse();

class EventLoopFrontEnd {
 public:
  /// `server` must outlive the front-end.
  EventLoopFrontEnd(DfsServer& server, EventLoopOptions options = {});
  ~EventLoopFrontEnd();

  EventLoopFrontEnd(const EventLoopFrontEnd&) = delete;
  EventLoopFrontEnd& operator=(const EventLoopFrontEnd&) = delete;

  /// Binds, listens, and starts the acceptor + I/O threads.
  Status Start();

  /// The bound port (after Start).
  int port() const { return listener_.port(); }

  /// Initiates shutdown: stops accepting, wakes every I/O thread, flushes
  /// pending responses best-effort, closes all channels. Async-signal-safe
  /// (atomic store, shutdown(2), write(2) to an eventfd) so dfs_serverd's
  /// SIGTERM/SIGINT handlers may call it directly. Idempotent.
  void RequestStop();

  /// Blocks until the front-end has stopped (RequestStop from any thread,
  /// a signal handler, or a client "shutdown" verb), then joins the
  /// acceptor and I/O threads. Returns true if a client requested the
  /// shutdown over the wire.
  bool Wait();

  /// Instantaneous open-channel count across all I/O threads.
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

  const EventLoopOptions& options() const { return options_; }

 private:
  class IoLoop;
  friend class IoLoop;

  void AcceptLoop();

  DfsServer& server_;
  EventLoopOptions options_;
  TcpListener listener_;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> client_shutdown_{false};
  std::atomic<size_t> open_connections_{0};
  size_t next_loop_ = 0;  ///< acceptor-thread only (round-robin assignment)
};

}  // namespace dfs::serve

#endif  // DFS_SERVE_EVENT_LOOP_H_
