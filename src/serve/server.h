#ifndef DFS_SERVE_SERVER_H_
#define DFS_SERVE_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eval_cache.h"
#include "core/optimizer.h"
#include "data/dataset.h"
#include "fs/registry.h"
#include "router/router.h"
#include "serve/job.h"
#include "serve/job_queue.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace dfs::serve {

/// Static configuration of a DfsServer.
struct ServerOptions {
  /// Worker threads executing jobs (minimum 1).
  int num_workers = 4;
  /// Bounded queue capacity; a full queue rejects submissions
  /// (backpressure) instead of blocking.
  size_t queue_capacity = 64;
  /// Terminal jobs (and their results) are retained for this long so
  /// clients can poll; older ones are evicted.
  double result_ttl_seconds = 300.0;
  /// Hard cap on retained jobs regardless of TTL (oldest-terminal-first
  /// eviction). Non-terminal jobs are never evicted.
  size_t max_retained_jobs = 4096;
  /// Row scale for benchmark-suite datasets generated on demand.
  double dataset_row_scale = 1.0;
  /// Seed for dataset generation and scenario splitting.
  uint64_t seed = 7;
  /// Strategy used for "auto" requests when no meta-optimizer is loaded
  /// (SFFS(NR) is the paper's best all-round single strategy). Overrides
  /// router.default_strategy at construction.
  std::string default_auto_strategy = "SFFS(NR)";
  /// Strategy-routing configuration ("auto" resolution lives in
  /// dfs::router; see router/router.h for policies and the online loop).
  router::RouterOptions router;
  /// Share wrapper evaluations across jobs: each job's engine gets the
  /// eval-cache registry's shared L2 cache for its evaluation-context
  /// fingerprint (dataset + model + constraint set + seed + engine
  /// options), so a resubmitted or similar job reuses prior trainings.
  /// The registry is also what dfs_serverd spills to --eval-cache-state
  /// across restarts (docs/CACHE.md).
  bool share_eval_cache = true;
};

/// Monotonic service counters plus instantaneous gauges. Once the system
/// is quiescent (no queued or running jobs), the counters reconcile:
/// accepted == completed + failed + cancelled + timed_out. A concurrent
/// snapshot reads the counters and gauges under separate locks, so it can
/// transiently miss a job in flight between them (popped but not yet
/// running, or finished but not yet counted terminal) — treat
/// accepted == terminal() + queue_depth + running as approximate while
/// jobs are moving. Rejected submissions are never part of accepted.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;   ///< kQueueFull backpressure rejections
  uint64_t completed = 0;  ///< reached DONE
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t timed_out = 0;
  uint64_t evaluations = 0;  ///< wrapper evaluations across all jobs

  size_t queue_depth = 0;
  int running = 0;
  size_t retained_jobs = 0;

  double queue_seconds_total = 0.0;  ///< terminal jobs' time spent queued
  double run_seconds_total = 0.0;    ///< terminal jobs' time spent running
  double run_seconds_max = 0.0;

  uint64_t terminal() const {
    return completed + failed + cancelled + timed_out;
  }
};

/// Client-facing snapshot of one job.
struct JobStatusView {
  JobId id = 0;
  JobState state = JobState::kQueued;
  int priority = 0;
  std::string strategy;  ///< as requested ("auto" until resolved)
  std::string error;     ///< FAILED details
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

/// The DFS job service: a bounded job queue feeding a fixed worker fleet,
/// each worker running one DfsEngine search per job with cooperative
/// cancellation, plus a TTL-bounded result store and service counters.
///
///   DfsServer server({.num_workers = 4});
///   server.RegisterDataset("loans", dataset);
///   auto id = server.Submit({.dataset = "loans", .strategy = "auto",
///                            .constraint_set = constraints});
///   server.WaitForTerminal(*id, /*timeout_seconds=*/60);
///   auto result = server.GetResult(*id);
///
/// All public methods are thread-safe; the TCP front-end calls them from
/// one thread per connection.
class DfsServer {
 public:
  explicit DfsServer(ServerOptions options = {});
  ~DfsServer();

  DfsServer(const DfsServer&) = delete;
  DfsServer& operator=(const DfsServer&) = delete;

  /// Makes `dataset` addressable by JobRequest::dataset. Replaces any
  /// previous dataset of the same name (future jobs only).
  void RegisterDataset(const std::string& name, data::Dataset dataset);

  /// Installs a trained meta-optimizer into the router; "auto" jobs then
  /// use Algorithm 1's deployment phase through the configured policy.
  void SetOptimizer(core::DfsOptimizer optimizer);

  /// The strategy router owning "auto" resolution (policy, online feedback
  /// loop, snapshot/restore; see router/router.h).
  router::StrategyRouter& router() { return *router_; }
  const router::StrategyRouter& router() const { return *router_; }

  /// The routing decision stamped on an "auto" job at submission; nullopt
  /// for explicit-strategy jobs, unrouted jobs, and unknown ids.
  std::optional<router::RouteDecision> GetRoute(JobId id) const;

  /// The shared eval-cache registry (one cache per evaluation-context
  /// fingerprint; see ServerOptions::share_eval_cache). The daemon spills
  /// and restores it through --eval-cache-state; the `cache` verb reports
  /// its Stats().
  core::EvalCacheRegistry& eval_caches() { return eval_caches_; }
  const core::EvalCacheRegistry& eval_caches() const { return eval_caches_; }

  /// Submits a job. Errors: ResourceExhausted (queue full — retry later),
  /// FailedPrecondition (server shutting down).
  StatusOr<JobId> Submit(const JobRequest& request);

  /// NotFound once a job has been evicted from the result store.
  StatusOr<JobStatusView> GetStatus(JobId id) const;

  /// Result of a DONE (or best-effort TIMED_OUT) job. Errors: NotFound,
  /// FailedPrecondition (not terminal yet), Cancelled, Internal (FAILED).
  StatusOr<JobResult> GetResult(JobId id) const;

  /// Requests cancellation. A queued job is cancelled immediately; a
  /// running job stops within one wrapper evaluation (the engine's stop
  /// token is checked at every evaluation boundary). Errors: NotFound,
  /// FailedPrecondition (already in a non-cancelled terminal state).
  Status Cancel(JobId id);

  /// Blocks until the job is terminal or `timeout_seconds` elapse; returns
  /// DeadlineExceeded on timeout, NotFound if unknown/evicted.
  Status WaitForTerminal(JobId id, double timeout_seconds) const;

  ServerStats Stats() const;

  /// Instantaneous bounded-queue depth (one lock acquisition). The event
  /// loop's admission control polls this per submit line (DESIGN.md §2j).
  size_t QueueDepth() const;

  /// Stops the fleet. With `cancel_pending` (default) queued jobs are
  /// cancelled and running jobs get their stop token flipped, so shutdown
  /// completes within about one wrapper evaluation; otherwise the fleet
  /// drains the queue first. Idempotent; also called by the destructor.
  void Shutdown(bool cancel_pending = true);

  const ServerOptions& options() const { return options_; }

 private:
  /// Terminal state a finished execution should transition to, plus the
  /// evaluation count to charge to the stats.
  struct JobOutcome {
    JobState state;
    int evaluations = 0;
  };

  void WorkerLoop();
  /// Runs the search for `job` (already RUNNING) and fills its result or
  /// error, but does NOT transition the state — the worker loop does that
  /// after dropping the running gauge.
  JobOutcome ExecuteJob(Job& job);
  Status CancelJob(const std::shared_ptr<Job>& job);
  void RecordTerminal(const Job& job, int evaluations);
  /// Feeds a terminal routed job's outcome back to the router (DONE uses
  /// the result's success flag, TIMED_OUT counts as failure; other terminal
  /// states say nothing about the strategy and are skipped).
  void ReportRouteOutcome(const Job& job);
  StatusOr<std::shared_ptr<const data::Dataset>> ResolveDataset(
      const std::string& name);
  /// Evicts expired / over-cap terminal jobs.
  void SweepLocked() DFS_REQUIRES(jobs_mu_);

  ServerOptions options_;
  JobQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> accepting_{true};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int> running_{0};

  mutable util::Mutex jobs_mu_;
  mutable util::CondVar terminal_cv_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_
      DFS_GUARDED_BY(jobs_mu_);

  mutable util::Mutex datasets_mu_;
  std::map<std::string, std::shared_ptr<const data::Dataset>> datasets_
      DFS_GUARDED_BY(datasets_mu_);

  /// Owns "auto" resolution; constructed before the workers start and
  /// destroyed after they join, so worker threads use it lock-free.
  std::unique_ptr<router::StrategyRouter> router_;

  /// Shared L2 eval caches keyed by evaluation-context fingerprint
  /// (internally synchronized; workers attach per-job caches from it).
  core::EvalCacheRegistry eval_caches_;

  mutable util::Mutex stats_mu_;
  ServerStats stats_ DFS_GUARDED_BY(stats_mu_);

  /// Serializes Shutdown and makes it idempotent (a second caller blocks
  /// until the first finishes, then sees shutdown_done_). Replaces the
  /// previous std::once_flag with the annotated idiom.
  util::Mutex shutdown_mu_;
  bool shutdown_done_ DFS_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace dfs::serve

#endif  // DFS_SERVE_SERVER_H_
