#ifndef DFS_SERVE_TCP_H_
#define DFS_SERVE_TCP_H_

#include <string>

#include "util/statusor.h"

namespace dfs::serve {

/// Thin POSIX TCP wrappers for the line-protocol front-end. Deliberately
/// minimal: blocking sockets, loopback-first defaults, no TLS — the
/// service is meant to sit behind a trusted edge.

/// Hard cap on one protocol line (request or response). A peer that
/// streams more than this without a newline gets its connection failed
/// with ResourceExhausted instead of growing the buffer without bound.
inline constexpr size_t kMaxLineBytes = 1 << 20;  // 1 MiB

/// A listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  /// `loopback_only` binds 127.0.0.1 instead of all interfaces.
  Status Listen(int port, bool loopback_only = true);

  /// The bound port (after Listen).
  int port() const { return port_; }

  /// Blocks for one client; returns the connected fd. After
  /// InterruptAccept() or Close() returns Cancelled.
  StatusOr<int> Accept() const;

  /// Wakes a concurrently blocked Accept without invalidating the fd:
  /// ::shutdown(2) only, so any thread may call this while the owner is
  /// in Accept. The owner remains responsible for Close() (closing from
  /// another thread would race Accept and risk fd reuse).
  void InterruptAccept();

  /// Closes the listening socket. Owner-only: must not run concurrently
  /// with Accept — use InterruptAccept to stop the accept loop first.
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to host:port ("127.0.0.1", "::1" or a hostname); returns the
/// connected fd.
StatusOr<int> TcpConnect(const std::string& host, int port);

/// Buffered newline-delimited reader/writer over a connected fd. Owns the
/// fd and closes it on destruction.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Next line without its trailing '\n' (a final unterminated line is
  /// returned as-is). NotFound on clean EOF, Internal on I/O errors,
  /// ResourceExhausted once a line exceeds kMaxLineBytes.
  StatusOr<std::string> ReadLine();

  /// Writes `line` plus '\n'. A disconnected peer surfaces as an error
  /// (EPIPE/ECONNRESET), never as SIGPIPE.
  Status WriteLine(const std::string& line);

  /// Half-close from another thread: ::shutdown(2) on the socket so a
  /// blocked ReadLine returns EOF promptly. The fd stays valid until the
  /// owning thread destroys the channel (closing it here would race the
  /// reader).
  void ShutdownSocket();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace dfs::serve

#endif  // DFS_SERVE_TCP_H_
