#ifndef DFS_METRICS_FAIRNESS_H_
#define DFS_METRICS_FAIRNESS_H_

#include <vector>

namespace dfs::metrics {

/// Equal opportunity (Hardt, Price & Srebro 2016), as used in Section 3:
///
///   EO = 1 - | TPR_minority - TPR_majority |
///
/// where TPR is the true-positive rate among instances with Y = 1 in each
/// sensitive group (groups: 0 = majority, 1 = minority). Returns 1 when a
/// group has no positive instances (no measurable gap).
double EqualOpportunity(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred,
                        const std::vector<int>& groups);

/// Statistical parity difference | P(ŷ=1 | minority) - P(ŷ=1 | majority) |,
/// reported as 1 - gap for consistency with EO (1 = perfectly fair).
/// Provided as an alternative fairness metric (Section 3 notes the framework
/// accepts any metric with the same inputs).
double StatisticalParity(const std::vector<int>& y_pred,
                         const std::vector<int>& groups);

/// Generalized entropy index of the benefit distribution b_i = ŷ_i - y_i + 1
/// (Speicher et al. 2018, cited as an alternative fairness metric in
/// Section 3), with the standard α = 2 parameterization. 0 = perfectly even
/// benefits; larger = more individual/group unfairness. Reported raw (not
/// 1 - x) because it is unbounded above.
double GeneralizedEntropyIndex(const std::vector<int>& y_true,
                               const std::vector<int>& y_pred,
                               double alpha = 2.0);

/// Disparate impact ratio P(ŷ=1 | minority) / P(ŷ=1 | majority), clamped to
/// [0, 1] by taking min(ratio, 1/ratio); the legal "80% rule" checks
/// DisparateImpact >= 0.8. Returns 1 when either group is empty or neither
/// group receives positive predictions.
double DisparateImpact(const std::vector<int>& y_pred,
                       const std::vector<int>& groups);

}  // namespace dfs::metrics

#endif  // DFS_METRICS_FAIRNESS_H_
