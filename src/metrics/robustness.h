#ifndef DFS_METRICS_ROBUSTNESS_H_
#define DFS_METRICS_ROBUSTNESS_H_

#include <vector>

#include "linalg/matrix.h"
#include "metrics/hop_skip_jump.h"
#include "ml/classifier.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace dfs::metrics {

/// Configuration of the empirical-robustness measurement.
struct RobustnessOptions {
  /// Test rows actually attacked (subsampled for tractability); the
  /// remaining rows keep their original predictions.
  int max_attacked_rows = 24;
  HopSkipJumpOptions attack;
};

/// Empirical robustness per Section 3 of the paper: attack (a subsample of)
/// the test set with HopSkipJump, then compare F1 before and after,
///
///   Safety = 1 - (F1(Test_original) - F1(Test_attacked)),
///
/// clamped into [0, 1]. 1 means the attack changed nothing. (The paper's
/// formula omits the parentheses; the cited ART implementation computes the
/// accuracy *drop*, which is what we reproduce.)
// DFS_ALLOC_BOUNDARY: the attack builds perturbed row copies by design;
// it runs only when the safety constraint is active, outside the §2e
// zero-alloc warm path (DESIGN.md §2k).
double EmpiricalRobustness(const ml::Classifier& model,
                           const linalg::Matrix& test_x,
                           const std::vector<int>& test_y, Rng& rng,
                           const RobustnessOptions& options = {})
    DFS_ALLOC_BOUNDARY;

}  // namespace dfs::metrics

#endif  // DFS_METRICS_ROBUSTNESS_H_
