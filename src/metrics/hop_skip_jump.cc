#include "metrics/hop_skip_jump.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace dfs::metrics {
namespace {

double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(linalg::SquaredDistance(a, b));
}

}  // namespace

std::optional<std::vector<double>> HopSkipJumpAttack::Attack(
    const ml::Classifier& model, std::span<const double> row,
    Rng& rng) const {
  last_query_count_ = 0;
  const int d = static_cast<int>(row.size());
  if (d == 0) return std::nullopt;

  int queries_left = options_.max_queries;
  auto query = [&](std::span<const double> point) -> int {
    --queries_left;
    ++last_query_count_;
    return model.Predict(point);
  };

  const int original_class = query(row);

  // All working vectors are sized once and swapped/overwritten in place:
  // the query loop below runs hundreds of times per attacked row, and per-
  // probe allocation used to dominate it.
  std::vector<double> adversarial;
  std::vector<double> candidate(d);
  std::vector<double> inside(d);
  std::vector<double> midpoint(d);
  std::vector<double> u(d);
  std::vector<double> probe(d);
  std::vector<double> direction(d);

  // Phase 1: find any point of the other class inside the unit box.
  for (int trial = 0; trial < options_.init_trials && queries_left > 0;
       ++trial) {
    for (int c = 0; c < d; ++c) candidate[c] = rng.Uniform();
    if (query(candidate) != original_class) {
      adversarial = std::move(candidate);
      break;
    }
  }
  if (adversarial.empty()) return std::nullopt;
  candidate.resize(d);  // re-arm after the move into `adversarial`

  // Phase 2/3 helper: bisect between `row` (inside) and the adversarial
  // point, leaving the closest adversarial point on the segment in
  // `adversarial`. Buffers rotate by swap; nothing is reallocated.
  auto project_to_boundary = [&]() {
    inside.assign(row.begin(), row.end());
    for (int step = 0;
         step < options_.boundary_search_steps && queries_left > 0; ++step) {
      for (int c = 0; c < d; ++c) {
        midpoint[c] = 0.5 * (inside[c] + adversarial[c]);
      }
      if (query(midpoint) != original_class) {
        std::swap(adversarial, midpoint);
      } else {
        std::swap(inside, midpoint);
      }
    }
  };

  project_to_boundary();

  // Phase 3: gradient-direction estimation + geometric step, as in
  // HopSkipJump. phi(u) = +1 if stepping to `adversarial + delta u` stays
  // adversarial.
  for (int iteration = 0;
       iteration < options_.iterations && queries_left > 0; ++iteration) {
    const double current_distance = Distance(adversarial, row);
    const double delta =
        std::max(1e-3, 0.1 * current_distance / std::sqrt(iteration + 1.0));

    std::fill(direction.begin(), direction.end(), 0.0);
    for (int s = 0; s < options_.gradient_samples && queries_left > 0; ++s) {
      double norm = 0.0;
      for (int c = 0; c < d; ++c) {
        u[c] = rng.Normal();
        norm += u[c] * u[c];
      }
      norm = std::sqrt(std::max(norm, 1e-12));
      for (int c = 0; c < d; ++c) {
        probe[c] = Clamp(adversarial[c] + delta * u[c] / norm, 0.0, 1.0);
      }
      const double phi = query(probe) != original_class ? 1.0 : -1.0;
      for (int c = 0; c < d; ++c) direction[c] += phi * u[c] / norm;
    }
    double direction_norm = linalg::Norm2(direction);
    if (direction_norm < 1e-12) break;
    for (int c = 0; c < d; ++c) direction[c] /= direction_norm;

    // Geometric step search: start with xi = distance / sqrt(t), halve until
    // the step stays adversarial.
    double step = current_distance / std::sqrt(iteration + 1.0);
    bool moved = false;
    while (step > 1e-4 && queries_left > 0) {
      for (int c = 0; c < d; ++c) {
        candidate[c] = Clamp(adversarial[c] + step * direction[c], 0.0, 1.0);
      }
      if (query(candidate) != original_class) {
        std::swap(adversarial, candidate);
        moved = true;
        break;
      }
      step *= 0.5;
    }
    if (!moved) break;
    project_to_boundary();
  }

  if (Distance(adversarial, row) <= options_.max_l2_distance) {
    return adversarial;
  }
  return std::nullopt;
}

}  // namespace dfs::metrics
