#include "metrics/hop_skip_jump.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace dfs::metrics {
namespace {

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(linalg::SquaredDistance(a, b));
}

}  // namespace

std::optional<std::vector<double>> HopSkipJumpAttack::Attack(
    const ml::Classifier& model, const std::vector<double>& row,
    Rng& rng) const {
  last_query_count_ = 0;
  const int d = static_cast<int>(row.size());
  if (d == 0) return std::nullopt;

  int queries_left = options_.max_queries;
  auto query = [&](const std::vector<double>& point) -> int {
    --queries_left;
    ++last_query_count_;
    return model.Predict(point);
  };

  const int original_class = query(row);

  // Phase 1: find any point of the other class inside the unit box.
  std::vector<double> adversarial;
  for (int trial = 0; trial < options_.init_trials && queries_left > 0;
       ++trial) {
    std::vector<double> candidate(d);
    for (int c = 0; c < d; ++c) candidate[c] = rng.Uniform();
    if (query(candidate) != original_class) {
      adversarial = std::move(candidate);
      break;
    }
  }
  if (adversarial.empty()) return std::nullopt;

  // Phase 2/3 helper: bisect between `row` (inside) and an adversarial
  // point, returning the closest adversarial point on the segment.
  auto project_to_boundary = [&](std::vector<double> outside) {
    std::vector<double> inside = row;
    for (int step = 0;
         step < options_.boundary_search_steps && queries_left > 0; ++step) {
      std::vector<double> midpoint(d);
      for (int c = 0; c < d; ++c) {
        midpoint[c] = 0.5 * (inside[c] + outside[c]);
      }
      if (query(midpoint) != original_class) {
        outside = std::move(midpoint);
      } else {
        inside = std::move(midpoint);
      }
    }
    return outside;
  };

  adversarial = project_to_boundary(std::move(adversarial));

  // Phase 3: gradient-direction estimation + geometric step, as in
  // HopSkipJump. phi(u) = +1 if stepping to `adversarial + delta u` stays
  // adversarial.
  for (int iteration = 0;
       iteration < options_.iterations && queries_left > 0; ++iteration) {
    const double current_distance = Distance(adversarial, row);
    const double delta =
        std::max(1e-3, 0.1 * current_distance / std::sqrt(iteration + 1.0));

    std::vector<double> direction(d, 0.0);
    for (int s = 0; s < options_.gradient_samples && queries_left > 0; ++s) {
      std::vector<double> u(d);
      double norm = 0.0;
      for (int c = 0; c < d; ++c) {
        u[c] = rng.Normal();
        norm += u[c] * u[c];
      }
      norm = std::sqrt(std::max(norm, 1e-12));
      std::vector<double> probe(d);
      for (int c = 0; c < d; ++c) {
        probe[c] = Clamp(adversarial[c] + delta * u[c] / norm, 0.0, 1.0);
      }
      const double phi = query(probe) != original_class ? 1.0 : -1.0;
      for (int c = 0; c < d; ++c) direction[c] += phi * u[c] / norm;
    }
    double direction_norm = linalg::Norm2(direction);
    if (direction_norm < 1e-12) break;
    for (int c = 0; c < d; ++c) direction[c] /= direction_norm;

    // Geometric step search: start with xi = distance / sqrt(t), halve until
    // the step stays adversarial.
    double step = current_distance / std::sqrt(iteration + 1.0);
    bool moved = false;
    while (step > 1e-4 && queries_left > 0) {
      std::vector<double> candidate(d);
      for (int c = 0; c < d; ++c) {
        candidate[c] = Clamp(adversarial[c] + step * direction[c], 0.0, 1.0);
      }
      if (query(candidate) != original_class) {
        adversarial = std::move(candidate);
        moved = true;
        break;
      }
      step *= 0.5;
    }
    if (!moved) break;
    adversarial = project_to_boundary(std::move(adversarial));
  }

  if (Distance(adversarial, row) <= options_.max_l2_distance) {
    return adversarial;
  }
  return std::nullopt;
}

}  // namespace dfs::metrics
