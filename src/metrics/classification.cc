#include "metrics/classification.h"

#include "util/logging.h"

namespace dfs::metrics {

ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred) {
  DFS_CHECK_EQ(y_true.size(), y_pred.size());
  ConfusionMatrix confusion;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      (y_pred[i] == 1 ? confusion.true_positives : confusion.false_negatives)++;
    } else {
      (y_pred[i] == 1 ? confusion.false_positives : confusion.true_negatives)++;
    }
  }
  return confusion;
}

double Precision(const ConfusionMatrix& confusion) {
  const int denominator = confusion.true_positives + confusion.false_positives;
  return denominator > 0
             ? static_cast<double>(confusion.true_positives) / denominator
             : 0.0;
}

double Recall(const ConfusionMatrix& confusion) {
  const int denominator = confusion.true_positives + confusion.false_negatives;
  return denominator > 0
             ? static_cast<double>(confusion.true_positives) / denominator
             : 0.0;
}

double F1Score(const ConfusionMatrix& confusion) {
  const double precision = Precision(confusion);
  const double recall = Recall(confusion);
  return precision + recall > 0.0
             ? 2.0 * precision * recall / (precision + recall)
             : 0.0;
}

double F1Score(const std::vector<int>& y_true,
               const std::vector<int>& y_pred) {
  return F1Score(ComputeConfusion(y_true, y_pred));
}

double Accuracy(const ConfusionMatrix& confusion) {
  const int total = confusion.total();
  return total > 0 ? static_cast<double>(confusion.true_positives +
                                         confusion.true_negatives) /
                         total
                   : 0.0;
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  return Accuracy(ComputeConfusion(y_true, y_pred));
}

double TruePositiveRate(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred) {
  return Recall(ComputeConfusion(y_true, y_pred));
}

}  // namespace dfs::metrics
