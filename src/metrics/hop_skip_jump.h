#ifndef DFS_METRICS_HOP_SKIP_JUMP_H_
#define DFS_METRICS_HOP_SKIP_JUMP_H_

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "util/rng.h"

namespace dfs::metrics {

/// Configuration of the decision-based evasion attack.
struct HopSkipJumpOptions {
  int max_queries = 250;        ///< hard budget of model queries per point
  int boundary_search_steps = 8;   ///< bisection steps per projection
  int gradient_samples = 12;    ///< Monte-Carlo directions per iteration
  int iterations = 3;           ///< gradient-estimation + step rounds
  int init_trials = 12;         ///< random restarts to find a starting point
  double max_l2_distance = 0.75;   ///< success radius (features are in [0,1])
};

/// From-scratch HopSkipJump-style black-box evasion attack (Chen, Jordan &
/// Wainwright 2020): only the model's hard decisions are observed. Phases:
/// (1) find any misclassified starting point (random probes in the unit
/// box), (2) bisect toward the original to land on the decision boundary,
/// (3) iterate Monte-Carlo gradient-direction estimation with geometric step
/// search, re-projecting onto the boundary. The attack succeeds if a
/// misclassified point within `max_l2_distance` of the original is found
/// inside the query budget.
class HopSkipJumpAttack {
 public:
  explicit HopSkipJumpAttack(const HopSkipJumpOptions& options = {})
      : options_(options) {}

  /// Attacks one row. Returns the adversarial example, or nullopt if none
  /// was found within budget/radius. `model` must be fitted on the same
  /// feature space as `row`. The span is borrowed for the duration of the
  /// call only (rows typically come straight from a Matrix::RowSpan); all
  /// model queries go through the span PredictProba kernel, and the
  /// attack's working vectors are hoisted so the query loop allocates
  /// nothing per probe.
  std::optional<std::vector<double>> Attack(const ml::Classifier& model,
                                            std::span<const double> row,
                                            Rng& rng) const;

  /// Convenience overload for owned rows (spans have no initializer-list
  /// constructor, so `Attack(model, {0.4, 0.5}, rng)` resolves here).
  std::optional<std::vector<double>> Attack(const ml::Classifier& model,
                                            const std::vector<double>& row,
                                            Rng& rng) const {
    return Attack(model, std::span<const double>(row), rng);
  }

  /// Model queries consumed by the most recent Attack call.
  int last_query_count() const { return last_query_count_; }

 private:
  HopSkipJumpOptions options_;
  mutable int last_query_count_ = 0;
};

}  // namespace dfs::metrics

#endif  // DFS_METRICS_HOP_SKIP_JUMP_H_
