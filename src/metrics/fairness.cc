#include "metrics/fairness.h"

#include <cmath>

#include "util/logging.h"

namespace dfs::metrics {

double EqualOpportunity(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred,
                        const std::vector<int>& groups) {
  DFS_CHECK_EQ(y_true.size(), y_pred.size());
  DFS_CHECK_EQ(y_true.size(), groups.size());
  double positives[2] = {0.0, 0.0};
  double true_positives[2] = {0.0, 0.0};
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] != 1) continue;
    positives[groups[i]] += 1.0;
    if (y_pred[i] == 1) true_positives[groups[i]] += 1.0;
  }
  if (positives[0] == 0.0 || positives[1] == 0.0) return 1.0;
  const double tpr_majority = true_positives[0] / positives[0];
  const double tpr_minority = true_positives[1] / positives[1];
  return 1.0 - std::fabs(tpr_minority - tpr_majority);
}

double StatisticalParity(const std::vector<int>& y_pred,
                         const std::vector<int>& groups) {
  DFS_CHECK_EQ(y_pred.size(), groups.size());
  double count[2] = {0.0, 0.0};
  double predicted_positive[2] = {0.0, 0.0};
  for (size_t i = 0; i < y_pred.size(); ++i) {
    count[groups[i]] += 1.0;
    if (y_pred[i] == 1) predicted_positive[groups[i]] += 1.0;
  }
  if (count[0] == 0.0 || count[1] == 0.0) return 1.0;
  return 1.0 - std::fabs(predicted_positive[1] / count[1] -
                         predicted_positive[0] / count[0]);
}

double GeneralizedEntropyIndex(const std::vector<int>& y_true,
                               const std::vector<int>& y_pred, double alpha) {
  DFS_CHECK_EQ(y_true.size(), y_pred.size());
  DFS_CHECK_GT(alpha, 0.0);
  DFS_CHECK_NE(alpha, 1.0) << "alpha = 1 (Theil) not supported";
  const size_t n = y_true.size();
  if (n == 0) return 0.0;
  // Benefits b_i in {0, 1, 2}: 1 = correct, 2 = undeserved positive,
  // 0 = denied positive.
  double mean = 0.0;
  std::vector<double> benefits(n);
  for (size_t i = 0; i < n; ++i) {
    benefits[i] = static_cast<double>(y_pred[i] - y_true[i] + 1);
    mean += benefits[i];
  }
  mean /= static_cast<double>(n);
  if (mean <= 0.0) return 0.0;
  double total = 0.0;
  for (double b : benefits) {
    total += std::pow(b / mean, alpha) - 1.0;
  }
  return total / (static_cast<double>(n) * alpha * (alpha - 1.0));
}

double DisparateImpact(const std::vector<int>& y_pred,
                       const std::vector<int>& groups) {
  DFS_CHECK_EQ(y_pred.size(), groups.size());
  double count[2] = {0.0, 0.0};
  double positive[2] = {0.0, 0.0};
  for (size_t i = 0; i < y_pred.size(); ++i) {
    count[groups[i]] += 1.0;
    if (y_pred[i] == 1) positive[groups[i]] += 1.0;
  }
  if (count[0] == 0.0 || count[1] == 0.0) return 1.0;
  const double rate_majority = positive[0] / count[0];
  const double rate_minority = positive[1] / count[1];
  if (rate_majority == 0.0 && rate_minority == 0.0) return 1.0;
  if (rate_majority == 0.0 || rate_minority == 0.0) return 0.0;
  const double ratio = rate_minority / rate_majority;
  return std::min(ratio, 1.0 / ratio);
}

}  // namespace dfs::metrics
