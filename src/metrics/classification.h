#ifndef DFS_METRICS_CLASSIFICATION_H_
#define DFS_METRICS_CLASSIFICATION_H_

#include <vector>

namespace dfs::metrics {

/// Binary-classification confusion counts (positive class = 1).
struct ConfusionMatrix {
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;

  int total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
};

/// Tallies a confusion matrix; inputs must be equal-length 0/1 vectors.
ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred);

/// Precision TP / (TP + FP); 0 when undefined.
double Precision(const ConfusionMatrix& confusion);

/// Recall TP / (TP + FN); 0 when undefined.
double Recall(const ConfusionMatrix& confusion);

/// F1 = 2PR / (P + R); 0 when undefined. The paper's primary accuracy
/// measure ("we use the F1 score ... because it is robust against class
/// imbalance").
double F1Score(const ConfusionMatrix& confusion);
double F1Score(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Plain accuracy.
double Accuracy(const ConfusionMatrix& confusion);
double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred);

/// True-positive rate (= recall); 0 when the class has no positives.
double TruePositiveRate(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred);

}  // namespace dfs::metrics

#endif  // DFS_METRICS_CLASSIFICATION_H_
