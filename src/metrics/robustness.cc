#include "metrics/robustness.h"

#include <algorithm>

#include "metrics/classification.h"
#include "util/math_util.h"

namespace dfs::metrics {

double EmpiricalRobustness(const ml::Classifier& model,
                           const linalg::Matrix& test_x,
                           const std::vector<int>& test_y, Rng& rng,
                           const RobustnessOptions& options) {
  const int n = test_x.rows();
  DFS_CHECK_EQ(static_cast<int>(test_y.size()), n);
  if (n == 0) return 1.0;

  std::vector<int> original_predictions(n);
  for (int r = 0; r < n; ++r) {
    original_predictions[r] = model.Predict(test_x.RowSpan(r));
  }
  const double original_f1 = F1Score(test_y, original_predictions);

  // Attack a subsample; un-attacked rows keep their original predictions
  // but the F1 comparison stays on the full set, so the measured drop is a
  // conservative (lower) bound on the attack's effect.
  std::vector<int> rows =
      rng.SampleWithoutReplacement(n, std::min(n, options.max_attacked_rows));
  HopSkipJumpAttack attack(options.attack);
  std::vector<int> attacked_predictions = original_predictions;
  for (int r : rows) {
    auto adversarial = attack.Attack(model, test_x.RowSpan(r), rng);
    if (adversarial.has_value()) {
      attacked_predictions[r] = model.Predict(*adversarial);
    }
  }
  const double attacked_f1 = F1Score(test_y, attacked_predictions);
  return Clamp(1.0 - (original_f1 - attacked_f1), 0.0, 1.0);
}

}  // namespace dfs::metrics
