#include "linalg/lasso.h"

#include <cmath>

namespace dfs::linalg {
namespace {

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

}  // namespace

std::vector<double> LassoCoordinateDescent(const Matrix& x,
                                           const std::vector<double>& y,
                                           const LassoOptions& options) {
  const int n = x.rows();
  const int p = x.cols();
  DFS_CHECK_EQ(static_cast<int>(y.size()), n);
  std::vector<double> w(p, 0.0);
  if (n == 0 || p == 0) return w;

  // Precompute column squared norms (the coordinate-wise Lipschitz terms).
  std::vector<double> col_sq(p, 0.0);
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < n; ++i) col_sq[j] += x(i, j) * x(i, j);
  }

  // Residual r = y - Xw; starts at y because w = 0.
  std::vector<double> residual = y;
  const double n_double = static_cast<double>(n);

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    double max_change = 0.0;
    for (int j = 0; j < p; ++j) {
      if (col_sq[j] <= 1e-12) continue;  // constant-zero column
      // rho = (1/n) x_j . (r + w_j x_j)
      double rho = 0.0;
      for (int i = 0; i < n; ++i) rho += x(i, j) * residual[i];
      rho = rho / n_double + w[j] * col_sq[j] / n_double;
      double new_w = SoftThreshold(rho, options.l1_penalty) /
                     (col_sq[j] / n_double);
      double delta = new_w - w[j];
      if (delta != 0.0) {
        for (int i = 0; i < n; ++i) residual[i] -= delta * x(i, j);
        w[j] = new_w;
        max_change = std::max(max_change, std::fabs(delta));
      }
    }
    if (max_change < options.tolerance) break;
  }
  return w;
}

}  // namespace dfs::linalg
