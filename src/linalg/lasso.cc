#include "linalg/lasso.h"

#include <cmath>

#include "linalg/kernels.h"

namespace dfs::linalg {
namespace {

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

}  // namespace

std::vector<double> LassoCoordinateDescent(const Matrix& x,
                                           std::span<const double> y,
                                           const LassoOptions& options) {
  const int n = x.rows();
  const int p = x.cols();
  DFS_CHECK_EQ(static_cast<int>(y.size()), n);
  std::vector<double> w(p, 0.0);
  if (n == 0 || p == 0) return w;

  // Row-major base pointer: rows are contiguous, so x(i, j) == base[i*p + j].
  // This skips the per-element bounds checks of operator() in all the
  // O(n*p*iterations) loops below.
  const double* base = x.RowPtr(0);

  // Precompute column squared norms (the coordinate-wise Lipschitz terms).
  std::vector<double> col_sq(p, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = base + static_cast<size_t>(i) * p;
    for (int j = 0; j < p; ++j) col_sq[j] += row[j] * row[j];
  }

  // Residual r = y - Xw; starts at y because w = 0.
  std::vector<double> residual(y.begin(), y.end());
  const double n_double = static_cast<double>(n);

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    double max_change = 0.0;
    for (int j = 0; j < p; ++j) {
      if (col_sq[j] <= 1e-12) continue;  // constant-zero column
      // rho = (1/n) x_j . (r + w_j x_j)
      const double* col = base + j;
      double rho = kernels::StridedDot(col, static_cast<size_t>(p),
                                       residual.data(),
                                       static_cast<size_t>(n));
      rho = rho / n_double + w[j] * col_sq[j] / n_double;
      double new_w = SoftThreshold(rho, options.l1_penalty) /
                     (col_sq[j] / n_double);
      double delta = new_w - w[j];
      if (delta != 0.0) {
        kernels::StridedAxpyInPlace(residual.data(), -delta, col,
                                    static_cast<size_t>(p),
                                    static_cast<size_t>(n));
        w[j] = new_w;
        max_change = std::max(max_change, std::fabs(delta));
      }
    }
    if (max_change < options.tolerance) break;
  }
  return w;
}

}  // namespace dfs::linalg
