// Explicit AVX2 reduction kernels, selected at runtime by kernels.cc when
// the host supports AVX2 (DFS_SIMD cmake option). Compiled with
// -mavx2 -ffp-contract=off.
//
// Every kernel mirrors the canonical accumulation order from kernels.h:
// two vector accumulators cover 8 virtual lanes per trip; the pairwise
// lane fold vaddpd(acc_a, acc_b) realizes l_j = acc_j + acc_{j+4}; the
// vextractf128 + vaddpd + unpackhi horizontal sum realizes
// (l0 + l2) + (l1 + l3); tails are sequential scalar adds. Multiplies and
// adds stay separate instructions (never vfmadd): contraction on this
// side only would break the bitwise portable==SIMD contract.

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "linalg/kernels.h"

#if defined(DFS_SIMD_ENABLED) && defined(__AVX2__)

namespace dfs::linalg::kernels::avx2 {

namespace {

inline double HorizontalSum(__m256d acc_a, __m256d acc_b) {
  const __m256d folded = _mm256_add_pd(acc_a, acc_b);  // l0..l3
  const __m128d lo = _mm256_castpd256_pd128(folded);   // [l0, l1]
  const __m128d hi = _mm256_extractf128_pd(folded, 1);  // [l2, l3]
  const __m128d pair = _mm_add_pd(lo, hi);             // [l0+l2, l1+l3]
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

}  // namespace

double Dot(const double* a, const double* b, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_a = _mm256_add_pd(
        acc_a, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc_b = _mm256_add_pd(
        acc_b, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                             _mm256_loadu_pd(b + i + 4)));
  }
  double sum = HorizontalSum(acc_a, acc_b);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotF32(const float* x, const double* w, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d xa = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d xb = _mm256_cvtps_pd(_mm_loadu_ps(x + i + 4));
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(xa, _mm256_loadu_pd(w + i)));
    acc_b = _mm256_add_pd(acc_b,
                          _mm256_mul_pd(xb, _mm256_loadu_pd(w + i + 4)));
  }
  double sum = HorizontalSum(acc_a, acc_b);
  for (; i < n; ++i) sum += static_cast<double>(x[i]) * w[i];
  return sum;
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d da =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d db =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
    acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
  }
  double sum = HorizontalSum(acc_a, acc_b);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double WeightedSquaredDiff(const double* x, const double* mean,
                           const double* inv2var, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d da =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(mean + i));
    const __m256d db = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4),
                                     _mm256_loadu_pd(mean + i + 4));
    acc_a = _mm256_add_pd(
        acc_a, _mm256_mul_pd(_mm256_mul_pd(da, da),
                             _mm256_loadu_pd(inv2var + i)));
    acc_b = _mm256_add_pd(
        acc_b, _mm256_mul_pd(_mm256_mul_pd(db, db),
                             _mm256_loadu_pd(inv2var + i + 4)));
  }
  double sum = HorizontalSum(acc_a, acc_b);
  for (; i < n; ++i) {
    const double d = x[i] - mean[i];
    sum += (d * d) * inv2var[i];
  }
  return sum;
}

double WeightedSquaredDiffF32(const float* x, const double* mean,
                              const double* inv2var, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d xa = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d xb = _mm256_cvtps_pd(_mm_loadu_ps(x + i + 4));
    const __m256d da = _mm256_sub_pd(xa, _mm256_loadu_pd(mean + i));
    const __m256d db = _mm256_sub_pd(xb, _mm256_loadu_pd(mean + i + 4));
    acc_a = _mm256_add_pd(
        acc_a, _mm256_mul_pd(_mm256_mul_pd(da, da),
                             _mm256_loadu_pd(inv2var + i)));
    acc_b = _mm256_add_pd(
        acc_b, _mm256_mul_pd(_mm256_mul_pd(db, db),
                             _mm256_loadu_pd(inv2var + i + 4)));
  }
  double sum = HorizontalSum(acc_a, acc_b);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean[i];
    sum += (d * d) * inv2var[i];
  }
  return sum;
}

}  // namespace dfs::linalg::kernels::avx2

#endif  // DFS_SIMD_ENABLED && __AVX2__
