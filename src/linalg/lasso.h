#ifndef DFS_LINALG_LASSO_H_
#define DFS_LINALG_LASSO_H_

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace dfs::linalg {

/// Options for the coordinate-descent lasso solver.
struct LassoOptions {
  double l1_penalty = 0.01;   ///< lambda; larger -> sparser coefficients.
  int max_iterations = 200;   ///< full coordinate sweeps.
  double tolerance = 1e-6;    ///< max coefficient change for convergence.
};

/// L1-regularized least squares min_w 0.5/n ||y - Xw||^2 + lambda ||w||_1
/// solved by cyclic coordinate descent with soft-thresholding. No intercept:
/// callers are expected to center/scale inputs as needed. Used by the MCFS
/// ranking (Cai et al. 2010) to regress spectral-embedding dimensions onto
/// features.
std::vector<double> LassoCoordinateDescent(const Matrix& x,
                                           std::span<const double> y,
                                           const LassoOptions& options = {});

}  // namespace dfs::linalg

#endif  // DFS_LINALG_LASSO_H_
