#ifndef DFS_LINALG_KNN_H_
#define DFS_LINALG_KNN_H_

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace dfs::linalg {

/// Indices of the k nearest rows of `points` to `query` by Euclidean
/// distance, optionally excluding one row (set exclude_row = -1 to disable).
/// Brute force; the library only calls this on subsamples. The query is a
/// borrowed view so Matrix::RowSpan rows pass without copying.
std::vector<int> KNearestRows(const Matrix& points,
                              std::span<const double> query, int k,
                              int exclude_row);

/// Symmetric k-NN adjacency with heat-kernel weights
/// w_ij = exp(-||x_i - x_j||^2 / (2 sigma^2)), where sigma is the mean
/// nearest-neighbor distance. Used for the MCFS spectral embedding.
Matrix HeatKernelKnnGraph(const Matrix& points, int k);

}  // namespace dfs::linalg

#endif  // DFS_LINALG_KNN_H_
