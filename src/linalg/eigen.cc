#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dfs::linalg {

StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                  int max_sweeps,
                                                  double tolerance) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("matrix must be square");
  }
  const int n = a.rows();
  for (int r = 0; r < n; ++r) {
    for (int c = r + 1; c < n; ++c) {
      if (std::fabs(a(r, c) - a(c, r)) > 1e-8) {
        return InvalidArgumentError("matrix must be symmetric");
      }
    }
  }

  Matrix work = a;
  Matrix vectors = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        off_diagonal += work(p, q) * work(p, q);
      }
    }
    if (off_diagonal < tolerance) break;

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double apq = work(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        double app = work(p, p);
        double aqq = work(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (int k = 0; k < n; ++k) {
          double wkp = work(k, p);
          double wkq = work(k, q);
          work(k, p) = c * wkp - s * wkq;
          work(k, q) = s * wkp + c * wkq;
        }
        for (int k = 0; k < n; ++k) {
          double wpk = work(p, k);
          double wqk = work(q, k);
          work(p, k) = c * wpk - s * wqk;
          work(q, k) = s * wpk + c * wqk;
        }
        for (int k = 0; k < n; ++k) {
          double vkp = vectors(k, p);
          double vkq = vectors(k, q);
          vectors(k, p) = c * vkp - s * vkq;
          vectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by ascending eigenvalue.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diagonal(n);
  for (int i = 0; i < n; ++i) diagonal[i] = work(i, i);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return diagonal[x] < diagonal[y]; });

  EigenDecomposition result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (int i = 0; i < n; ++i) {
    result.values[i] = diagonal[order[i]];
    for (int r = 0; r < n; ++r) {
      result.vectors(r, i) = vectors(r, order[i]);
    }
  }
  return result;
}

}  // namespace dfs::linalg
