#ifndef DFS_LINALG_MATRIX_H_
#define DFS_LINALG_MATRIX_H_

#include <cmath>
#include <initializer_list>
#include <span>
#include <type_traits>
#include <vector>

#include "linalg/kernels.h"
#include "util/logging.h"

namespace dfs::linalg {

/// Dense row-major matrix, templated on the element type (DESIGN.md §2i).
/// `Matrix` (f64) is the default everywhere; `Matrix32` exists only as a
/// storage format for the opt-in f32 evaluation mode — model parameters
/// and accumulations stay f64, so f32 never leaks into training math.
template <typename T>
class MatrixT {
  static_assert(std::is_floating_point_v<T>,
                "MatrixT supports floating-point storage only");

 public:
  MatrixT() : rows_(0), cols_(0) {}
  MatrixT(int rows, int cols, T fill = T{0})
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    DFS_CHECK_GE(rows, 0);
    DFS_CHECK_GE(cols, 0);
  }

  /// Builds from nested initializer lists; all rows must have equal length.
  MatrixT(std::initializer_list<std::initializer_list<T>> values) {
    rows_ = static_cast<int>(values.size());
    cols_ = rows_ > 0 ? static_cast<int>(values.begin()->size()) : 0;
    data_.reserve(static_cast<size_t>(rows_) * cols_);
    for (const auto& row : values) {
      DFS_CHECK_EQ(static_cast<int>(row.size()), cols_);
      for (T v : row) data_.push_back(v);
    }
  }

  static MatrixT Identity(int n) {
    MatrixT m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  T& operator()(int r, int c) {
    DFS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  T operator()(int r, int c) const {
    DFS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // --- Unchecked fast path (see DESIGN.md §2e) ------------------------
  //
  // The wrapper-evaluation hot loop (gather, train, predict) pays for a
  // bounds check per *element* through operator(); these accessors check
  // only under DFS_DCHECK (debug builds). Release correctness is covered
  // by the ASan/UBSan runs of matrix_test and engine_golden_test
  // (scripts/check.sh --sanitize).

  /// Unchecked read (debug-only bounds check).
  T At(int r, int c) const {
    DFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  /// Unchecked write (debug-only bounds check).
  void Set(int r, int c, T v) {
    DFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[static_cast<size_t>(r) * cols_ + c] = v;
  }
  /// Raw row-major storage, length rows()*cols(). Invalidated by Resize
  /// and by assignment, like RowSpan.
  T* MutableData() { return data_.data(); }
  const T* Data() const { return data_.data(); }

  /// Reshapes in place to rows x cols. Existing element values are NOT
  /// preserved in any meaningful layout; callers overwrite the contents
  /// (Dataset::GatherInto does). Never shrinks capacity, so a scratch
  /// matrix cycling through same-or-smaller shapes stops allocating after
  /// its first (largest) use.
  void Resize(int rows, int cols) {
    DFS_CHECK_GE(rows, 0);
    DFS_CHECK_GE(cols, 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  /// Copies row `r` out. Prefer RowSpan on hot paths; Row exists for
  /// callers that need an owning copy outliving the matrix (tests that
  /// predict on rows of an expiring temporary).
  std::vector<T> Row(int r) const {
    std::vector<T> row(cols_);
    for (int c = 0; c < cols_; ++c) row[c] = (*this)(r, c);
    return row;
  }

  /// Borrowed view of row `r` (rows are contiguous in the row-major
  /// layout). One bounds check per row instead of one per element, which is
  /// what the knn / lasso inner loops need; invalidated when the matrix is
  /// destroyed or assigned over.
  std::span<const T> RowSpan(int r) const {
    DFS_CHECK(r >= 0 && r < rows_);
    return {data_.data() + static_cast<size_t>(r) * cols_,
            static_cast<size_t>(cols_)};
  }

  /// Raw pointer form of RowSpan (same lifetime rules).
  const T* RowPtr(int r) const { return RowSpan(r).data(); }

  /// Copies column `c` out.
  std::vector<T> Column(int c) const {
    std::vector<T> col(rows_);
    for (int r = 0; r < rows_; ++r) col[r] = (*this)(r, c);
    return col;
  }

  MatrixT Transpose() const {
    MatrixT t(cols_, rows_);
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

  /// Matrix product; requires cols() == other.rows(). The f64 case runs
  /// through the blocked MatMatT kernel (both operands stream
  /// row-contiguously against an explicit transpose of `other`).
  MatrixT Multiply(const MatrixT& other) const {
    DFS_CHECK_EQ(cols_, other.rows_);
    MatrixT result(rows_, other.cols_);
    if constexpr (std::is_same_v<T, double>) {
      const MatrixT bt = other.Transpose();
      kernels::MatMatT(data_.data(), rows_, bt.Data(), other.cols_, cols_,
                       result.MutableData());
    } else {
      for (int r = 0; r < rows_; ++r) {
        for (int k = 0; k < cols_; ++k) {
          T v = (*this)(r, k);
          if (v == T{0}) continue;
          for (int c = 0; c < other.cols_; ++c) {
            result(r, c) += v * other(k, c);
          }
        }
      }
    }
    return result;
  }

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<T> MultiplyVector(std::span<const T> v) const {
    DFS_CHECK_EQ(static_cast<int>(v.size()), cols_);
    std::vector<T> result(rows_, T{0});
    if constexpr (std::is_same_v<T, double>) {
      kernels::MatVec(data_.data(), rows_, cols_, v.data(), 0.0,
                      result.data());
    } else {
      for (int r = 0; r < rows_; ++r) {
        T sum = T{0};
        for (int c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
        result[r] = sum;
      }
    }
    return result;
  }

  /// Frobenius-norm of (this - other); requires equal shapes.
  double FrobeniusDistance(const MatrixT& other) const {
    DFS_CHECK_EQ(rows_, other.rows_);
    DFS_CHECK_EQ(cols_, other.cols_);
    double sum = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
      double d = static_cast<double>(data_[i]) -
                 static_cast<double>(other.data_[i]);
      sum += d * d;
    }
    return std::sqrt(sum);
  }

 private:
  int rows_;
  int cols_;
  std::vector<T> data_;
};

using Matrix = MatrixT<double>;

/// Float32 storage for the opt-in f32 evaluation mode (DESIGN.md §2i).
using Matrix32 = MatrixT<float>;

/// Dot product; requires equal sizes.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double Norm2(std::span<const double> a);

/// Squared Euclidean distance between two equal-length sequences (accepts
/// std::vector and Matrix::RowSpan views alike).
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// a + s * b, elementwise; requires equal sizes.
std::vector<double> Axpy(std::span<const double> a, double s,
                         std::span<const double> b);

/// Scales a sequence in place.
void ScaleInPlace(std::span<double> v, double s);

}  // namespace dfs::linalg

#endif  // DFS_LINALG_MATRIX_H_
