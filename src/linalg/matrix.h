#ifndef DFS_LINALG_MATRIX_H_
#define DFS_LINALG_MATRIX_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "util/logging.h"

namespace dfs::linalg {

/// Dense row-major matrix of doubles. Small and deliberately simple: the
/// library's numeric needs (spectral embedding, lasso, classifier math) stay
/// within a few hundred rows/columns.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    DFS_CHECK_GE(rows, 0);
    DFS_CHECK_GE(cols, 0);
  }

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    DFS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    DFS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // --- Unchecked fast path (see DESIGN.md §2e) ------------------------
  //
  // The wrapper-evaluation hot loop (gather, train, predict) pays for a
  // bounds check per *element* through operator(); these accessors check
  // only under DFS_DCHECK (debug builds). Release correctness is covered
  // by the ASan/UBSan runs of matrix_test and engine_golden_test
  // (scripts/check.sh --sanitize).

  /// Unchecked read (debug-only bounds check).
  double At(int r, int c) const {
    DFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  /// Unchecked write (debug-only bounds check).
  void Set(int r, int c, double v) {
    DFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[static_cast<size_t>(r) * cols_ + c] = v;
  }
  /// Raw row-major storage, length rows()*cols(). Invalidated by Resize
  /// and by assignment, like RowSpan.
  double* MutableData() { return data_.data(); }
  const double* Data() const { return data_.data(); }

  /// Reshapes in place to rows x cols. Existing element values are NOT
  /// preserved in any meaningful layout; callers overwrite the contents
  /// (Dataset::GatherInto does). Never shrinks capacity, so a scratch
  /// matrix cycling through same-or-smaller shapes stops allocating after
  /// its first (largest) use.
  void Resize(int rows, int cols) {
    DFS_CHECK_GE(rows, 0);
    DFS_CHECK_GE(cols, 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  /// Copies row `r` out.
  std::vector<double> Row(int r) const;

  /// Borrowed view of row `r` (rows are contiguous in the row-major
  /// layout). One bounds check per row instead of one per element, which is
  /// what the knn / lasso inner loops need; invalidated when the matrix is
  /// destroyed or assigned over.
  std::span<const double> RowSpan(int r) const {
    DFS_CHECK(r >= 0 && r < rows_);
    return {data_.data() + static_cast<size_t>(r) * cols_,
            static_cast<size_t>(cols_)};
  }

  /// Raw pointer form of RowSpan (same lifetime rules).
  const double* RowPtr(int r) const { return RowSpan(r).data(); }

  /// Copies column `c` out.
  std::vector<double> Column(int c) const;

  Matrix Transpose() const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Frobenius-norm of (this - other); requires equal shapes.
  double FrobeniusDistance(const Matrix& other) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// Squared Euclidean distance between two equal-length sequences (accepts
/// std::vector and Matrix::RowSpan views alike).
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// a + s * b, elementwise; requires equal sizes.
std::vector<double> Axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b);

/// Scales a vector in place.
void ScaleInPlace(std::vector<double>& v, double s);

}  // namespace dfs::linalg

#endif  // DFS_LINALG_MATRIX_H_
