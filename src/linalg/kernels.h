#ifndef DFS_LINALG_KERNELS_H_
#define DFS_LINALG_KERNELS_H_

#include <cstddef>
#include <span>

#include "util/thread_annotations.h"

namespace dfs::linalg::kernels {

// Blocked evaluation kernels for the masked-evaluation hot path (DESIGN.md
// §2i). Every reduction here commits to ONE canonical accumulation order:
//
//   - the main loop runs 8 virtual lanes (lane j accumulates elements
//     8k + j),
//   - lanes fold pairwise as l_j = acc_j + acc_{j+4} (j = 0..3),
//   - the four partials combine as (l0 + l2) + (l1 + l3),
//   - leftover tail elements are added sequentially to that combined sum.
//
// That tree is exactly what two AVX2 accumulators produce under
// vaddpd + vextractf128 + vaddpd + horizontal add, so the portable C++
// fallback and the explicit-SIMD path (kernels_avx2.cc, behind the
// DFS_SIMD cmake option with a runtime __builtin_cpu_supports dispatch)
// are bitwise identical by construction. Both TUs are compiled with
// -ffp-contract=off so the compiler cannot fuse a*b+c into an FMA on one
// side of the dispatch but not the other. kernels_test.cc proves the
// bitwise equivalence against the reference:: impls below.
//
// For n < 8 the canonical order DEGENERATES to a plain sequential sum:
// the main loop runs zero trips, so the lane fold combines eight exact
// +0.0 partials and every element lands in the sequential tail. The
// public reductions exploit that with an inline header fast path — tiny
// masks (feature subsets of width 1–7 are common in the sweeps) skip the
// function-pointer dispatch entirely and still produce the identical
// bytes. The inline loops are safe from FMA contraction because no TU in
// this project passes -march/-mtune: callers target baseline x86-64,
// which has no FMA instruction for the compiler to contract into (and
// the one -mavx2 TU, kernels_avx2.cc, is compiled -ffp-contract=off).
// kernels_test.cc pins the n < 8 sizes against reference:: bitwise.
//
// Float32 inputs participate only as storage: the mixed-precision kernels
// widen each f32 element to f64 (exact) and accumulate in f64, so the f32
// evaluation mode's error is bounded by the storage quantization alone.

/// ISA selected by the runtime dispatch: "avx2" or "portable". Stable for
/// the life of the process.
const char* ActiveIsa();

namespace detail {
// Out-of-line runtime-dispatched impls for n >= 8 (they accept any n; the
// split exists only so the inline wrappers below can skip the indirect
// call for tiny inputs). Defined in kernels.cc / kernels_avx2.cc.
double DotWide(const double* a, const double* b, std::size_t n);
double DotF32Wide(const float* x, const double* w, std::size_t n);
double SquaredDistanceWide(const double* a, const double* b, std::size_t n);
double WeightedSquaredDiffWide(const double* x, const double* mean,
                               const double* inv2var, std::size_t n);
double WeightedSquaredDiffF32Wide(const float* x, const double* mean,
                                  const double* inv2var, std::size_t n);
double StridedDotWide(const double* a, std::size_t stride, const double* b,
                      std::size_t n);

// Width below which the inline sequential path runs instead of the
// dispatched kernel. Must stay 8: that is the point where the canonical
// order is exactly a sequential sum.
inline constexpr std::size_t kInlineWidth = 8;
}  // namespace detail

// --- Reductions (runtime-dispatched; inline fast path below 8) --------

/// Dot product over n elements.
DFS_HOT inline double Dot(const double* a, const double* b, std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
    return sum;
  }
  return detail::DotWide(a, b, n);
}

/// Mixed-precision dot: f32 storage row against f64 model weights,
/// accumulated in f64 (each float is widened exactly).
DFS_HOT inline double DotF32(const float* x, const double* w, std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += static_cast<double>(x[i]) * w[i];
    }
    return sum;
  }
  return detail::DotF32Wide(x, w, n);
}

/// Squared Euclidean distance over n elements.
DFS_HOT inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return sum;
  }
  return detail::SquaredDistanceWide(a, b, n);
}

/// Sum over c of (x[c] - mean[c])^2 * inv2var[c]; the Gaussian
/// naive-Bayes negative log-likelihood accumulation.
DFS_HOT inline double WeightedSquaredDiff(const double* x, const double* mean,
                                  const double* inv2var, std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = x[i] - mean[i];
      sum += (d * d) * inv2var[i];
    }
    return sum;
  }
  return detail::WeightedSquaredDiffWide(x, mean, inv2var, n);
}

/// Mixed-precision WeightedSquaredDiff (f32 observation row).
DFS_HOT inline double WeightedSquaredDiffF32(const float* x, const double* mean,
                                     const double* inv2var, std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(x[i]) - mean[i];
      sum += (d * d) * inv2var[i];
    }
    return sum;
  }
  return detail::WeightedSquaredDiffF32Wide(x, mean, inv2var, n);
}

// --- GEMV-style batched forms ----------------------------------------

/// out[r] = bias + dot(row r of x, w) for a row-major rows x cols matrix.
DFS_HOT void MatVec(const double* x, int rows, int cols, const double* w,
            double bias, double* out);

/// MatVec over an f32 row-major matrix with f64 weights/bias.
DFS_HOT void MatVecF32(const float* x, int rows, int cols, const double* w,
               double bias, double* out);

/// out(r, c) = dot(row r of a, row c of bt): the product A * B with B
/// supplied pre-transposed so both operands stream row-contiguously.
/// a is a_rows x inner, bt is bt_rows x inner, out is a_rows x bt_rows.
DFS_HOT void MatMatT(const double* a, int a_rows, const double* bt, int bt_rows,
             int inner, double* out);

// --- Elementwise / strided (portable; order-preserving by nature) ----

/// a[i] += s * b[i]. Elementwise, so any vectorization is bitwise-safe;
/// inline because the LR/SVM gradient loops call it once per row.
DFS_HOT inline void AxpyInPlace(double* a, double s, const double* b,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += s * b[i];
}

/// v[i] *= s.
DFS_HOT inline void Scale(double* v, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= s;
}

/// Dot of a strided column a[i * stride] against contiguous b[i]; the
/// lasso coordinate-descent rho accumulation. Same canonical lane order
/// as Dot.
DFS_HOT inline double StridedDot(const double* a, std::size_t stride,
                         const double* b, std::size_t n) {
  if (n < detail::kInlineWidth) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += a[i * stride] * b[i];
    return sum;
  }
  return detail::StridedDotWide(a, stride, b, n);
}

/// a[i] += s * b[i * stride]; the lasso residual update.
DFS_HOT inline void StridedAxpyInPlace(double* a, double s, const double* b,
                               std::size_t stride, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += s * b[i * stride];
}

/// Decision-tree split scan: counts values[i] <= threshold into
/// *left_total and sums labels[i] over those rows into *left_positives.
/// Both sums are over exact small integers (1.0 and 0/1 labels), which
/// f64 adds associatively without rounding, so this kernel is
/// order-independent and safe under any vectorization.
DFS_HOT void SplitCounts(const double* values, const double* labels, std::size_t n,
                 double threshold, double* left_total,
                 double* left_positives);

// --- Span conveniences ------------------------------------------------

DFS_HOT inline double Dot(std::span<const double> a, std::span<const double> b) {
  return Dot(a.data(), b.data(), a.size());
}
DFS_HOT inline double SquaredDistance(std::span<const double> a,
                              std::span<const double> b) {
  return SquaredDistance(a.data(), b.data(), a.size());
}

// --- Reference implementations (kernels_test.cc) ----------------------
//
// Plain scalar C++ spelling of the canonical accumulation order, compiled
// in the same -ffp-contract=off TU as the portable kernels and never with
// -mavx2. The dispatched kernels above must match these BITWISE in f64;
// that equality is what makes runtime ISA dispatch invisible to the
// DESIGN §2d byte-identical selection contract.
namespace reference {
double Dot(const double* a, const double* b, std::size_t n);
double DotF32(const float* x, const double* w, std::size_t n);
double SquaredDistance(const double* a, const double* b, std::size_t n);
double WeightedSquaredDiff(const double* x, const double* mean,
                           const double* inv2var, std::size_t n);
void MatVec(const double* x, int rows, int cols, const double* w,
            double bias, double* out);
}  // namespace reference

}  // namespace dfs::linalg::kernels

#endif  // DFS_LINALG_KERNELS_H_
