#ifndef DFS_LINALG_EIGEN_H_
#define DFS_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/statusor.h"

namespace dfs::linalg {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T with
/// eigenvalues sorted ascending; eigenvectors are the columns of V.
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Intended for the small
/// dense matrices this project produces (graph Laplacians of a <= few
/// hundred point subsample in MCFS). Returns InvalidArgument for non-square
/// or non-symmetric input (tolerance 1e-8).
StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                  int max_sweeps = 100,
                                                  double tolerance = 1e-20);

}  // namespace dfs::linalg

#endif  // DFS_LINALG_EIGEN_H_
