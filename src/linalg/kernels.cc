#include "linalg/kernels.h"

// This TU (and kernels_avx2.cc) is compiled with -ffp-contract=off: a
// fused a*b+c on one side of the runtime dispatch but not the other would
// break the bitwise portable==SIMD contract documented in kernels.h.

#if defined(__GNUC__) || defined(__clang__)
#define DFS_RESTRICT __restrict__
#else
#define DFS_RESTRICT
#endif

namespace dfs::linalg::kernels {

namespace reference {

// The canonical 8-lane accumulation order, spelled as plain scalar C++.
// The dispatched kernels must match these bitwise in f64 mode; keep the
// lane fold ((l0+l2)+(l1+l3)) in sync with kernels.h and kernels_avx2.cc.

double Dot(const double* a, const double* b, std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
    a4 += a[i + 4] * b[i + 4];
    a5 += a[i + 5] * b[i + 5];
    a6 += a[i + 6] * b[i + 6];
    a7 += a[i + 7] * b[i + 7];
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotF32(const float* x, const double* w, std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += static_cast<double>(x[i]) * w[i];
    a1 += static_cast<double>(x[i + 1]) * w[i + 1];
    a2 += static_cast<double>(x[i + 2]) * w[i + 2];
    a3 += static_cast<double>(x[i + 3]) * w[i + 3];
    a4 += static_cast<double>(x[i + 4]) * w[i + 4];
    a5 += static_cast<double>(x[i + 5]) * w[i + 5];
    a6 += static_cast<double>(x[i + 6]) * w[i + 6];
    a7 += static_cast<double>(x[i + 7]) * w[i + 7];
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) sum += static_cast<double>(x[i]) * w[i];
  return sum;
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    const double d4 = a[i + 4] - b[i + 4];
    const double d5 = a[i + 5] - b[i + 5];
    const double d6 = a[i + 6] - b[i + 6];
    const double d7 = a[i + 7] - b[i + 7];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
    a4 += d4 * d4;
    a5 += d5 * d5;
    a6 += d6 * d6;
    a7 += d7 * d7;
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double WeightedSquaredDiff(const double* x, const double* mean,
                           const double* inv2var, std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double d0 = x[i] - mean[i];
    const double d1 = x[i + 1] - mean[i + 1];
    const double d2 = x[i + 2] - mean[i + 2];
    const double d3 = x[i + 3] - mean[i + 3];
    const double d4 = x[i + 4] - mean[i + 4];
    const double d5 = x[i + 5] - mean[i + 5];
    const double d6 = x[i + 6] - mean[i + 6];
    const double d7 = x[i + 7] - mean[i + 7];
    a0 += (d0 * d0) * inv2var[i];
    a1 += (d1 * d1) * inv2var[i + 1];
    a2 += (d2 * d2) * inv2var[i + 2];
    a3 += (d3 * d3) * inv2var[i + 3];
    a4 += (d4 * d4) * inv2var[i + 4];
    a5 += (d5 * d5) * inv2var[i + 5];
    a6 += (d6 * d6) * inv2var[i + 6];
    a7 += (d7 * d7) * inv2var[i + 7];
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) {
    const double d = x[i] - mean[i];
    sum += (d * d) * inv2var[i];
  }
  return sum;
}

void MatVec(const double* x, int rows, int cols, const double* w,
            double bias, double* out) {
  for (int r = 0; r < rows; ++r) {
    out[r] = bias + Dot(x + static_cast<std::size_t>(r) * cols, w,
                        static_cast<std::size_t>(cols));
  }
}

}  // namespace reference

namespace {

// Portable dispatched impls: the same canonical order as reference::,
// with restrict-qualified pointers so the autovectorizer is free to use
// whatever the host toolchain targets. Autovectorization without
// fast-math must preserve the abstract-machine result, so these stay
// bitwise equal to reference:: (kernels_test.cc enforces it).

double DotPortable(const double* DFS_RESTRICT a, const double* DFS_RESTRICT b,
                   std::size_t n) {
  return reference::Dot(a, b, n);
}

double DotF32Portable(const float* DFS_RESTRICT x,
                      const double* DFS_RESTRICT w, std::size_t n) {
  return reference::DotF32(x, w, n);
}

double SquaredDistancePortable(const double* DFS_RESTRICT a,
                               const double* DFS_RESTRICT b, std::size_t n) {
  return reference::SquaredDistance(a, b, n);
}

double WeightedSquaredDiffPortable(const double* DFS_RESTRICT x,
                                   const double* DFS_RESTRICT mean,
                                   const double* DFS_RESTRICT inv2var,
                                   std::size_t n) {
  return reference::WeightedSquaredDiff(x, mean, inv2var, n);
}

double WeightedSquaredDiffF32Portable(const float* DFS_RESTRICT x,
                                      const double* DFS_RESTRICT mean,
                                      const double* DFS_RESTRICT inv2var,
                                      std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double d0 = static_cast<double>(x[i]) - mean[i];
    const double d1 = static_cast<double>(x[i + 1]) - mean[i + 1];
    const double d2 = static_cast<double>(x[i + 2]) - mean[i + 2];
    const double d3 = static_cast<double>(x[i + 3]) - mean[i + 3];
    const double d4 = static_cast<double>(x[i + 4]) - mean[i + 4];
    const double d5 = static_cast<double>(x[i + 5]) - mean[i + 5];
    const double d6 = static_cast<double>(x[i + 6]) - mean[i + 6];
    const double d7 = static_cast<double>(x[i + 7]) - mean[i + 7];
    a0 += (d0 * d0) * inv2var[i];
    a1 += (d1 * d1) * inv2var[i + 1];
    a2 += (d2 * d2) * inv2var[i + 2];
    a3 += (d3 * d3) * inv2var[i + 3];
    a4 += (d4 * d4) * inv2var[i + 4];
    a5 += (d5 * d5) * inv2var[i + 5];
    a6 += (d6 * d6) * inv2var[i + 6];
    a7 += (d7 * d7) * inv2var[i + 7];
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean[i];
    sum += (d * d) * inv2var[i];
  }
  return sum;
}

using DotFn = double (*)(const double*, const double*, std::size_t);
using DotF32Fn = double (*)(const float*, const double*, std::size_t);
using Wsd = double (*)(const double*, const double*, const double*,
                       std::size_t);
using WsdF32 = double (*)(const float*, const double*, const double*,
                          std::size_t);

struct Dispatch {
  DotFn dot;
  DotF32Fn dot_f32;
  DotFn squared_distance;
  Wsd weighted_squared_diff;
  WsdF32 weighted_squared_diff_f32;
  const char* isa;
};

}  // namespace

#if defined(DFS_SIMD_ENABLED)
// Defined in kernels_avx2.cc, compiled with -mavx2 -ffp-contract=off.
namespace avx2 {
double Dot(const double* a, const double* b, std::size_t n);
double DotF32(const float* x, const double* w, std::size_t n);
double SquaredDistance(const double* a, const double* b, std::size_t n);
double WeightedSquaredDiff(const double* x, const double* mean,
                           const double* inv2var, std::size_t n);
double WeightedSquaredDiffF32(const float* x, const double* mean,
                              const double* inv2var, std::size_t n);
}  // namespace avx2
#endif

namespace {

const Dispatch& Active() {
  static const Dispatch dispatch = [] {
    Dispatch d{DotPortable,
               DotF32Portable,
               SquaredDistancePortable,
               WeightedSquaredDiffPortable,
               WeightedSquaredDiffF32Portable,
               "portable"};
#if defined(DFS_SIMD_ENABLED)
    if (__builtin_cpu_supports("avx2")) {
      d = Dispatch{avx2::Dot,
                   avx2::DotF32,
                   avx2::SquaredDistance,
                   avx2::WeightedSquaredDiff,
                   avx2::WeightedSquaredDiffF32,
                   "avx2"};
    }
#endif
    return d;
  }();
  return dispatch;
}

}  // namespace

const char* ActiveIsa() { return Active().isa; }

namespace detail {

double DotWide(const double* a, const double* b, std::size_t n) {
  return Active().dot(a, b, n);
}

double DotF32Wide(const float* x, const double* w, std::size_t n) {
  return Active().dot_f32(x, w, n);
}

double SquaredDistanceWide(const double* a, const double* b, std::size_t n) {
  return Active().squared_distance(a, b, n);
}

double WeightedSquaredDiffWide(const double* x, const double* mean,
                               const double* inv2var, std::size_t n) {
  return Active().weighted_squared_diff(x, mean, inv2var, n);
}

double WeightedSquaredDiffF32Wide(const float* x, const double* mean,
                                  const double* inv2var, std::size_t n) {
  return Active().weighted_squared_diff_f32(x, mean, inv2var, n);
}

double StridedDotWide(const double* DFS_RESTRICT a, std::size_t stride,
                      const double* DFS_RESTRICT b, std::size_t n) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += a[i * stride] * b[i];
    a1 += a[(i + 1) * stride] * b[i + 1];
    a2 += a[(i + 2) * stride] * b[i + 2];
    a3 += a[(i + 3) * stride] * b[i + 3];
    a4 += a[(i + 4) * stride] * b[i + 4];
    a5 += a[(i + 5) * stride] * b[i + 5];
    a6 += a[(i + 6) * stride] * b[i + 6];
    a7 += a[(i + 7) * stride] * b[i + 7];
  }
  const double l0 = a0 + a4, l1 = a1 + a5, l2 = a2 + a6, l3 = a3 + a7;
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) sum += a[i * stride] * b[i];
  return sum;
}

}  // namespace detail

void MatVec(const double* x, int rows, int cols, const double* w,
            double bias, double* out) {
  const std::size_t k = static_cast<std::size_t>(cols);
  if (k < detail::kInlineWidth) {
    // Narrow masks (1–7 selected features) would pay an indirect call
    // per row for a handful of multiplies; the sequential loop is the
    // canonical order at these widths.
    for (int r = 0; r < rows; ++r) {
      const double* row = x + static_cast<std::size_t>(r) * k;
      // Sum seeds at 0.0 and bias is added last: same rounding order as
      // the wide path's bias + dot(...).
      double sum = 0.0;
      for (std::size_t c = 0; c < k; ++c) sum += row[c] * w[c];
      out[r] = bias + sum;
    }
    return;
  }
  const DotFn dot = Active().dot;
  for (int r = 0; r < rows; ++r) {
    out[r] = bias + dot(x + static_cast<std::size_t>(r) * k, w, k);
  }
}

void MatVecF32(const float* x, int rows, int cols, const double* w,
               double bias, double* out) {
  const std::size_t k = static_cast<std::size_t>(cols);
  if (k < detail::kInlineWidth) {
    for (int r = 0; r < rows; ++r) {
      const float* row = x + static_cast<std::size_t>(r) * k;
      double sum = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        sum += static_cast<double>(row[c]) * w[c];
      }
      out[r] = bias + sum;
    }
    return;
  }
  const DotF32Fn dot = Active().dot_f32;
  for (int r = 0; r < rows; ++r) {
    out[r] = bias + dot(x + static_cast<std::size_t>(r) * k, w, k);
  }
}

void MatMatT(const double* a, int a_rows, const double* bt, int bt_rows,
             int inner, double* out) {
  const std::size_t k = static_cast<std::size_t>(inner);
  if (k < detail::kInlineWidth) {
    for (int r = 0; r < a_rows; ++r) {
      const double* row = a + static_cast<std::size_t>(r) * k;
      double* out_row = out + static_cast<std::size_t>(r) * bt_rows;
      for (int c = 0; c < bt_rows; ++c) {
        const double* col = bt + static_cast<std::size_t>(c) * k;
        double sum = 0.0;
        for (std::size_t j = 0; j < k; ++j) sum += row[j] * col[j];
        out_row[c] = sum;
      }
    }
    return;
  }
  const DotFn dot = Active().dot;
  for (int r = 0; r < a_rows; ++r) {
    const double* row = a + static_cast<std::size_t>(r) * k;
    double* out_row = out + static_cast<std::size_t>(r) * bt_rows;
    for (int c = 0; c < bt_rows; ++c) {
      out_row[c] = dot(row, bt + static_cast<std::size_t>(c) * k, k);
    }
  }
}

void SplitCounts(const double* DFS_RESTRICT values,
                 const double* DFS_RESTRICT labels, std::size_t n,
                 double threshold, double* left_total,
                 double* left_positives) {
  double total = 0.0;
  double positives = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] <= threshold) {
      total += 1.0;
      positives += labels[i];
    }
  }
  *left_total = total;
  *left_positives = positives;
}

}  // namespace dfs::linalg::kernels
