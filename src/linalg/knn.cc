#include "linalg/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.h"

namespace dfs::linalg {

std::vector<int> KNearestRows(const Matrix& points,
                              std::span<const double> query, int k,
                              int exclude_row) {
  const int n = points.rows();
  const int cols = points.cols();
  std::vector<std::pair<double, int>> distances;
  distances.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i == exclude_row) continue;
    const double d = kernels::SquaredDistance(
        points.RowPtr(i), query.data(), static_cast<size_t>(cols));
    distances.emplace_back(d, i);
  }
  k = std::min<int>(k, static_cast<int>(distances.size()));
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());
  std::vector<int> neighbors(k);
  for (int i = 0; i < k; ++i) neighbors[i] = distances[i].second;
  return neighbors;
}

Matrix HeatKernelKnnGraph(const Matrix& points, int k) {
  const int n = points.rows();
  Matrix adjacency(n, n);
  if (n == 0) return adjacency;

  // Estimate sigma from mean nearest-neighbor distance.
  double sigma_sum = 0.0;
  std::vector<std::vector<int>> neighbor_lists(n);
  for (int i = 0; i < n; ++i) {
    neighbor_lists[i] = KNearestRows(points, points.RowSpan(i), k, i);
    if (!neighbor_lists[i].empty()) {
      double d = std::sqrt(SquaredDistance(
          points.RowSpan(i), points.RowSpan(neighbor_lists[i][0])));
      sigma_sum += d;
    }
  }
  double sigma = sigma_sum / std::max(1, n);
  if (sigma <= 1e-12) sigma = 1.0;
  const double denom = 2.0 * sigma * sigma;

  for (int i = 0; i < n; ++i) {
    for (int j : neighbor_lists[i]) {
      double w = std::exp(
          -SquaredDistance(points.RowSpan(i), points.RowSpan(j)) / denom);
      adjacency(i, j) = std::max(adjacency(i, j), w);
      adjacency(j, i) = adjacency(i, j);  // symmetrize
    }
  }
  return adjacency;
}

}  // namespace dfs::linalg
