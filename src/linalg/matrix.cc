#include "linalg/matrix.h"

#include <cmath>

namespace dfs::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = static_cast<int>(values.size());
  cols_ = rows_ > 0 ? static_cast<int>(values.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : values) {
    DFS_CHECK_EQ(static_cast<int>(row.size()), cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(int r) const {
  std::vector<double> row(cols_);
  for (int c = 0; c < cols_; ++c) row[c] = (*this)(r, c);
  return row;
}

std::vector<double> Matrix::Column(int c) const {
  std::vector<double> col(rows_);
  for (int r = 0; r < rows_; ++r) col[r] = (*this)(r, c);
  return col;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DFS_CHECK_EQ(cols_, other.rows_);
  Matrix result(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) {
        result(r, c) += v * other(k, c);
      }
    }
  }
  return result;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  DFS_CHECK_EQ(static_cast<int>(v.size()), cols_);
  std::vector<double> result(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    result[r] = sum;
  }
  return result;
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  DFS_CHECK_EQ(rows_, other.rows_);
  DFS_CHECK_EQ(cols_, other.cols_);
  double sum = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  DFS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  DFS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::vector<double> Axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b) {
  DFS_CHECK_EQ(a.size(), b.size());
  std::vector<double> result(a.size());
  for (size_t i = 0; i < a.size(); ++i) result[i] = a[i] + s * b[i];
  return result;
}

void ScaleInPlace(std::vector<double>& v, double s) {
  for (double& x : v) x *= s;
}

}  // namespace dfs::linalg
