#include "linalg/matrix.h"

#include <cmath>

#include "linalg/kernels.h"

namespace dfs::linalg {

double Dot(std::span<const double> a, std::span<const double> b) {
  DFS_CHECK_EQ(a.size(), b.size());
  return kernels::Dot(a.data(), b.data(), a.size());
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  DFS_CHECK_EQ(a.size(), b.size());
  return kernels::SquaredDistance(a.data(), b.data(), a.size());
}

std::vector<double> Axpy(std::span<const double> a, double s,
                         std::span<const double> b) {
  DFS_CHECK_EQ(a.size(), b.size());
  std::vector<double> result(a.begin(), a.end());
  kernels::AxpyInPlace(result.data(), s, b.data(), b.size());
  return result;
}

void ScaleInPlace(std::span<double> v, double s) {
  kernels::Scale(v.data(), s, v.size());
}

}  // namespace dfs::linalg
