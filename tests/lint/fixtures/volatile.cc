// Known-bad fixture: `volatile` used as a poor man's synchronization
// flag. Never compiled; tests/lint/dfs_lint_test.py asserts the
// banned-symbol rule fires here.

namespace fixture {

volatile bool g_stop_requested = false;

void RequestStop() { g_stop_requested = true; }

}  // namespace fixture
