// Lint fixture: own header is not first, and a <system> include follows
// a "project" include — both halves of [include-order] must fire. Never
// compiled.
#include <vector>

#include "bad_include_order.h"

#include "some/project/header.h"
#include <string>

void IncludeOrderFixture() {}
