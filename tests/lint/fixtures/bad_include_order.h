// Lint fixture: sibling header for bad_include_order.cc (present so the
// own-header-first part of [include-order] applies). Never compiled.
#pragma once

void IncludeOrderFixture();
