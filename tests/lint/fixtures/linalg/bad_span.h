#ifndef DFS_LINALG_BAD_SPAN_H_
#define DFS_LINALG_BAD_SPAN_H_

#include <vector>

namespace dfs::linalg {

// Known-bad for [linalg-span]: a const-ref vector parameter in a linalg
// header forces hot-path callers to materialize copies; must be
// std::span<const double> or pointer + length.
double Sum(const std::vector<double>& values);

}  // namespace dfs::linalg

#endif  // DFS_LINALG_BAD_SPAN_H_
