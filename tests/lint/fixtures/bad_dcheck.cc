// Lint fixture: DFS_DCHECK arguments that mutate state must fire
// [dcheck-side-effect] — under NDEBUG the whole expression compiles
// out and Release would diverge from Debug. Never compiled.
#include <vector>

#include "util/logging.h"

void DcheckSideEffects(std::vector<int>& v, int i) {
  DFS_DCHECK(++i > 0);
  DFS_DCHECK(v.size() > 0 && (i = 3));
  DFS_DCHECK(v.insert(v.end(), i) != v.end());
}
