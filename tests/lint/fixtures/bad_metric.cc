// Lint fixture: instrument names absent from docs/PROTOCOL.md must
// fire [metric-name]. Never compiled.
#include "obs/metrics.h"

void RegisterBogus(dfs::obs::MetricsRegistry& registry) {
  registry.counter("bogus.total_frobnications").Increment();
  registry.histogram("bogus.frobnication_seconds").Observe(0.5);
}
