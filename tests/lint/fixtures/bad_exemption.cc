// Lint fixture: a DFS_NO_THREAD_SAFETY_ANALYSIS with no justification
// comment on its own or the preceding line must fire [naked-exemption].
// The blank line before the attribute below is load-bearing: it
// separates the exemption from this header comment. Never compiled.
#include "util/thread_annotations.h"

void UnjustifiedEscape() DFS_NO_THREAD_SAFETY_ANALYSIS;
