// Known-bad fixture: raw thread_local without a justification, plus a
// naked DFS_THREAD_LOCAL_OK marker. The justified declaration at the
// end must NOT fire. Never compiled.

namespace fixture {

thread_local int t_unjustified_counter = 0;

// DFS_THREAD_LOCAL_OK:
thread_local int t_naked_marker = 0;

// DFS_THREAD_LOCAL_OK: per-thread scratch, reset on every entry.
thread_local int t_justified = 0;

}  // namespace fixture
