// Lint fixture: every line below must fire [banned-symbol]
// (tests/lint/dfs_lint_test.py). Never compiled.
#include <cstdlib>

int AmbientRandom() {
  std::srand(7);
  int a = std::rand();
  std::random_device rd;
  auto wall = std::chrono::system_clock::now();
  long t = time(nullptr);
  long c = clock();
  (void)wall;
  return a + static_cast<int>(rd() + t + c);
}
