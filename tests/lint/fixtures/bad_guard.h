// Lint fixture: guard name does not match the canonical
// DFS_BAD_GUARD_H_ and there is no #pragma once, so [header-guard]
// must fire. Never compiled.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

struct Unused {};

#endif  // WRONG_GUARD_NAME_H
