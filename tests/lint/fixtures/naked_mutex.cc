// Lint fixture: raw std primitives must fire [naked-mutex]. Never
// compiled.
#include <mutex>

std::mutex g_mu;
std::once_flag g_once;

void Touch() {
  std::lock_guard<std::mutex> lock(g_mu);
}
