#!/usr/bin/env python3
"""Self-test for tools/dfs_lint.py (wired into ctest as lint.selftest).

Two halves:
  1. Each lint rule must fire on its known-bad fixture in
     tests/lint/fixtures/ — a rule that stops firing is a rule that
     silently stopped guarding its contract.
  2. The real tree (src/, tools/) must lint clean, so the fixture run
     also proves the rules don't fire vacuously everywhere.
"""

import os
import re
import subprocess
import sys
import unittest

TESTS_LINT = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(TESTS_LINT))
DFS_LINT = os.path.join(REPO, "tools", "dfs_lint.py")
FIXTURES = os.path.join(TESTS_LINT, "fixtures")

# rule -> fixture file(s) it must fire on (at least once on each).
EXPECTED = {
    "banned-symbol": ["banned_symbol.cc", "volatile.cc", "thread_local.cc"],
    "naked-mutex": ["naked_mutex.cc"],
    "header-guard": ["bad_guard.h"],
    "include-order": ["bad_include_order.cc"],
    "dcheck-side-effect": ["bad_dcheck.cc"],
    "metric-name": ["bad_metric.cc"],
    "naked-exemption": ["bad_exemption.cc"],
    "linalg-span": ["linalg/bad_span.h"],
}

VIOLATION_RE = re.compile(r"^dfs_lint: (\S+?):(\d+): \[([a-z-]+)\]")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, DFS_LINT, *args],
        capture_output=True, text=True, check=False)


class DfsLintTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.fixture_run = run_lint("--root", FIXTURES)
        cls.fired = set()  # (fixture file, rule)
        for line in cls.fixture_run.stderr.splitlines():
            match = VIOLATION_RE.match(line)
            if match:
                cls.fired.add((match.group(1), match.group(3)))

    def test_fixture_run_fails(self):
        self.assertEqual(self.fixture_run.returncode, 1,
                         self.fixture_run.stderr)

    def test_each_rule_fires_on_its_fixture(self):
        for rule, fixtures in EXPECTED.items():
            for fixture in fixtures:
                with self.subTest(rule=rule, fixture=fixture):
                    self.assertIn(
                        (fixture, rule), self.fired,
                        f"rule [{rule}] did not fire on {fixture}; "
                        f"fired={sorted(self.fired)}")

    def test_no_rule_fires_on_a_foreign_fixture(self):
        # Each fixture exercises exactly one rule; cross-fire means a rule
        # got too broad (the include-order fixture's sibling header is the
        # one deliberate extra file and triggers nothing itself).
        allowed = {(fixture, rule)
                   for rule, fixtures in EXPECTED.items()
                   for fixture in fixtures}
        self.assertEqual(self.fired - allowed, set())

    def test_real_tree_is_clean(self):
        result = run_lint()
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertIn("dfs_lint: OK", result.stdout)

    def test_protocol_flag_controls_metric_rule(self):
        # Pointing --protocol at a file that doesn't document the tree's
        # instruments must surface metric-name violations: proves the
        # cross-check really reads the contract it claims to.
        result = run_lint("--protocol", os.devnull)
        self.assertEqual(result.returncode, 1)
        self.assertIn("[metric-name]", result.stderr)


if __name__ == "__main__":
    unittest.main()
