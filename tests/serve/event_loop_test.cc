#include "serve/event_loop.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "serve/line_protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "testing/test_util.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace dfs::serve {
namespace {

constexpr char kDataset[] = "serve-lin";

std::unique_ptr<DfsServer> MakeServer(int workers, size_t capacity) {
  ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = capacity;
  auto server = std::make_unique<DfsServer>(options);
  server->RegisterDataset(kDataset,
                          testing::MakeLinearDataset(200, 4, 1234));
  return server;
}

/// A submit whose job cannot satisfy its constraints and never exhausts
/// its search space: it occupies a worker / queue slot until cancelled
/// (DfsServer::Shutdown cancels it).
std::string EndlessSubmitLine(uint64_t seed = 42) {
  JobRequest request;
  request.dataset = kDataset;
  request.strategy = "SA(NR)";
  constraints::ConstraintSet set;
  set.min_f1 = 0.999;
  set.max_search_seconds = 60.0;
  request.constraint_set = set;
  request.seed = seed;
  return FormatSubmitLine(request);
}

std::string PingLine() {
  JsonObject object;
  object["op"] = JsonValue::String("ping");
  return WriteJsonLine(object);
}

/// Front-end + client channel for one test.
struct Harness {
  explicit Harness(DfsServer& server, EventLoopOptions options = {})
      : frontend(server, options) {
    Status status = frontend.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  StatusOr<int> Connect() {
    return TcpConnect("127.0.0.1", frontend.port());
  }

  EventLoopFrontEnd frontend;
};

// Every response must be byte-identical to what Dispatch() produces for
// the same line — the event loop changes how bytes move, never what they
// say. Covers a healthy verb, an unknown-id error, and a parse error, all
// pipelined on one keep-alive channel.
TEST(EventLoopTest, ResponsesMatchDispatchByteForByte) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  Harness harness(*server);

  const std::vector<std::string> lines = {
      PingLine(),
      R"({"id":99999,"op":"cancel"})",
      "this is not json",
  };
  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  LineChannel channel(*fd);
  for (const std::string& line : lines) {
    ASSERT_TRUE(channel.WriteLine(line).ok());
  }
  for (const std::string& line : lines) {
    auto response = channel.ReadLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, Dispatch(*server, line).response);
  }
}

// 1k idle channels held open while a live one keeps getting served: the
// event loop multiplexes them on a handful of threads instead of needing
// a thread each, and the open-connections accounting sees all of them.
TEST(EventLoopTest, ThousandIdleChannelsDoNotStarveService) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  EventLoopOptions options;
  options.io_threads = 2;
  options.max_connections = 2048;
  Harness harness(*server, options);

  constexpr int kIdle = 1000;
  std::vector<int> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    auto fd = harness.Connect();
    ASSERT_TRUE(fd.ok()) << "connect " << i << ": "
                         << fd.status().ToString();
    idle.push_back(*fd);
  }

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  LineChannel channel(*fd);
  const std::string expected = Dispatch(*server, PingLine()).response;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.WriteLine(PingLine()).ok());
    EXPECT_EQ(channel.ReadLine().value_or(""), expected);
  }

  // The acceptor may still be draining the backlog; wait for the gauge.
  Stopwatch watch;
  while (harness.frontend.open_connections() < kIdle + 1 &&
         watch.ElapsedSeconds() < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(harness.frontend.open_connections(),
            static_cast<size_t>(kIdle + 1));

  for (const int idle_fd : idle) ::close(idle_fd);
}

// A slow writer dripping one request a few bytes at a time: the channel's
// read buffer must reassemble the line across many epoll wakeups, and a
// second request pipelined in the same trailing chunk must be answered
// too.
TEST(EventLoopTest, SlowWriterDripsPartialLineAcrossWakeups) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  Harness harness(*server);

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  const std::string request = PingLine() + "\n";
  for (size_t i = 0; i < request.size(); i += 3) {
    const size_t n = std::min<size_t>(3, request.size() - i);
    ASSERT_EQ(::send(*fd, request.data() + i, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Tail of the drip carries a full second request in one chunk.
  ASSERT_EQ(::send(*fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  LineChannel channel(*fd);
  const std::string expected = Dispatch(*server, PingLine()).response;
  EXPECT_EQ(channel.ReadLine().value_or(""), expected);
  EXPECT_EQ(channel.ReadLine().value_or(""), expected);
}

// Admission control: with the watermark at 1 and one endless job parked in
// the queue, a further submit must get the exact ShedResponse() bytes —
// and non-submit verbs must keep working (status polls are never shed).
TEST(EventLoopTest, ShedResponseBytesAtWatermark) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  EventLoopOptions options;
  options.shed_watermark = 1;
  Harness harness(*server, options);

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  LineChannel channel(*fd);

  // First endless job: accepted, soon picked up by the single worker.
  ASSERT_TRUE(channel.WriteLine(EndlessSubmitLine(1)).ok());
  auto first = channel.ReadLine();
  ASSERT_TRUE(first.ok());
  auto first_object = ParseJsonLine(*first);
  ASSERT_TRUE(first_object.ok());
  ASSERT_TRUE(GetBool(*first_object, "ok").value_or(false)) << *first;

  // Wait until the worker has it RUNNING (queue drained back to 0), then
  // park a second endless job in the queue: depth stays pinned at 1.
  Stopwatch watch;
  while (server->QueueDepth() > 0 && watch.ElapsedSeconds() < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server->QueueDepth(), 0u);
  ASSERT_TRUE(channel.WriteLine(EndlessSubmitLine(2)).ok());
  auto second = channel.ReadLine();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(server->QueueDepth(), 1u);

  ASSERT_TRUE(channel.WriteLine(EndlessSubmitLine(3)).ok());
  EXPECT_EQ(channel.ReadLine().value_or(""), ShedResponse());

  // Non-submit traffic still flows at the watermark.
  ASSERT_TRUE(channel.WriteLine(PingLine()).ok());
  EXPECT_EQ(channel.ReadLine().value_or(""),
            Dispatch(*server, PingLine()).response);
}

// Accept-time shed under fd pressure: past max_connections, a new
// connection gets the exact AcceptShedResponse() bytes and EOF, while the
// established channel keeps working.
TEST(EventLoopTest, AcceptShedPastConnectionLimit) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  EventLoopOptions options;
  options.max_connections = 1;
  Harness harness(*server, options);

  auto first = harness.Connect();
  ASSERT_TRUE(first.ok());
  LineChannel established(*first);
  const std::string expected = Dispatch(*server, PingLine()).response;
  ASSERT_TRUE(established.WriteLine(PingLine()).ok());
  ASSERT_EQ(established.ReadLine().value_or(""), expected);

  auto second = harness.Connect();
  ASSERT_TRUE(second.ok());
  LineChannel shed(*second);
  EXPECT_EQ(shed.ReadLine().value_or(""), AcceptShedResponse());
  EXPECT_EQ(shed.ReadLine().status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(established.WriteLine(PingLine()).ok());
  EXPECT_EQ(established.ReadLine().value_or(""), expected);
}

// An abrupt RST mid-line (SO_LINGER{1,0} close with half a request
// buffered) must only kill that channel — the front-end and other
// channels survive.
TEST(EventLoopTest, AbruptRstMidLineLeavesServiceHealthy) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  Harness harness(*server);

  auto doomed = harness.Connect();
  ASSERT_TRUE(doomed.ok());
  const std::string partial = R"({"op":"pi)";
  ASSERT_EQ(::send(*doomed, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  struct linger hard_close = {1, 0};
  ASSERT_EQ(::setsockopt(*doomed, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(*doomed);  // RST instead of FIN

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  LineChannel channel(*fd);
  ASSERT_TRUE(channel.WriteLine(PingLine()).ok());
  EXPECT_EQ(channel.ReadLine().value_or(""),
            Dispatch(*server, PingLine()).response);
}

// tcp_test's line-cap case re-pointed at the event loop: a peer streaming
// past kMaxLineBytes without a newline gets its connection closed (no
// response) instead of growing the server buffer without bound.
TEST(EventLoopTest, OverlongLineClosesConnection) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  Harness harness(*server);

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  const std::string chunk(4096, 'x');
  size_t sent = 0;
  // The server closes once its residue passes the cap; from then on our
  // sends start failing (EPIPE/ECONNRESET — MSG_NOSIGNAL, no SIGPIPE,
  // same contract tcp_test checks for LineChannel). Bound the loop well
  // past cap + socket buffers in case every send is accepted locally.
  bool closed = false;
  while (sent < 8 * kMaxLineBytes) {
    const ssize_t n = ::send(*fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      closed = true;
      break;
    }
    sent += static_cast<size_t>(n);
  }
  EXPECT_TRUE(closed);
  ::close(*fd);
}

// tcp_test's EOF case re-pointed at the event loop: a final unterminated
// line before EOF is still served (LineChannel::ReadLine semantics), and
// the response is flushed before the server closes its side.
TEST(EventLoopTest, FinalUnterminatedLineBeforeEofIsServed) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  Harness harness(*server);

  auto fd = harness.Connect();
  ASSERT_TRUE(fd.ok());
  const std::string request = PingLine();  // no trailing '\n'
  ASSERT_EQ(::send(*fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::shutdown(*fd, SHUT_WR), 0);  // EOF to the server

  LineChannel channel(*fd);
  EXPECT_EQ(channel.ReadLine().value_or(""),
            Dispatch(*server, PingLine()).response);
  EXPECT_EQ(channel.ReadLine().status().code(), StatusCode::kNotFound);
}

// A client-issued shutdown verb stops the whole front-end: the response is
// acknowledged on the wire first and Wait() reports the client-initiated
// stop, which is how dfs_serverd decides to run its state spills.
TEST(EventLoopTest, ClientShutdownVerbStopsFrontEnd) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  auto harness = std::make_unique<Harness>(*server);
  const int port = harness->frontend.port();

  auto fd = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(fd.ok());
  LineChannel channel(*fd);
  JsonObject object;
  object["op"] = JsonValue::String("shutdown");
  ASSERT_TRUE(channel.WriteLine(WriteJsonLine(object)).ok());
  auto response = channel.ReadLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto parsed = ParseJsonLine(*response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(GetBool(*parsed, "ok").value_or(false)) << *response;

  EXPECT_TRUE(harness->frontend.Wait());
  harness.reset();
}

}  // namespace
}  // namespace dfs::serve
