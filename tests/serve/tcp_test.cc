#include "serve/tcp.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "util/status.h"

namespace dfs::serve {
namespace {

TEST(LineChannelTest, ReadLineSplitsOnNewlineAndStripsCr) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineChannel writer(fds[0]);
  LineChannel reader(fds[1]);

  ASSERT_TRUE(writer.WriteLine("first").ok());
  ASSERT_TRUE(writer.WriteLine("second\r").ok());
  writer.Close();  // EOF after the two lines

  EXPECT_EQ(reader.ReadLine().value_or(""), "first");
  EXPECT_EQ(reader.ReadLine().value_or(""), "second");
  EXPECT_EQ(reader.ReadLine().status().code(), StatusCode::kNotFound);
}

// A peer streaming bytes with no newline must fail the read with
// ResourceExhausted instead of growing the server's buffer without bound.
TEST(LineChannelTest, ReadLineRejectsOverlongLine) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineChannel reader(fds[0]);
  std::thread writer([fd = fds[1]] {
    const std::string chunk(4096, 'x');
    // One chunk past the cap: the reader consumes until just over the cap,
    // so everything sent here is drained and this thread never blocks.
    size_t sent = 0;
    while (sent < kMaxLineBytes + chunk.size()) {
      const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(fd);
  });
  EXPECT_EQ(reader.ReadLine().status().code(),
            StatusCode::kResourceExhausted);
  writer.join();
}

// Writing to a disconnected peer must come back as a Status error; without
// MSG_NOSIGNAL the kernel would deliver SIGPIPE and kill the process (and
// this whole test binary).
TEST(LineChannelTest, WriteToDisconnectedPeerFailsWithoutSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineChannel writer(fds[0]);
  ::close(fds[1]);

  Status status = OkStatus();
  for (int i = 0; i < 8 && status.ok(); ++i) {
    status = writer.WriteLine(std::string(1024, 'x'));
  }
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace dfs::serve
