#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "serve/line_protocol.h"
#include "serve/tcp.h"
#include "testing/test_util.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace dfs::serve {
namespace {

constexpr char kDataset[] = "serve-lin";

/// Server over a small registered dataset (6 encoded features) so each
/// wrapper evaluation costs milliseconds.
ServerOptions FastOptions(int workers, size_t capacity) {
  ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = capacity;
  return options;
}

std::unique_ptr<DfsServer> MakeServer(int workers, size_t capacity) {
  auto server = std::make_unique<DfsServer>(FastOptions(workers, capacity));
  server->RegisterDataset(kDataset,
                          testing::MakeLinearDataset(200, 4, 1234));
  return server;
}

JobRequest EasyJob(uint64_t seed = 42) {
  JobRequest request;
  request.dataset = kDataset;
  request.strategy = "SFS(NR)";
  constraints::ConstraintSet set;
  set.min_f1 = 0.5;
  set.max_search_seconds = 10.0;
  request.constraint_set = set;
  request.seed = seed;
  return request;
}

/// A job that cannot satisfy its constraints and never exhausts its search
/// space, so it runs for its whole budget unless cancelled.
JobRequest EndlessJob(double budget_seconds, uint64_t seed = 42) {
  JobRequest request;
  request.dataset = kDataset;
  request.strategy = "SA(NR)";
  constraints::ConstraintSet set;
  set.min_f1 = 0.999;
  set.max_search_seconds = budget_seconds;
  request.constraint_set = set;
  request.seed = seed;
  return request;
}

Status WaitForState(const DfsServer& server, JobId id, JobState state,
                    double timeout_seconds) {
  Stopwatch stopwatch;
  while (stopwatch.ElapsedSeconds() < timeout_seconds) {
    auto view = server.GetStatus(id);
    if (!view.ok()) return view.status();
    if (view->state == state) return OkStatus();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return DeadlineExceededError("state not reached");
}

// ---- The ISSUE acceptance demo --------------------------------------

TEST(DfsServerTest, ThirtyTwoConcurrentJobsOnFourWorkers) {
  auto server = MakeServer(/*workers=*/4, /*capacity=*/64);
  std::vector<JobId> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = server->Submit(EasyJob(/*seed=*/100 + i));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (const JobId id : ids) {
    ASSERT_TRUE(server->WaitForTerminal(id, 120.0).ok()) << "job " << id;
  }
  int successes = 0;
  for (const JobId id : ids) {
    auto view = server->GetStatus(id);
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(IsTerminalState(view->state));
    auto result = server->GetResult(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->strategy.empty());
    EXPECT_GT(result->evaluations, 0);
    if (result->success) {
      ++successes;
      EXPECT_FALSE(result->features.empty());
      EXPECT_EQ(result->features.size(), result->feature_names.size());
      EXPECT_GE(result->validation_values.f1, 0.5);
    }
  }
  EXPECT_GT(successes, 0);  // the scenario is easy; most jobs satisfy it

  // Counters reconcile: every accepted job reached exactly one terminal
  // counter; rejected is separate and zero here.
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, 32u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.terminal(),
            stats.completed + stats.failed + stats.cancelled +
                stats.timed_out);
  EXPECT_EQ(stats.accepted, stats.terminal());
  EXPECT_EQ(stats.completed, 32u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0);
  EXPECT_GT(stats.evaluations, 0u);
  EXPECT_GT(stats.run_seconds_total, 0.0);
  EXPECT_GE(stats.run_seconds_total, stats.run_seconds_max);
}

TEST(DfsServerTest, FullQueueRejectsInsteadOfBlocking) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/2);
  auto running = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(running.ok());
  // Deterministic backpressure: wait until the single worker owns job 1,
  // then exactly two submissions fit in the queue.
  ASSERT_TRUE(
      WaitForState(*server, *running, JobState::kRunning, 10.0).ok());
  auto queued1 = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(queued1.ok());
  auto queued2 = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(queued2.ok());

  Stopwatch stopwatch;
  auto rejected = server->Submit(EndlessJob(30.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);  // backpressure, not blocking

  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth, 2u);

  // Cancelling a queued job frees a slot for a new submission.
  ASSERT_TRUE(server->Cancel(*queued1).ok());
  EXPECT_TRUE(server->Submit(EasyJob()).ok());
  server->Shutdown(/*cancel_pending=*/true);
}

TEST(DfsServerTest, CancellingARunningJobStopsItPromptly) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  // Budget 30 s; the test only passes if cancellation cuts that short.
  auto id = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(WaitForState(*server, *id, JobState::kRunning, 10.0).ok());

  Stopwatch stopwatch;
  ASSERT_TRUE(server->Cancel(*id).ok());
  ASSERT_TRUE(server->WaitForTerminal(*id, 10.0).ok());
  // "Within one evaluation": evaluations on the 6-feature dataset cost
  // milliseconds, so seconds of slack is already generous.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 5.0);

  auto view = server->GetStatus(*id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->state, JobState::kCancelled);
  EXPECT_EQ(server->GetResult(*id).status().code(), StatusCode::kCancelled);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.accepted, stats.terminal());
}

TEST(DfsServerTest, CancellingAQueuedJobNeverRuns) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  auto running = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(
      WaitForState(*server, *running, JobState::kRunning, 10.0).ok());
  auto queued = server->Submit(EasyJob());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(server->Cancel(*queued).ok());
  auto view = server->GetStatus(*queued);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->state, JobState::kCancelled);
  EXPECT_EQ(view->run_seconds, 0.0);
  // Cancel is idempotent; cancelling a terminal non-cancelled job is not.
  EXPECT_TRUE(server->Cancel(*queued).ok());
  server->Shutdown(/*cancel_pending=*/true);
}

TEST(DfsServerTest, TimedOutJobReportsBestEffortResult) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  auto id = server->Submit(EndlessJob(/*budget_seconds=*/0.3));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server->WaitForTerminal(*id, 30.0).ok());
  auto view = server->GetStatus(*id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->state, JobState::kTimedOut);
  auto result = server->GetResult(*id);  // best subset found, not success
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->success);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.timed_out, 1u);
}

TEST(DfsServerTest, UnknownDatasetFailsTheJob) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  JobRequest request = EasyJob();
  request.dataset = "no-such-dataset";
  auto id = server->Submit(request);
  ASSERT_TRUE(id.ok());  // submit accepts; resolution happens in the worker
  ASSERT_TRUE(server->WaitForTerminal(*id, 30.0).ok());
  auto view = server->GetStatus(*id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->state, JobState::kFailed);
  EXPECT_NE(view->error.find("no-such-dataset"), std::string::npos);
  EXPECT_EQ(server->GetResult(*id).status().code(), StatusCode::kInternal);
  EXPECT_EQ(server->Stats().failed, 1u);
}

TEST(DfsServerTest, UnknownStrategyRejectedAtSubmit) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  JobRequest request = EasyJob();
  request.strategy = "GradientDescent(NR)";
  auto id = server->Submit(request);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  // Client errors are neither accepted nor backpressure rejections.
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(DfsServerTest, AutoStrategyFallsBackWithoutOptimizer) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  JobRequest request = EasyJob();
  request.strategy = "auto";
  auto id = server->Submit(request);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server->WaitForTerminal(*id, 60.0).ok());
  auto result = server->GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, "SFFS(NR)");  // documented default
}

TEST(DfsServerTest, RoutedSubmitResponseCarriesRouteFields) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  JsonObject response =
      ParseJsonLine(Dispatch(*server,
                             std::string(R"({"op":"submit","dataset":")") +
                                 kDataset +
                                 R"js(","strategy":"auto","min_f1":0.5,)js"
                                 R"js("budget":10})js")
                        .response)
          .value_or(JsonObject{});
  ASSERT_TRUE(GetBool(response, "ok").value_or(false));
  // An "auto" submit explains its route in the accept line (PROTOCOL.md):
  // the resolved strategy and the deciding policy.
  EXPECT_EQ(GetString(response, "strategy").value_or(""), "SFFS(NR)");
  EXPECT_EQ(GetString(response, "route_policy").value_or(""), "static");
  EXPECT_FALSE(GetBool(response, "route_explored").value_or(true));
  EXPECT_FALSE(GetBool(response, "route_portfolio").value_or(true));
  const int id = static_cast<int>(GetNumber(response, "id").value_or(0));
  ASSERT_TRUE(server->WaitForTerminal(id, 60.0).ok());
  auto route = server->GetRoute(id);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->chosen, fs::StrategyId::kSffs);

  // Explicit-strategy submits carry no route fields.
  JsonObject explicit_response =
      ParseJsonLine(Dispatch(*server,
                             std::string(R"({"op":"submit","dataset":")") +
                                 kDataset +
                                 R"js(","strategy":"SFS(NR)","min_f1":0.5,)js"
                                 R"js("budget":10})js")
                        .response)
          .value_or(JsonObject{});
  ASSERT_TRUE(GetBool(explicit_response, "ok").value_or(false));
  EXPECT_FALSE(GetString(explicit_response, "route_policy").ok());
}

TEST(DfsServerTest, RouterVerbReportsRoutingState) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/4);
  JobRequest request = EasyJob();
  request.strategy = "auto";
  auto id = server->Submit(request);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server->WaitForTerminal(*id, 60.0).ok());

  JsonObject response =
      ParseJsonLine(Dispatch(*server, R"({"op":"router"})").response)
          .value_or(JsonObject{});
  EXPECT_TRUE(GetBool(response, "ok").value_or(false));
  EXPECT_EQ(GetString(response, "policy").value_or(""), "static");
  EXPECT_EQ(GetNumber(response, "decisions").value_or(-1), 1.0);
  EXPECT_EQ(GetNumber(response, "generation").value_or(-1), 0.0);
  EXPECT_FALSE(GetBool(response, "optimizer_loaded").value_or(true));
  // Per-strategy route counts, flattened with sanitized labels.
  EXPECT_EQ(GetNumber(response, "routes.sffs_nr").value_or(-1), 1.0);
}

TEST(DfsServerTest, PriorityJobsOvertakeTheQueue) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/8);
  auto head = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(WaitForState(*server, *head, JobState::kRunning, 10.0).ok());
  JobRequest low = EasyJob(1);
  JobRequest high = EasyJob(2);
  high.priority = 5;
  auto low_id = server->Submit(low);
  auto high_id = server->Submit(high);
  ASSERT_TRUE(low_id.ok());
  ASSERT_TRUE(high_id.ok());
  ASSERT_TRUE(server->Cancel(*head).ok());  // free the worker
  ASSERT_TRUE(server->WaitForTerminal(*high_id, 60.0).ok());
  // The high-priority job must not still be sitting behind the low one.
  auto low_view = server->GetStatus(*low_id);
  ASSERT_TRUE(low_view.ok());
  auto high_view = server->GetStatus(*high_id);
  ASSERT_TRUE(high_view.ok());
  EXPECT_TRUE(IsTerminalState(high_view->state));
  server->Shutdown(/*cancel_pending=*/true);
}

TEST(DfsServerTest, ResultStoreEvictsByTtl) {
  ServerOptions options = FastOptions(/*workers=*/1, /*capacity=*/8);
  options.result_ttl_seconds = 0.05;
  DfsServer server(options);
  server.RegisterDataset(kDataset, testing::MakeLinearDataset(200, 4, 1234));
  auto id = server.Submit(EasyJob());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.WaitForTerminal(*id, 60.0).ok());
  ASSERT_TRUE(server.GetStatus(*id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The sweep runs on submission.
  ASSERT_TRUE(server.Submit(EasyJob()).ok());
  EXPECT_EQ(server.GetStatus(*id).status().code(), StatusCode::kNotFound);
}

TEST(DfsServerTest, ShutdownCancelsPendingWork) {
  auto server = MakeServer(/*workers=*/1, /*capacity=*/8);
  auto running = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(
      WaitForState(*server, *running, JobState::kRunning, 10.0).ok());
  auto queued = server->Submit(EndlessJob(30.0));
  ASSERT_TRUE(queued.ok());

  Stopwatch stopwatch;
  server->Shutdown(/*cancel_pending=*/true);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 10.0);  // not the 30 s budgets
  EXPECT_EQ(server->GetStatus(*running)->state, JobState::kCancelled);
  EXPECT_EQ(server->GetStatus(*queued)->state, JobState::kCancelled);
  EXPECT_EQ(server->Submit(EasyJob()).status().code(),
            StatusCode::kFailedPrecondition);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, stats.terminal());
}

// ---- TCP front-end end-to-end ---------------------------------------

TEST(ServeFrontendTest, TcpLineProtocolEndToEnd) {
  auto server = MakeServer(/*workers=*/2, /*capacity=*/8);
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(/*port=*/0).ok());
  std::thread acceptor([&server, &listener] {
    while (true) {
      auto client = listener.Accept();
      if (!client.ok()) return;
      LineChannel channel(*client);
      if (ServeConnection(*server, channel)) return;
    }
  });

  auto fd = TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  LineChannel client(*fd);
  const auto round_trip = [&client](const std::string& line) {
    EXPECT_TRUE(client.WriteLine(line).ok());
    auto response = client.ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    auto object = ParseJsonLine(response.value_or("{}"));
    EXPECT_TRUE(object.ok()) << *response;
    return object.value_or(JsonObject{});
  };

  JsonObject pong = round_trip(R"({"op":"ping"})");
  EXPECT_TRUE(GetBool(pong, "ok").value_or(false));
  EXPECT_EQ(GetString(pong, "service").value_or(""), "dfs-serve");

  JsonObject submitted = round_trip(
      std::string(R"({"op":"submit","dataset":")") + kDataset +
      R"js(","strategy":"SFS(NR)","min_f1":0.5,"budget":10})js");
  ASSERT_TRUE(GetBool(submitted, "ok").value_or(false));
  const int id = static_cast<int>(GetNumber(submitted, "id").value_or(0));
  ASSERT_GT(id, 0);

  // Poll over the wire until terminal.
  std::string state = "QUEUED";
  Stopwatch stopwatch;
  while ((state == "QUEUED" || state == "RUNNING") &&
         stopwatch.ElapsedSeconds() < 60.0) {
    JsonObject status = round_trip(
        R"({"op":"status","id":)" + std::to_string(id) + "}");
    ASSERT_TRUE(GetBool(status, "ok").value_or(false));
    state = GetString(status, "state").value_or("");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "DONE");

  JsonObject result = round_trip(
      R"({"op":"result","id":)" + std::to_string(id) + "}");
  EXPECT_TRUE(GetBool(result, "ok").value_or(false));
  EXPECT_TRUE(GetBool(result, "success").value_or(false));
  EXPECT_EQ(GetString(result, "strategy").value_or(""), "SFS(NR)");
  EXPECT_GT(GetNumber(result, "num_features").value_or(0), 0);

  // Unknown job over the wire.
  JsonObject missing = round_trip(R"({"op":"status","id":999})");
  EXPECT_FALSE(GetBool(missing, "ok").value_or(true));
  EXPECT_EQ(GetString(missing, "error").value_or(""), "not_found");

  // Malformed line gets a structured error, and the connection survives.
  EXPECT_TRUE(client.WriteLine("this is not json").ok());
  auto error_line = client.ReadLine();
  ASSERT_TRUE(error_line.ok());
  auto error = ParseJsonLine(*error_line);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(GetString(*error, "error").value_or(""), "bad_request");

  JsonObject stats = round_trip(R"({"op":"stats"})");
  EXPECT_TRUE(GetBool(stats, "ok").value_or(false));
  EXPECT_GE(GetNumber(stats, "accepted").value_or(0), 1.0);
  EXPECT_EQ(GetNumber(stats, "rejected").value_or(-1), 0.0);

  JsonObject bye = round_trip(R"({"op":"shutdown"})");
  EXPECT_TRUE(GetBool(bye, "shutting_down").value_or(false));
  acceptor.join();
  listener.Close();
}

TEST(ServeFrontendTest, MetricsVerbRoundTripsOverTcp) {
  auto server = MakeServer(/*workers=*/2, /*capacity=*/8);
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(/*port=*/0).ok());
  std::thread acceptor([&server, &listener] {
    while (true) {
      auto client = listener.Accept();
      if (!client.ok()) return;
      LineChannel channel(*client);
      if (ServeConnection(*server, channel)) return;
    }
  });

  auto fd = TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  LineChannel client(*fd);
  const auto round_trip = [&client](const std::string& line) {
    EXPECT_TRUE(client.WriteLine(line).ok());
    auto response = client.ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    auto object = ParseJsonLine(response.value_or("{}"));
    EXPECT_TRUE(object.ok()) << *response;
    return object.value_or(JsonObject{});
  };

  // Run a job to completion so the serve counters and the job-latency
  // histogram have observations.
  JsonObject submitted = round_trip(
      std::string(R"({"op":"submit","dataset":")") + kDataset +
      R"js(","strategy":"SFS(NR)","min_f1":0.5,"budget":10})js");
  ASSERT_TRUE(GetBool(submitted, "ok").value_or(false));
  const int id = static_cast<int>(GetNumber(submitted, "id").value_or(0));
  std::string state = "QUEUED";
  Stopwatch stopwatch;
  while ((state == "QUEUED" || state == "RUNNING") &&
         stopwatch.ElapsedSeconds() < 60.0) {
    JsonObject status = round_trip(
        R"({"op":"status","id":)" + std::to_string(id) + "}");
    state = GetString(status, "state").value_or("");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(state, "DONE");

  JsonObject metrics = round_trip(R"({"op":"metrics"})");
  EXPECT_TRUE(GetBool(metrics, "ok").value_or(false));
  // Cumulative job-state counters (the obs mirror of ServerStats).
  EXPECT_GE(GetNumber(metrics, "serve.jobs.completed").value_or(-1), 1.0);
  // Live gauges refreshed from server state at request time.
  EXPECT_EQ(GetNumber(metrics, "serve.queue_depth").value_or(-1), 0.0);
  EXPECT_EQ(GetNumber(metrics, "serve.running").value_or(-1), 0.0);
  // The flattened end-to-end latency histogram has the finished job.
  EXPECT_GE(GetNumber(metrics, "serve.job_seconds.count").value_or(-1),
            1.0);
  EXPECT_GT(GetNumber(metrics, "serve.job_seconds.sum").value_or(-1), 0.0);
  EXPECT_GE(GetNumber(metrics, "serve.job_seconds.p50").value_or(-1), 0.0);
  ASSERT_TRUE(GetString(metrics, "serve.job_seconds.buckets").ok());
  EXPECT_FALSE(
      GetString(metrics, "serve.job_seconds.buckets").value_or("").empty());
  // Engine instrumentation flows through the same snapshot.
  EXPECT_GE(GetNumber(metrics, "engine.evaluations").value_or(-1), 1.0);

  JsonObject bye = round_trip(R"({"op":"shutdown"})");
  EXPECT_TRUE(GetBool(bye, "shutting_down").value_or(false));
  acceptor.join();
  listener.Close();
}

}  // namespace
}  // namespace dfs::serve
