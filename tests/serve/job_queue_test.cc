#include "serve/job_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dfs::serve {
namespace {

std::shared_ptr<Job> MakeJob(JobId id, int priority = 0) {
  JobRequest request;
  request.dataset = "test";
  request.priority = priority;
  return std::make_shared<Job>(id, request);
}

TEST(JobQueueTest, PopsInFifoOrderWithinOnePriority) {
  JobQueue queue(8);
  EXPECT_EQ(queue.TrySubmit(MakeJob(1)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.TrySubmit(MakeJob(2)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.TrySubmit(MakeJob(3)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.PopBlocking()->id(), 1u);
  EXPECT_EQ(queue.PopBlocking()->id(), 2u);
  EXPECT_EQ(queue.PopBlocking()->id(), 3u);
}

TEST(JobQueueTest, HigherPriorityPopsFirst) {
  JobQueue queue(8);
  ASSERT_EQ(queue.TrySubmit(MakeJob(1, /*priority=*/0)),
            SubmitOutcome::kAccepted);
  ASSERT_EQ(queue.TrySubmit(MakeJob(2, /*priority=*/5)),
            SubmitOutcome::kAccepted);
  ASSERT_EQ(queue.TrySubmit(MakeJob(3, /*priority=*/5)),
            SubmitOutcome::kAccepted);
  ASSERT_EQ(queue.TrySubmit(MakeJob(4, /*priority=*/1)),
            SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.PopBlocking()->id(), 2u);  // highest priority, FIFO within
  EXPECT_EQ(queue.PopBlocking()->id(), 3u);
  EXPECT_EQ(queue.PopBlocking()->id(), 4u);
  EXPECT_EQ(queue.PopBlocking()->id(), 1u);
}

TEST(JobQueueTest, FullQueueReportsBackpressureWithoutBlocking) {
  JobQueue queue(2);
  EXPECT_EQ(queue.TrySubmit(MakeJob(1)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.TrySubmit(MakeJob(2)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.TrySubmit(MakeJob(3)), SubmitOutcome::kQueueFull);
  EXPECT_EQ(queue.size(), 2u);
  // Draining one slot re-admits.
  EXPECT_EQ(queue.PopBlocking()->id(), 1u);
  EXPECT_EQ(queue.TrySubmit(MakeJob(3)), SubmitOutcome::kAccepted);
}

TEST(JobQueueTest, CapacityHasAFloorOfOne) {
  JobQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.TrySubmit(MakeJob(1)), SubmitOutcome::kAccepted);
  EXPECT_EQ(queue.TrySubmit(MakeJob(2)), SubmitOutcome::kQueueFull);
}

TEST(JobQueueTest, RemoveTakesAQueuedJobOut) {
  JobQueue queue(8);
  ASSERT_EQ(queue.TrySubmit(MakeJob(1)), SubmitOutcome::kAccepted);
  ASSERT_EQ(queue.TrySubmit(MakeJob(2)), SubmitOutcome::kAccepted);
  EXPECT_TRUE(queue.Remove(1));
  EXPECT_FALSE(queue.Remove(1));   // already gone
  EXPECT_FALSE(queue.Remove(99));  // never queued
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PopBlocking()->id(), 2u);
}

TEST(JobQueueTest, CloseRejectsSubmitsAndDrainsConsumers) {
  JobQueue queue(8);
  ASSERT_EQ(queue.TrySubmit(MakeJob(1)), SubmitOutcome::kAccepted);
  queue.Close();
  EXPECT_EQ(queue.TrySubmit(MakeJob(2)), SubmitOutcome::kClosed);
  EXPECT_NE(queue.PopBlocking(), nullptr);  // drains the remaining job
  EXPECT_EQ(queue.PopBlocking(), nullptr);  // then reports closed
}

TEST(JobQueueTest, CloseUnblocksWaitingConsumer) {
  JobQueue queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&queue, &returned] {
    EXPECT_EQ(queue.PopBlocking(), nullptr);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(JobQueueTest, ManyProducersManyConsumersDeliverEachJobOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 200;
  JobQueue queue(32);

  std::atomic<int> popped{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer + 1);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::shared_ptr<Job> job = queue.PopBlocking()) {
        seen[job->id()].fetch_add(1);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const JobId id = static_cast<JobId>(p * kPerProducer + i + 1);
        // Spin on backpressure: the queue is deliberately smaller than the
        // total offered load.
        while (queue.TrySubmit(MakeJob(id, /*priority=*/i % 3)) !=
               SubmitOutcome::kAccepted) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  // Drain, then close.
  while (queue.size() > 0) std::this_thread::yield();
  queue.Close();
  for (auto& consumer : consumers) consumer.join();

  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  for (int id = 1; id <= kProducers * kPerProducer; ++id) {
    EXPECT_EQ(seen[id].load(), 1) << "job " << id;
  }
}

}  // namespace
}  // namespace dfs::serve
