#include "serve/line_protocol.h"

#include <gtest/gtest.h>

namespace dfs::serve {
namespace {

TEST(JsonLineTest, ParsesScalars) {
  auto object = ParseJsonLine(
      R"({"name":"COMPAS","count":3,"ratio":0.25,"neg":-1.5e2,"on":true,)"
      R"("off":false})");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(GetString(*object, "name").value(), "COMPAS");
  EXPECT_EQ(GetNumber(*object, "count").value(), 3.0);
  EXPECT_EQ(GetNumber(*object, "ratio").value(), 0.25);
  EXPECT_EQ(GetNumber(*object, "neg").value(), -150.0);
  EXPECT_TRUE(GetBool(*object, "on").value());
  EXPECT_FALSE(GetBool(*object, "off").value());
}

TEST(JsonLineTest, RoundTripsEscapes) {
  JsonObject object;
  object["text"] = JsonValue::String("line\nwith \"quotes\" and \\slash");
  const std::string line = WriteJsonLine(object);
  auto parsed = ParseJsonLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(GetString(*parsed, "text").value(),
            "line\nwith \"quotes\" and \\slash");
}

TEST(JsonLineTest, EmptyObjectRoundTrips) {
  auto parsed = ParseJsonLine(WriteJsonLine({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(JsonLineTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJsonLine("").ok());
  EXPECT_FALSE(ParseJsonLine("not json").ok());
  EXPECT_FALSE(ParseJsonLine(R"({"a":1)").ok());
  EXPECT_FALSE(ParseJsonLine(R"({"a" 1})").ok());
  EXPECT_FALSE(ParseJsonLine(R"({"a":})").ok());
  EXPECT_FALSE(ParseJsonLine(R"({"a":1} extra)").ok());
  EXPECT_FALSE(ParseJsonLine(R"({"a":[1,2]})").ok());  // no nesting
  EXPECT_FALSE(ParseJsonLine(R"({"a":{"b":1}})").ok());
}

TEST(JsonLineTest, TypedGettersReportWrongTypes) {
  auto object = ParseJsonLine(R"({"n":1,"s":"x"})");
  ASSERT_TRUE(object.ok());
  EXPECT_FALSE(GetString(*object, "n").ok());
  EXPECT_FALSE(GetNumber(*object, "s").ok());
  EXPECT_FALSE(GetBool(*object, "n").ok());
  EXPECT_FALSE(GetNumber(*object, "missing").ok());
  EXPECT_FALSE(GetOptionalNumber(*object, "s").has_value());
  EXPECT_EQ(GetOptionalNumber(*object, "n").value(), 1.0);
}

TEST(RequestParseTest, ParsesSubmitWithConstraints) {
  auto request = ParseRequestLine(
      R"js({"op":"submit","dataset":"COMPAS","model":"dt","strategy":"SFS(NR)",)js"
      R"js("min_f1":0.65,"min_eo":0.9,"max_features":0.5,"budget":2.5,)js"
      R"js("priority":3,"seed":7,"hpo":true})js");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Request::Op::kSubmit);
  const JobRequest& job = request->submit;
  EXPECT_EQ(job.dataset, "COMPAS");
  EXPECT_EQ(job.model, ml::ModelKind::kDecisionTree);
  EXPECT_EQ(job.strategy, "SFS(NR)");
  EXPECT_EQ(job.constraint_set.min_f1, 0.65);
  EXPECT_EQ(job.constraint_set.max_search_seconds, 2.5);
  ASSERT_TRUE(job.constraint_set.min_equal_opportunity.has_value());
  EXPECT_EQ(*job.constraint_set.min_equal_opportunity, 0.9);
  ASSERT_TRUE(job.constraint_set.max_feature_fraction.has_value());
  EXPECT_EQ(*job.constraint_set.max_feature_fraction, 0.5);
  EXPECT_FALSE(job.constraint_set.min_safety.has_value());
  EXPECT_FALSE(job.constraint_set.privacy_epsilon.has_value());
  EXPECT_EQ(job.priority, 3);
  EXPECT_EQ(job.seed, 7u);
  EXPECT_TRUE(job.use_hpo);
  EXPECT_FALSE(job.maximize_utility);
}

TEST(RequestParseTest, SubmitDefaults) {
  auto request =
      ParseRequestLine(R"({"op":"submit","dataset":"Adult"})");
  ASSERT_TRUE(request.ok());
  const JobRequest& job = request->submit;
  EXPECT_EQ(job.model, ml::ModelKind::kLogisticRegression);
  EXPECT_EQ(job.strategy, "auto");
  EXPECT_EQ(job.constraint_set.min_f1, 0.7);
  EXPECT_EQ(job.constraint_set.max_search_seconds, 60.0);  // service default
  EXPECT_EQ(job.priority, 0);
  EXPECT_EQ(job.seed, 42u);
}

TEST(RequestParseTest, RejectsBadSubmits) {
  // Missing dataset.
  EXPECT_FALSE(ParseRequestLine(R"({"op":"submit"})").ok());
  // Unknown model.
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"submit","dataset":"x","model":"GPT"})").ok());
  // Constraint out of range (validated by ConstraintSetBuilder).
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"submit","dataset":"x","min_f1":1.5})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"submit","dataset":"x","budget":-1})").ok());
}

TEST(RequestParseTest, ParsesIdOps) {
  for (const char* op : {"status", "result", "cancel"}) {
    auto request = ParseRequestLine(
        std::string(R"({"op":")") + op + R"(","id":12})");
    ASSERT_TRUE(request.ok()) << op;
    EXPECT_EQ(request->id, 12u);
  }
  EXPECT_FALSE(ParseRequestLine(R"({"op":"status"})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"status","id":0})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"status","id":1.5})").ok());
}

TEST(RequestParseTest, ParsesBareOpsAndRejectsUnknown) {
  EXPECT_EQ(ParseRequestLine(R"({"op":"ping"})")->op, Request::Op::kPing);
  EXPECT_EQ(ParseRequestLine(R"({"op":"stats"})")->op, Request::Op::kStats);
  EXPECT_EQ(ParseRequestLine(R"({"op":"shutdown"})")->op,
            Request::Op::kShutdown);
  EXPECT_FALSE(ParseRequestLine(R"({"op":"fly"})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"id":1})").ok());
}

TEST(RequestParseTest, FormatSubmitLineRoundTrips) {
  JobRequest job;
  job.dataset = "German Credit";
  job.model = ml::ModelKind::kNaiveBayes;
  job.strategy = "TPE(FCBF)";
  constraints::ConstraintSetBuilder builder;
  builder.MinF1(0.72).MaxSearchSeconds(1.5).MinEqualOpportunity(0.85)
      .PrivacyEpsilon(10.0);
  job.constraint_set = builder.Build().value();
  job.use_hpo = true;
  job.priority = -2;
  job.seed = 99;

  auto parsed = ParseRequestLine(FormatSubmitLine(job));
  ASSERT_TRUE(parsed.ok());
  const JobRequest& round = parsed->submit;
  EXPECT_EQ(round.dataset, job.dataset);
  EXPECT_EQ(round.model, job.model);
  EXPECT_EQ(round.strategy, job.strategy);
  EXPECT_EQ(round.constraint_set.min_f1, 0.72);
  EXPECT_EQ(round.constraint_set.max_search_seconds, 1.5);
  EXPECT_EQ(round.constraint_set.min_equal_opportunity, 0.85);
  EXPECT_EQ(round.constraint_set.privacy_epsilon, 10.0);
  EXPECT_TRUE(round.use_hpo);
  EXPECT_EQ(round.priority, -2);
  EXPECT_EQ(round.seed, 99u);
}

TEST(JobStateTest, NamesAndTerminality) {
  EXPECT_STREQ(JobStateName(JobState::kQueued), "QUEUED");
  EXPECT_STREQ(JobStateName(JobState::kTimedOut), "TIMED_OUT");
  EXPECT_FALSE(IsTerminalState(JobState::kQueued));
  EXPECT_FALSE(IsTerminalState(JobState::kRunning));
  EXPECT_TRUE(IsTerminalState(JobState::kDone));
  EXPECT_TRUE(IsTerminalState(JobState::kFailed));
  EXPECT_TRUE(IsTerminalState(JobState::kCancelled));
  EXPECT_TRUE(IsTerminalState(JobState::kTimedOut));
}

TEST(JobStateTest, TransitionRules) {
  EXPECT_TRUE(IsValidTransition(JobState::kQueued, JobState::kRunning));
  EXPECT_TRUE(IsValidTransition(JobState::kQueued, JobState::kCancelled));
  EXPECT_FALSE(IsValidTransition(JobState::kQueued, JobState::kDone));
  EXPECT_TRUE(IsValidTransition(JobState::kRunning, JobState::kDone));
  EXPECT_TRUE(IsValidTransition(JobState::kRunning, JobState::kTimedOut));
  EXPECT_FALSE(IsValidTransition(JobState::kDone, JobState::kCancelled));
  EXPECT_FALSE(IsValidTransition(JobState::kCancelled, JobState::kRunning));
}

TEST(JobStateTest, JobEnforcesTransitions) {
  Job job(1, JobRequest{.dataset = "x"});
  EXPECT_EQ(job.state(), JobState::kQueued);
  EXPECT_FALSE(job.TryTransition(JobState::kDone));  // must run first
  EXPECT_TRUE(job.TryTransition(JobState::kRunning));
  EXPECT_TRUE(job.TryTransition(JobState::kDone));
  EXPECT_FALSE(job.TryTransition(JobState::kCancelled));  // terminal is final
  EXPECT_EQ(job.state(), JobState::kDone);
  EXPECT_GE(job.seconds_since_terminal(), 0.0);
}

}  // namespace
}  // namespace dfs::serve
