#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/knn.h"
#include "linalg/lasso.h"
#include "util/rng.h"

namespace dfs::linalg {
namespace {

TEST(LassoTest, RecoversSparseSignal) {
  Rng rng(11);
  const int n = 120;
  const int p = 10;
  Matrix x(n, p);
  std::vector<double> y(n);
  // y = 2*x0 - 1.5*x3, all other coefficients 0.
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < p; ++c) x(r, c) = rng.Normal();
    y[r] = 2.0 * x(r, 0) - 1.5 * x(r, 3) + 0.01 * rng.Normal();
  }
  LassoOptions options;
  options.l1_penalty = 0.05;
  const auto w = LassoCoordinateDescent(x, y, options);
  EXPECT_NEAR(w[0], 2.0, 0.15);
  EXPECT_NEAR(w[3], -1.5, 0.15);
  for (int c : {1, 2, 4, 5, 6, 7, 8, 9}) {
    EXPECT_LT(std::fabs(w[c]), 0.1) << "coefficient " << c;
  }
}

TEST(LassoTest, LargePenaltyZeroesEverything) {
  Rng rng(12);
  Matrix x(50, 4);
  std::vector<double> y(50);
  for (int r = 0; r < 50; ++r) {
    for (int c = 0; c < 4; ++c) x(r, c) = rng.Normal();
    y[r] = x(r, 0);
  }
  LassoOptions options;
  options.l1_penalty = 100.0;
  for (double w : LassoCoordinateDescent(x, y, options)) {
    EXPECT_DOUBLE_EQ(w, 0.0);
  }
}

TEST(LassoTest, SparsityGrowsWithPenalty) {
  Rng rng(13);
  const int n = 100, p = 12;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < p; ++c) x(r, c) = rng.Normal();
    y[r] = x(r, 0) + 0.5 * x(r, 1) + 0.2 * rng.Normal();
  }
  auto nonzeros = [&](double penalty) {
    LassoOptions options;
    options.l1_penalty = penalty;
    int count = 0;
    for (double w : LassoCoordinateDescent(x, y, options)) {
      count += std::fabs(w) > 1e-9 ? 1 : 0;
    }
    return count;
  };
  EXPECT_GE(nonzeros(0.001), nonzeros(0.1));
  EXPECT_GE(nonzeros(0.1), nonzeros(0.6));
}

TEST(LassoTest, EmptyInputsReturnEmpty) {
  Matrix x(0, 0);
  EXPECT_TRUE(LassoCoordinateDescent(x, {}).empty());
}

TEST(KnnTest, FindsNearestRows) {
  Matrix points = {{0.0, 0.0}, {1.0, 0.0}, {5.0, 5.0}, {0.1, 0.1}};
  const std::vector<double> query = {0.0, 0.0};
  const auto neighbors = KNearestRows(points, query, 2, -1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 0);
  EXPECT_EQ(neighbors[1], 3);
}

TEST(KnnTest, ExcludesRequestedRow) {
  Matrix points = {{0.0}, {0.5}, {2.0}};
  const std::vector<double> query = {0.0};
  const auto neighbors = KNearestRows(points, query, 1, 0);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], 1);
}

TEST(KnnTest, KLargerThanPopulation) {
  Matrix points = {{0.0}, {1.0}};
  const std::vector<double> query = {0.0};
  EXPECT_EQ(KNearestRows(points, query, 10, -1).size(), 2u);
}

TEST(HeatKernelGraphTest, SymmetricWithWeightsInUnitInterval) {
  Rng rng(14);
  Matrix points(20, 3);
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 3; ++c) points(r, c) = rng.Uniform();
  }
  const Matrix graph = HeatKernelKnnGraph(points, 4);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(graph(i, j), graph(j, i));
      EXPECT_GE(graph(i, j), 0.0);
      EXPECT_LE(graph(i, j), 1.0);
    }
  }
}

TEST(HeatKernelGraphTest, CloserPointsGetLargerWeights) {
  Matrix points = {{0.0}, {0.1}, {0.9}, {1.0}};
  const Matrix graph = HeatKernelKnnGraph(points, 2);
  EXPECT_GT(graph(0, 1), graph(0, 3));
}

TEST(HeatKernelGraphTest, EmptyInput) {
  Matrix points(0, 0);
  EXPECT_EQ(HeatKernelKnnGraph(points, 3).rows(), 0);
}

}  // namespace
}  // namespace dfs::linalg
