#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dfs::linalg {
namespace {

TEST(JacobiTest, DiagonalMatrix) {
  Matrix m = {{3.0, 0.0}, {0.0, 1.0}};
  auto eigen = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 1.0, 1e-10);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-10);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix m = {{2.0, 1.0}, {1.0, 2.0}};
  auto eigen = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 1.0, 1e-10);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-10);
}

TEST(JacobiTest, RejectsNonSquare) {
  Matrix m(2, 3);
  EXPECT_FALSE(JacobiEigenSymmetric(m).ok());
}

TEST(JacobiTest, RejectsAsymmetric) {
  Matrix m = {{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_FALSE(JacobiEigenSymmetric(m).ok());
}

TEST(JacobiTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(77);
  const int n = 12;
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m(i, j) = rng.Normal();
      m(j, i) = m(i, j);
    }
  }
  auto eigen = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eigen.ok());

  // Rebuild A = V diag(values) V^T.
  Matrix diag(n, n);
  for (int i = 0; i < n; ++i) diag(i, i) = eigen->values[i];
  const Matrix rebuilt =
      eigen->vectors.Multiply(diag).Multiply(eigen->vectors.Transpose());
  EXPECT_LT(rebuilt.FrobeniusDistance(m), 1e-6);
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(78);
  const int n = 8;
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m(i, j) = rng.Uniform();
      m(j, i) = m(i, j);
    }
  }
  auto eigen = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eigen.ok());
  const Matrix vtv =
      eigen->vectors.Transpose().Multiply(eigen->vectors);
  EXPECT_LT(vtv.FrobeniusDistance(Matrix::Identity(n)), 1e-8);
}

TEST(JacobiTest, SatisfiesEigenEquation) {
  Matrix m = {{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  auto eigen = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eigen.ok());
  for (int k = 0; k < 3; ++k) {
    const std::vector<double> v = eigen->vectors.Column(k);
    const std::vector<double> mv = m.MultiplyVector(v);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(mv[i], eigen->values[k] * v[i], 1e-8);
    }
  }
}

TEST(JacobiTest, LaplacianSmallestEigenvalueIsZero) {
  // Unnormalized Laplacian of a path graph 0-1-2: smallest eigenvalue 0.
  Matrix laplacian = {{1.0, -1.0, 0.0}, {-1.0, 2.0, -1.0}, {0.0, -1.0, 1.0}};
  auto eigen = JacobiEigenSymmetric(laplacian);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 0.0, 1e-10);
  EXPECT_GT(eigen->values[1], 1e-6);
}

}  // namespace
}  // namespace dfs::linalg
