// Bitwise-equivalence proofs for the dispatched evaluation kernels
// (DESIGN.md §2i): whatever ISA the runtime dispatch selects, every f64
// reduction must match the reference:: spelling of the canonical 8-lane
// accumulation order bit for bit, and the mixed-precision kernels must
// equal the same reduction run on exactly-widened inputs. Also proves the
// chunked Dataset::GatherInto is a pure store reordering (bit-identical
// for every block size) and characterizes the f32 storage error.

#include "linalg/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace dfs::linalg::kernels {
namespace {

// Sizes straddling every lane boundary: empty, sub-lane tails, exact
// multiples of 8, and off-by-one around them.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,   12, 15,
                              16, 17, 23, 31, 32, 33, 63, 64,  65,  100, 257};

std::vector<double> RandomVector(std::size_t n, Rng* rng, double lo = -2.0,
                                 double hi = 2.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Uniform(lo, hi);
  return v;
}

std::vector<float> Narrow(const std::vector<double>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<float>(v[i]);
  }
  return out;
}

// Exact widening: every float is representable in double.
std::vector<double> Widen(const std::vector<float>& v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<double>(v[i]);
  }
  return out;
}

TEST(KernelsTest, ActiveIsaIsKnown) {
  const std::string isa = ActiveIsa();
  EXPECT_TRUE(isa == "avx2" || isa == "portable") << isa;
}

TEST(KernelsTest, DotMatchesReferenceBitwise) {
  Rng rng(11);
  for (std::size_t n : kSizes) {
    const auto a = RandomVector(n, &rng);
    const auto b = RandomVector(n, &rng);
    // EXPECT_EQ on doubles is bitwise for non-NaN values.
    EXPECT_EQ(Dot(a.data(), b.data(), n),
              reference::Dot(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(KernelsTest, SquaredDistanceMatchesReferenceBitwise) {
  Rng rng(12);
  for (std::size_t n : kSizes) {
    const auto a = RandomVector(n, &rng);
    const auto b = RandomVector(n, &rng);
    EXPECT_EQ(SquaredDistance(a.data(), b.data(), n),
              reference::SquaredDistance(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(KernelsTest, WeightedSquaredDiffMatchesReferenceBitwise) {
  Rng rng(13);
  for (std::size_t n : kSizes) {
    const auto x = RandomVector(n, &rng);
    const auto mean = RandomVector(n, &rng);
    const auto inv2var = RandomVector(n, &rng, 0.1, 10.0);
    EXPECT_EQ(WeightedSquaredDiff(x.data(), mean.data(), inv2var.data(), n),
              reference::WeightedSquaredDiff(x.data(), mean.data(),
                                             inv2var.data(), n))
        << "n=" << n;
  }
}

TEST(KernelsTest, DotF32EqualsDotOnWidenedInputBitwise) {
  Rng rng(14);
  for (std::size_t n : kSizes) {
    const auto xf = Narrow(RandomVector(n, &rng));
    const auto w = RandomVector(n, &rng);
    const auto widened = Widen(xf);
    // Widening is exact and the lane order is shared, so the mixed-
    // precision kernel is bitwise the f64 kernel on the widened row.
    EXPECT_EQ(DotF32(xf.data(), w.data(), n),
              Dot(widened.data(), w.data(), n))
        << "n=" << n;
    EXPECT_EQ(DotF32(xf.data(), w.data(), n),
              reference::DotF32(xf.data(), w.data(), n))
        << "n=" << n;
  }
}

TEST(KernelsTest, WeightedSquaredDiffF32EqualsWidenedBitwise) {
  Rng rng(15);
  for (std::size_t n : kSizes) {
    const auto xf = Narrow(RandomVector(n, &rng));
    const auto mean = RandomVector(n, &rng);
    const auto inv2var = RandomVector(n, &rng, 0.1, 10.0);
    const auto widened = Widen(xf);
    EXPECT_EQ(
        WeightedSquaredDiffF32(xf.data(), mean.data(), inv2var.data(), n),
        WeightedSquaredDiff(widened.data(), mean.data(), inv2var.data(), n))
        << "n=" << n;
  }
}

TEST(KernelsTest, MatVecMatchesReferenceAndPerRowDot) {
  Rng rng(16);
  for (int cols : {1, 7, 16, 33, 129}) {
    const int rows = 9;
    const auto x = RandomVector(static_cast<std::size_t>(rows) * cols, &rng);
    const auto w = RandomVector(cols, &rng);
    const double bias = rng.Uniform(-1.0, 1.0);
    std::vector<double> got(rows), ref(rows);
    MatVec(x.data(), rows, cols, w.data(), bias, got.data());
    reference::MatVec(x.data(), rows, cols, w.data(), bias, ref.data());
    for (int r = 0; r < rows; ++r) {
      EXPECT_EQ(got[r], ref[r]) << "cols=" << cols << " r=" << r;
      EXPECT_EQ(got[r], bias + Dot(x.data() + static_cast<std::size_t>(r) *
                                                  cols,
                                   w.data(), cols));
    }
  }
}

TEST(KernelsTest, MatVecF32MatchesPerRowDotF32) {
  Rng rng(17);
  const int rows = 5, cols = 37;
  const auto xf =
      Narrow(RandomVector(static_cast<std::size_t>(rows) * cols, &rng));
  const auto w = RandomVector(cols, &rng);
  std::vector<double> got(rows);
  MatVecF32(xf.data(), rows, cols, w.data(), 0.25, got.data());
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(got[r],
              0.25 + DotF32(xf.data() + static_cast<std::size_t>(r) * cols,
                            w.data(), cols));
  }
}

TEST(KernelsTest, MatMatTMatchesPerCellDot) {
  Rng rng(18);
  const int a_rows = 4, bt_rows = 6, inner = 21;
  const auto a = RandomVector(static_cast<std::size_t>(a_rows) * inner, &rng);
  const auto bt =
      RandomVector(static_cast<std::size_t>(bt_rows) * inner, &rng);
  std::vector<double> out(static_cast<std::size_t>(a_rows) * bt_rows);
  MatMatT(a.data(), a_rows, bt.data(), bt_rows, inner, out.data());
  for (int r = 0; r < a_rows; ++r) {
    for (int c = 0; c < bt_rows; ++c) {
      EXPECT_EQ(out[static_cast<std::size_t>(r) * bt_rows + c],
                Dot(a.data() + static_cast<std::size_t>(r) * inner,
                    bt.data() + static_cast<std::size_t>(c) * inner, inner));
    }
  }
}

TEST(KernelsTest, StridedDotMatchesContiguousDotBitwise) {
  Rng rng(19);
  for (std::size_t stride : {1u, 3u, 7u}) {
    for (std::size_t n : {0u, 1u, 9u, 64u, 100u}) {
      const auto a = RandomVector(n * stride + 1, &rng);
      const auto b = RandomVector(n, &rng);
      // Gather the strided column; StridedDot shares the canonical lane
      // order, so the results must be bitwise equal.
      std::vector<double> gathered(n);
      for (std::size_t i = 0; i < n; ++i) gathered[i] = a[i * stride];
      EXPECT_EQ(StridedDot(a.data(), stride, b.data(), n),
                Dot(gathered.data(), b.data(), n))
          << "stride=" << stride << " n=" << n;
    }
  }
}

TEST(KernelsTest, AxpyScaleAndStridedAxpy) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 20.0, 30.0};
  AxpyInPlace(a.data(), 0.5, b.data(), a.size());
  EXPECT_EQ(a, (std::vector<double>{6.0, 12.0, 18.0}));
  Scale(a.data(), 2.0, a.size());
  EXPECT_EQ(a, (std::vector<double>{12.0, 24.0, 36.0}));
  const std::vector<double> c = {1.0, -1.0, 2.0, -2.0, 3.0, -3.0};
  StridedAxpyInPlace(a.data(), 10.0, c.data(), 2, a.size());
  EXPECT_EQ(a, (std::vector<double>{22.0, 44.0, 66.0}));
}

TEST(KernelsTest, SplitCountsMatchesScalarScan) {
  Rng rng(20);
  const std::size_t n = 201;
  const auto values = RandomVector(n, &rng, 0.0, 1.0);
  std::vector<double> labels(n);
  for (auto& l : labels) l = rng.Bernoulli(0.4) ? 1.0 : 0.0;
  for (double threshold : {0.0, 0.25, 0.5, 0.99}) {
    double left_total = -1.0, left_positives = -1.0;
    SplitCounts(values.data(), labels.data(), n, threshold, &left_total,
                &left_positives);
    double want_total = 0.0, want_pos = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (values[i] <= threshold) {
        want_total += 1.0;
        want_pos += labels[i];
      }
    }
    EXPECT_EQ(left_total, want_total) << threshold;
    EXPECT_EQ(left_positives, want_pos) << threshold;
  }
}

// --- f32 storage error characterization -------------------------------

TEST(KernelsTest, F32DotErrorBoundedByStorageQuantization) {
  Rng rng(21);
  const std::size_t n = 1000;
  // Unit-scale inputs, like preprocessed dataset columns.
  const auto x = RandomVector(n, &rng, 0.0, 1.0);
  const auto w = RandomVector(n, &rng);
  const auto xf = Narrow(x);
  const double exact = Dot(x.data(), w.data(), n);
  const double quantized = DotF32(xf.data(), w.data(), n);
  // Per-element quantization error <= |x_i| * 2^-24; the f64 accumulation
  // adds only O(n * eps_f64) on top, negligible here. Documented §2i bound.
  double budget = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    budget += std::abs(x[i] * w[i]);
  }
  budget *= std::ldexp(1.0, -24) * 1.01;
  EXPECT_LE(std::abs(quantized - exact), budget);
  EXPECT_GT(budget, 0.0);
}

// --- Chunked GatherInto ------------------------------------------------

TEST(GatherIntoChunkedTest, EveryBlockSizeIsBitIdenticalF64) {
  const data::Dataset dataset = dfs::testing::MakeLinearDataset(523, 4, 41);
  const std::vector<int> features = {0, 2, 3, 5};
  Matrix monolithic;
  dataset.GatherInto(features, &monolithic,
                     /*block_rows=*/dataset.num_rows());
  for (int block : {1, 3, 5, 64, 100, 0, dataset.num_rows() + 7}) {
    Matrix chunked;
    dataset.GatherInto(features, &chunked, block);
    ASSERT_EQ(chunked.rows(), monolithic.rows());
    ASSERT_EQ(chunked.cols(), monolithic.cols());
    EXPECT_EQ(std::memcmp(chunked.Data(), monolithic.Data(),
                          sizeof(double) * chunked.rows() * chunked.cols()),
              0)
        << "block=" << block;
  }
}

TEST(GatherIntoChunkedTest, EveryBlockSizeIsBitIdenticalF32) {
  data::Dataset dataset = dfs::testing::MakeLinearDataset(301, 2, 42);
  const std::vector<int> features = {1, 3, 0};
  Matrix32 no_mirror;
  dataset.GatherInto(features, &no_mirror, /*block_rows=*/0);
  dataset.BuildF32Mirror();
  Matrix32 monolithic;
  dataset.GatherInto(features, &monolithic,
                     /*block_rows=*/dataset.num_rows());
  // Mirror and cast-on-the-fly paths produce the same bytes: both are
  // static_cast<float> of the same f64 column values.
  ASSERT_EQ(no_mirror.rows(), monolithic.rows());
  EXPECT_EQ(std::memcmp(no_mirror.Data(), monolithic.Data(),
                        sizeof(float) * monolithic.rows() * monolithic.cols()),
            0);
  for (int block : {1, 7, 64, 0}) {
    Matrix32 chunked;
    dataset.GatherInto(features, &chunked, block);
    ASSERT_EQ(chunked.rows(), monolithic.rows());
    ASSERT_EQ(chunked.cols(), monolithic.cols());
    EXPECT_EQ(std::memcmp(chunked.Data(), monolithic.Data(),
                          sizeof(float) * chunked.rows() * chunked.cols()),
              0)
        << "block=" << block;
  }
}

TEST(GatherIntoChunkedTest, F32MirrorMatchesColumnValues) {
  data::Dataset dataset = dfs::testing::MakeLinearDataset(50, 1, 43);
  dataset.BuildF32Mirror();
  Matrix32 gathered;
  dataset.GatherInto(dataset.AllFeatures(), &gathered);
  for (int r = 0; r < dataset.num_rows(); ++r) {
    for (int f = 0; f < dataset.num_features(); ++f) {
      EXPECT_EQ(gathered(r, f), static_cast<float>(dataset.Column(f)[r]));
    }
  }
}

}  // namespace
}  // namespace dfs::linalg::kernels
