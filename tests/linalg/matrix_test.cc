#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace dfs::linalg {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix identity = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(identity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(identity(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColumnCopies) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.Multiply(Matrix::Identity(2)).FrobeniusDistance(a), 0.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_EQ(a.MultiplyVector({1.0, 1.0}), (std::vector<double>{3.0, 7.0}));
}

TEST(VectorOpsTest, DotNormDistance) {
  std::vector<double> a = {3.0, 4.0};
  std::vector<double> b = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {10.0, 20.0};
  EXPECT_EQ(Axpy(a, 0.5, b), (std::vector<double>{6.0, 12.0}));
  ScaleInPlace(a, 3.0);
  EXPECT_EQ(a, (std::vector<double>{3.0, 6.0}));
}

}  // namespace
}  // namespace dfs::linalg
