#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "testing/test_util.h"

namespace dfs::linalg {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix identity = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(identity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(identity(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColumnCopies) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.Multiply(Matrix::Identity(2)).FrobeniusDistance(a), 0.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = {{1, 2}, {3, 4}};
  // Named vector: MultiplyVector takes std::span, which has no
  // initializer-list conversion.
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_EQ(a.MultiplyVector(ones), (std::vector<double>{3.0, 7.0}));
}

TEST(MatrixTest, UncheckedAccessorsMatchChecked) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(m.At(r, c), m(r, c));
    }
  }
  m.Set(1, 2, 9.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
  // MutableData/Data expose the row-major storage directly.
  EXPECT_EQ(m.Data()[1 * m.cols() + 2], 9.0);
  m.MutableData()[0] = -1.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
}

TEST(MatrixTest, ResizeReshapesAndKeepsCapacity) {
  Matrix m(4, 5, 1.0);
  const double* data = m.Data();
  // Shrinking (or keeping) the element count must not reallocate: scratch
  // matrices stop allocating once they have seen their largest shape.
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.Data(), data);
  m.Resize(5, 4);  // same element count as the original allocation
  EXPECT_EQ(m.Data(), data);
  // Growing past capacity reallocates but preserves the new shape.
  m.Resize(100, 7);
  EXPECT_EQ(m.rows(), 100);
  EXPECT_EQ(m.cols(), 7);
}

TEST(GatherIntoTest, MatchesToMatrix) {
  const data::Dataset dataset = dfs::testing::MakeLinearDataset(40, 2, 31);
  const std::vector<int> features = {0, 2, 3};
  const Matrix expected = dataset.ToMatrix(features);
  Matrix gathered;
  dataset.GatherInto(features, &gathered);
  ASSERT_EQ(gathered.rows(), expected.rows());
  ASSERT_EQ(gathered.cols(), expected.cols());
  for (int r = 0; r < expected.rows(); ++r) {
    for (int c = 0; c < expected.cols(); ++c) {
      EXPECT_EQ(gathered(r, c), expected(r, c));
    }
  }
}

TEST(GatherIntoTest, ReusesScratchAcrossFeatureSets) {
  const data::Dataset dataset = dfs::testing::MakeLinearDataset(40, 2, 32);
  Matrix scratch;
  // Warm the scratch with the widest gather first.
  dataset.GatherInto({0, 1, 2, 3}, &scratch);
  const double* warm = scratch.Data();
  // Narrower gathers reuse the allocation and leave no stale values: every
  // cell is overwritten, not merely the ones a previous shape shared.
  dataset.GatherInto({3, 1}, &scratch);
  EXPECT_EQ(scratch.Data(), warm);
  EXPECT_EQ(scratch.cols(), 2);
  const Matrix expected = dataset.ToMatrix({3, 1});
  for (int r = 0; r < expected.rows(); ++r) {
    for (int c = 0; c < expected.cols(); ++c) {
      EXPECT_EQ(scratch(r, c), expected(r, c));
    }
  }
}

TEST(GatherIntoTest, ResizesScratchOnShapeMismatch) {
  const data::Dataset dataset = dfs::testing::MakeLinearDataset(10, 0, 33);
  Matrix scratch(3, 7, -5.0);  // wrong shape and poisoned contents
  dataset.GatherInto({1}, &scratch);
  EXPECT_EQ(scratch.rows(), dataset.num_rows());
  EXPECT_EQ(scratch.cols(), 1);
  const Matrix expected = dataset.ToMatrix({1});
  for (int r = 0; r < expected.rows(); ++r) {
    EXPECT_EQ(scratch(r, 0), expected(r, 0));
  }
}

TEST(VectorOpsTest, DotNormDistance) {
  std::vector<double> a = {3.0, 4.0};
  std::vector<double> b = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {10.0, 20.0};
  EXPECT_EQ(Axpy(a, 0.5, b), (std::vector<double>{6.0, 12.0}));
  ScaleInPlace(a, 3.0);
  EXPECT_EQ(a, (std::vector<double>{3.0, 6.0}));
}

}  // namespace
}  // namespace dfs::linalg
