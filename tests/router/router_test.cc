#include "router/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "router/policy.h"
#include "router/replay.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace dfs::router {
namespace {

constexpr char kDataset[] = "router-lin";

/// Small landmark settings so featurization costs milliseconds; the tests
/// exercise routing plumbing, not meta-model quality.
core::OptimizerOptions FastOptimizerOptions() {
  core::OptimizerOptions options;
  options.landmark_sample_size = 40;
  options.landmark_folds = 2;
  return options;
}

/// Trains forests (non-degenerate labels per strategy) over random
/// `dims`-dimensional features, so the argmax runs the real predict path.
core::DfsOptimizer TrainedOptimizer(
    const std::vector<fs::StrategyId>& strategies, int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<core::DfsOptimizer::TrainingExample> examples;
  for (int i = 0; i < 24; ++i) {
    core::DfsOptimizer::TrainingExample example;
    for (int d = 0; d < dims; ++d) {
      example.features.values.push_back(rng.Uniform());
    }
    for (size_t s = 0; s < strategies.size(); ++s) {
      // Mixed labels with different per-strategy rates, never constant.
      example.outcomes[strategies[s]] =
          rng.Bernoulli(0.2 + 0.6 * static_cast<double>(s) /
                                  static_cast<double>(strategies.size()));
    }
    // Pin one success and one failure per strategy so no label degenerates.
    if (i == 0) {
      for (fs::StrategyId id : strategies) example.outcomes[id] = true;
    }
    if (i == 1) {
      for (fs::StrategyId id : strategies) example.outcomes[id] = false;
    }
    examples.push_back(std::move(example));
  }
  core::DfsOptimizer optimizer;
  EXPECT_TRUE(optimizer.Train(examples, strategies).ok());
  return optimizer;
}

core::ScenarioFeatures RandomFeatures(int dims, uint64_t seed) {
  Rng rng(seed);
  core::ScenarioFeatures features;
  for (int d = 0; d < dims; ++d) features.values.push_back(rng.Uniform());
  return features;
}

// ---- Policies -------------------------------------------------------

// The ISSUE contract: StaticPolicy reproduces the pre-router serving
// behavior bit-for-bit — DfsOptimizer::Choose when probabilities exist.
TEST(StaticPolicyTest, MatchesOptimizerChooseBitForBit) {
  const std::vector<fs::StrategyId> strategies = {
      fs::StrategyId::kSfs, fs::StrategyId::kSbs, fs::StrategyId::kTpeChi2,
      fs::StrategyId::kSffs};
  core::DfsOptimizer optimizer = TrainedOptimizer(strategies, 16, 5);
  StaticPolicy policy;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const core::ScenarioFeatures features = RandomFeatures(16, 100 + seed);
    auto probabilities = optimizer.PredictProbabilities(features);
    ASSERT_TRUE(probabilities.ok());
    auto expected = optimizer.Choose(features);
    ASSERT_TRUE(expected.ok());

    RouteContext context;
    context.candidates = optimizer.strategies();
    context.probabilities = *probabilities;
    Rng rng(seed);
    const PolicyChoice choice = policy.Decide(context, rng);
    EXPECT_EQ(choice.chosen, *expected) << "seed " << seed;
    EXPECT_FALSE(choice.explored);
    EXPECT_FALSE(choice.portfolio);
  }
}

// And the other half of today's behavior: no optimizer → the configured
// fallback (the server's default_auto_strategy), nothing random.
TEST(StaticPolicyTest, FallsBackWithoutProbabilities) {
  StaticPolicy policy;
  RouteContext context;
  context.fallback = fs::StrategyId::kSffs;
  Rng rng(3);
  const PolicyChoice choice = policy.Decide(context, rng);
  EXPECT_EQ(choice.chosen, fs::StrategyId::kSffs);
  EXPECT_FALSE(choice.explored);
  EXPECT_FALSE(choice.portfolio);
}

TEST(ConfidencePolicyTest, ArgmaxWhenConfident) {
  PolicyOptions options;
  options.confidence_threshold = 0.55;
  options.portfolio_top_k = 3;
  ConfidencePolicy policy(options);
  RouteContext context;
  context.candidates = {fs::StrategyId::kSfs, fs::StrategyId::kSbs,
                        fs::StrategyId::kTpeChi2};
  context.probabilities = {{fs::StrategyId::kSfs, 0.9},
                           {fs::StrategyId::kSbs, 0.4},
                           {fs::StrategyId::kTpeChi2, 0.1}};
  Rng rng(1);
  const PolicyChoice choice = policy.Decide(context, rng);
  EXPECT_EQ(choice.chosen, fs::StrategyId::kSfs);
  EXPECT_FALSE(choice.portfolio);
  EXPECT_TRUE(choice.members.empty());
}

TEST(ConfidencePolicyTest, LowConfidenceRacesTopK) {
  PolicyOptions options;
  options.confidence_threshold = 0.55;
  options.portfolio_top_k = 2;
  ConfidencePolicy policy(options);
  RouteContext context;
  context.candidates = {fs::StrategyId::kSfs, fs::StrategyId::kSbs,
                        fs::StrategyId::kTpeChi2};
  context.probabilities = {{fs::StrategyId::kSfs, 0.30},
                           {fs::StrategyId::kSbs, 0.51},
                           {fs::StrategyId::kTpeChi2, 0.45}};
  Rng rng(1);
  const PolicyChoice choice = policy.Decide(context, rng);
  EXPECT_TRUE(choice.portfolio);
  ASSERT_EQ(choice.members.size(), 2u);
  EXPECT_EQ(choice.members[0], fs::StrategyId::kSbs);
  EXPECT_EQ(choice.members[1], fs::StrategyId::kTpeChi2);
  EXPECT_EQ(choice.chosen, fs::StrategyId::kSbs);
}

TEST(ConfidencePolicyTest, NeverRacesASingleCandidate) {
  PolicyOptions options;
  options.confidence_threshold = 0.99;
  ConfidencePolicy policy(options);
  RouteContext context;
  context.candidates = {fs::StrategyId::kSfs};
  context.probabilities = {{fs::StrategyId::kSfs, 0.1}};
  Rng rng(1);
  const PolicyChoice choice = policy.Decide(context, rng);
  EXPECT_FALSE(choice.portfolio);
  EXPECT_EQ(choice.chosen, fs::StrategyId::kSfs);
}

TEST(EpsilonGreedyPolicyTest, EpsilonZeroIsStatic) {
  PolicyOptions options;
  options.epsilon = 0.0;
  EpsilonGreedyPolicy greedy(options);
  StaticPolicy static_policy;
  RouteContext context;
  context.candidates = {fs::StrategyId::kSfs, fs::StrategyId::kSbs};
  context.probabilities = {{fs::StrategyId::kSfs, 0.2},
                           {fs::StrategyId::kSbs, 0.7}};
  context.exploration = {fs::StrategyId::kSfs, fs::StrategyId::kSbs,
                         fs::StrategyId::kTpeChi2};
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    EXPECT_EQ(greedy.Decide(context, rng_a).chosen,
              static_policy.Decide(context, rng_b).chosen);
  }
}

TEST(EpsilonGreedyPolicyTest, EpsilonOneAlwaysExploresDeterministically) {
  PolicyOptions options;
  options.epsilon = 1.0;
  EpsilonGreedyPolicy policy(options);
  RouteContext context;
  context.exploration = {fs::StrategyId::kSfs, fs::StrategyId::kSbs,
                         fs::StrategyId::kTpeChi2};
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng_a(seed);
    const PolicyChoice first = policy.Decide(context, rng_a);
    EXPECT_TRUE(first.explored);
    // Same seed → same pick: the replay contract at the policy level.
    Rng rng_b(seed);
    EXPECT_EQ(policy.Decide(context, rng_b).chosen, first.chosen);
  }
}

TEST(PolicyRegistryTest, CreatePolicyByWireName) {
  for (const char* name : {"static", "confidence", "epsilon-greedy"}) {
    auto policy = CreatePolicy(name, {});
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
  }
  EXPECT_FALSE(CreatePolicy("bandit", {}).ok());
}

// ---- ReplayBuffer / FeatureCache ------------------------------------

TEST(ReplayBufferTest, BoundedFifo) {
  ReplayBuffer buffer(3);
  for (uint64_t i = 0; i < 5; ++i) {
    buffer.Append({/*fingerprint=*/i, {}, fs::StrategyId::kSfs, true});
  }
  EXPECT_EQ(buffer.depth(), 3u);
  EXPECT_EQ(buffer.total_appended(), 5u);
  const auto records = buffer.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().fingerprint, 2u);
  EXPECT_EQ(records.back().fingerprint, 4u);
}

TEST(FeatureCacheTest, FifoEvictionAndCounters) {
  FeatureCache cache(2);
  core::ScenarioFeatures features;
  features.values = {1.0, 2.0};
  core::ScenarioFeatures out;
  EXPECT_FALSE(cache.Lookup(7, &out));  // miss 1
  cache.Insert(7, features);
  cache.Insert(8, features);
  cache.Insert(9, features);  // evicts 7
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(7, &out));  // miss 2
  EXPECT_TRUE(cache.Lookup(9, &out));   // hit 1
  EXPECT_EQ(out.values, features.values);
  // Peek is invisible to the counters (replay must not perturb them).
  EXPECT_TRUE(cache.Peek(8, &out));
  EXPECT_FALSE(cache.Peek(7, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

// ---- StrategyRouter -------------------------------------------------

TEST(StrategyRouterTest, UnroutedDefaultMatchesServingFallback) {
  // No optimizer, online loop off: every decision is the configured
  // default, unfeaturized (no landmark CV on the submit path).
  StrategyRouter router;
  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  constraints::ConstraintSet set;
  set.min_f1 = 0.5;
  const RouteDecision decision = router.Route(
      dataset, kDataset, ml::ModelKind::kLogisticRegression, set);
  EXPECT_FALSE(decision.featurized);
  EXPECT_EQ(decision.chosen, fs::StrategyId::kSffs);  // "SFFS(NR)"
  EXPECT_TRUE(decision.probabilities.empty());
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.decisions, 1u);
  EXPECT_EQ(stats.feature_cache_size, 0u);
}

TEST(StrategyRouterTest, InstalledOptimizerDrivesArgmaxBitForBit) {
  const std::vector<fs::StrategyId> strategies = {
      fs::StrategyId::kSfs, fs::StrategyId::kSbs, fs::StrategyId::kTpeChi2};
  core::DfsOptimizer optimizer = TrainedOptimizer(strategies, 16, 21);
  auto serialized = optimizer.Serialize();
  ASSERT_TRUE(serialized.ok());
  auto reference = core::DfsOptimizer::Deserialize(*serialized);
  ASSERT_TRUE(reference.ok());

  RouterOptions options;
  options.optimizer_options = FastOptimizerOptions();
  StrategyRouter router(options);
  router.InstallOptimizer(std::move(optimizer));

  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  constraints::ConstraintSet set;
  set.min_f1 = 0.5;
  const RouteDecision decision = router.Route(
      dataset, kDataset, ml::ModelKind::kLogisticRegression, set);
  ASSERT_TRUE(decision.featurized);
  ASSERT_EQ(decision.probabilities.size(), strategies.size());
  auto expected = reference->Choose(decision.features);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(decision.chosen, *expected);

  // Same scenario again: the feature cache absorbs the landmark CV.
  (void)router.Route(dataset, kDataset, ml::ModelKind::kLogisticRegression,
                     set);
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.feature_cache_misses, 1u);
  EXPECT_EQ(stats.feature_cache_hits, 1u);
  EXPECT_TRUE(stats.optimizer_loaded);
}

// The online loop demonstrably learns: before any feedback the router
// falls back to SFFS; after feeding outcomes where SFS always succeeds
// and the others always fail, a background refit retrains the optimizer
// and the router starts choosing SFS.
TEST(StrategyRouterTest, OnlineLoopLearnsFromOutcomes) {
  RouterOptions options;
  options.refit_every = 6;
  options.replay_capacity = 64;
  options.optimizer_options = FastOptimizerOptions();
  StrategyRouter router(options);

  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  constraints::ConstraintSet relaxed;
  relaxed.min_f1 = 0.0;
  constraints::ConstraintSet strict;
  strict.min_f1 = 0.3;

  const fs::StrategyId cycle[] = {fs::StrategyId::kSfs, fs::StrategyId::kSbs,
                                  fs::StrategyId::kTpeChi2};
  for (int i = 0; i < 12; ++i) {
    const RouteDecision decision =
        router.Route(dataset, kDataset, ml::ModelKind::kLogisticRegression,
                     i % 2 == 0 ? relaxed : strict);
    ASSERT_TRUE(decision.featurized);  // the online loop featurizes
    if (i < options.refit_every) {
      // No refit can have triggered yet: every decision is the
      // untrained serving default.
      EXPECT_EQ(decision.chosen, fs::StrategyId::kSffs);
    } else {
      // The first refit (triggered by outcome refit_every) races the
      // tail of this loop; once it lands the learned optimizer picks
      // SFS. Either answer is legal here.
      EXPECT_TRUE(decision.chosen == fs::StrategyId::kSffs ||
                  decision.chosen == fs::StrategyId::kSfs)
          << "chosen=" << static_cast<int>(decision.chosen);
    }
    router.ReportOutcome(decision, cycle[i % 3],
                         cycle[i % 3] == fs::StrategyId::kSfs);
  }
  ASSERT_TRUE(router.WaitForRefits(1, 60.0));
  ASSERT_TRUE(router.DrainRefits(60.0));

  const RouteDecision learned = router.Route(
      dataset, kDataset, ml::ModelKind::kLogisticRegression, relaxed);
  ASSERT_TRUE(learned.featurized);
  ASSERT_FALSE(learned.probabilities.empty());
  EXPECT_EQ(learned.chosen, fs::StrategyId::kSfs);
  EXPECT_GE(learned.generation, 1u);

  const RouterStats stats = router.Stats();
  EXPECT_GE(stats.refits, 1u);
  EXPECT_GE(stats.generation, 1u);
  EXPECT_TRUE(stats.optimizer_loaded);
  EXPECT_EQ(stats.outcomes, 12u);
  // The counters reconcile: every decision lands in exactly one route
  // bucket.
  uint64_t routed = 0;
  for (const auto& [name, count] : stats.routes) routed += count;
  EXPECT_EQ(routed, stats.decisions);
}

TEST(StrategyRouterTest, SnapshotRoundTripIsByteIdentical) {
  RouterOptions options;
  options.policy = "epsilon-greedy";
  options.policy_options.epsilon = 0.4;
  options.refit_every = 4;
  options.optimizer_options = FastOptimizerOptions();
  options.exploration = {fs::StrategyId::kSfs, fs::StrategyId::kSbs};
  StrategyRouter router(options);

  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  constraints::ConstraintSet set;
  set.min_f1 = 0.5;
  for (int i = 0; i < 8; ++i) {
    const RouteDecision decision = router.Route(
        dataset, kDataset, ml::ModelKind::kLogisticRegression, set);
    router.ReportOutcome(decision, decision.chosen, i % 2 == 0);
  }
  ASSERT_TRUE(router.DrainRefits(60.0));

  auto snapshot = router.Serialize();
  ASSERT_TRUE(snapshot.ok());
  StrategyRouter restored;
  ASSERT_TRUE(restored.RestoreState(*snapshot).ok());
  auto again = restored.Serialize();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*snapshot, *again);

  const RouterStats stats = restored.Stats();
  EXPECT_EQ(stats.policy, "epsilon-greedy");
  EXPECT_EQ(stats.buffer_depth, router.Stats().buffer_depth);
  EXPECT_EQ(stats.generation, router.Stats().generation);
}

TEST(StrategyRouterTest, ReplayDecisionMatchesLiveTrace) {
  RouterOptions options;
  options.policy = "epsilon-greedy";
  options.policy_options.epsilon = 0.5;
  options.refit_every = 4;
  options.optimizer_options = FastOptimizerOptions();
  StrategyRouter router(options);

  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  constraints::ConstraintSet set;
  set.min_f1 = 0.5;
  for (int i = 0; i < 8; ++i) {
    const RouteDecision decision = router.Route(
        dataset, kDataset, ml::ModelKind::kLogisticRegression, set);
    router.ReportOutcome(decision, decision.chosen, true);
  }
  ASSERT_TRUE(router.DrainRefits(60.0));

  // Decisions made at the final generation must replay byte-identically
  // from a restored snapshot.
  std::vector<RouteDecision> live;
  for (int i = 0; i < 6; ++i) {
    live.push_back(router.Route(dataset, kDataset,
                                ml::ModelKind::kLogisticRegression, set));
  }
  auto snapshot = router.Serialize();
  ASSERT_TRUE(snapshot.ok());
  StrategyRouter restored;
  ASSERT_TRUE(restored.RestoreState(*snapshot).ok());
  for (const RouteDecision& decision : live) {
    auto replayed = restored.ReplayDecision(
        decision.fingerprint, decision.decision_seed, decision.featurized);
    ASSERT_TRUE(replayed.ok());
    replayed->sequence = decision.sequence;  // history, not state
    EXPECT_EQ(DecisionDetail(*replayed), DecisionDetail(decision));
  }
}

// ---- Concurrency churn (runs under TSan via check.sh --sanitize) ----

TEST(StrategyRouterChurnTest, ConcurrentRouteFeedbackRefitSnapshot) {
  RouterOptions options;
  options.policy = "epsilon-greedy";
  options.policy_options.epsilon = 0.5;
  options.refit_every = 3;
  options.replay_capacity = 32;
  options.optimizer_options = FastOptimizerOptions();
  StrategyRouter router(options);

  const data::Dataset dataset = testing::MakeLinearDataset(80, 3, 99);
  // Two scenario shapes: one cached fingerprint per constraint set, so
  // concurrent routes mix cache hits with (duplicate) featurizations.
  constraints::ConstraintSet sets[2];
  sets[0].min_f1 = 0.0;
  sets[1].min_f1 = 0.3;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&router, &dataset, &sets, t] {
      for (int i = 0; i < 25; ++i) {
        const RouteDecision decision =
            router.Route(dataset, kDataset,
                         ml::ModelKind::kLogisticRegression, sets[i % 2]);
        router.ReportOutcome(decision, decision.chosen, (i + t) % 2 == 0);
      }
    });
  }
  // Snapshot/stats churn against the routing threads.
  threads.emplace_back([&router, &stop] {
    while (!stop.load()) {
      (void)router.Stats();
      auto snapshot = router.Serialize();
      ASSERT_TRUE(snapshot.ok());
      StrategyRouter scratch;
      ASSERT_TRUE(scratch.RestoreState(*snapshot).ok());
    }
  });
  // Concurrent warm-restart installs.
  threads.emplace_back([&router, &stop] {
    const std::vector<fs::StrategyId> strategies = {fs::StrategyId::kSfs,
                                                    fs::StrategyId::kSbs};
    while (!stop.load()) {
      router.InstallOptimizer(TrainedOptimizer(strategies, 16, 77));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = 4; t < threads.size(); ++t) threads[t].join();

  ASSERT_TRUE(router.DrainRefits(60.0));
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.decisions, 100u);
  uint64_t routed = 0;
  for (const auto& [name, count] : stats.routes) routed += count;
  EXPECT_EQ(routed, stats.decisions);
}

}  // namespace
}  // namespace dfs::router
