#include "fs/rankings/ranking.h"

#include <gtest/gtest.h>

#include "fs/rankings/information.h"
#include "fs/rankings/mcfs.h"
#include "fs/rankings/relieff.h"
#include "fs/rankings/statistical.h"
#include "testing/test_util.h"
#include "util/math_util.h"

namespace dfs::fs {
namespace {

// Supervised rankers must rank the two signal features of the linear toy
// dataset above every noise feature.
class SupervisedRankerTest : public ::testing::TestWithParam<RankerKind> {};

TEST_P(SupervisedRankerTest, SignalBeatsNoise) {
  const data::Dataset train = testing::MakeLinearDataset(400, 5, 101);
  Rng rng(102);
  auto ranker = CreateRanker(GetParam());
  auto scores = ranker->Rank(train, rng);
  ASSERT_TRUE(scores.ok()) << ranker->name();
  ASSERT_EQ(scores->size(), 7u);
  const auto order = ArgsortDescending(*scores);
  // The two signal features occupy the top two ranks.
  EXPECT_TRUE((order[0] == 0 && order[1] == 1) ||
              (order[0] == 1 && order[1] == 0))
      << ranker->name() << " ranked " << order[0] << "," << order[1];
}

TEST_P(SupervisedRankerTest, DeterministicForSameRngSeed) {
  const data::Dataset train = testing::MakeLinearDataset(200, 3, 103);
  auto ranker = CreateRanker(GetParam());
  Rng rng_a(7), rng_b(7);
  auto a = ranker->Rank(train, rng_a);
  auto b = ranker->Rank(train, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    Supervised, SupervisedRankerTest,
    ::testing::Values(RankerKind::kReliefF, RankerKind::kFisher,
                      RankerKind::kMutualInformation, RankerKind::kFcbf,
                      RankerKind::kChiSquared),
    [](const auto& info) {
      return CreateRanker(info.param)->name();
    });

TEST(VarianceRankerTest, RanksByColumnVariance) {
  // Column 1 has the widest spread, column 2 is constant.
  auto dataset = data::Dataset::Create(
      "v", {"low", "high", "const"},
      {{0.4, 0.5, 0.6, 0.5}, {0.0, 1.0, 0.0, 1.0}, {0.5, 0.5, 0.5, 0.5}},
      {0, 1, 0, 1}, {0, 0, 1, 1});
  ASSERT_TRUE(dataset.ok());
  Rng rng(104);
  auto scores = VarianceRanker().Rank(*dataset, rng);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1], (*scores)[0]);
  EXPECT_GT((*scores)[0], (*scores)[2]);
  EXPECT_DOUBLE_EQ((*scores)[2], 0.0);
}

TEST(Chi2RankerTest, ClassDependentFeatureScoresHigher) {
  const data::Dataset train = testing::MakeLinearDataset(500, 4, 105);
  Rng rng(106);
  auto scores = ChiSquaredRanker().Rank(train, rng);
  ASSERT_TRUE(scores.ok());
  for (size_t f = 2; f < scores->size(); ++f) {
    EXPECT_GT((*scores)[0], (*scores)[f]);
  }
}

TEST(FisherRankerTest, HandlesConstantColumn) {
  auto dataset = data::Dataset::Create(
      "f", {"const", "signal"},
      {{0.5, 0.5, 0.5, 0.5}, {0.1, 0.2, 0.8, 0.9}}, {0, 0, 1, 1},
      {0, 1, 0, 1});
  ASSERT_TRUE(dataset.ok());
  Rng rng(107);
  auto scores = FisherRanker().Rank(*dataset, rng);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1], (*scores)[0]);
  EXPECT_GE((*scores)[0], 0.0);
}

TEST(FcbfRankerTest, RedundantFeatureDemoted) {
  // f1 duplicates f0 exactly; FCBF must mark one as redundant (score < 1)
  // while the predominant copy scores >= 1.
  std::vector<double> base = {0.1, 0.2, 0.8, 0.9, 0.15, 0.85};
  auto dataset = data::Dataset::Create(
      "r", {"orig", "dup", "noise"},
      {base, base, {0.3, 0.9, 0.2, 0.6, 0.8, 0.1}},
      {0, 0, 1, 1, 0, 1}, {0, 1, 0, 1, 0, 1});
  ASSERT_TRUE(dataset.ok());
  Rng rng(108);
  auto scores = FcbfRanker().Rank(*dataset, rng);
  ASSERT_TRUE(scores.ok());
  const bool first_kept = (*scores)[0] >= 1.0;
  const bool second_kept = (*scores)[1] >= 1.0;
  EXPECT_NE(first_kept, second_kept) << "exactly one duplicate survives";
}

TEST(McfsRankerTest, UnsupervisedStructureFeaturesScoreHigher) {
  // Build two clusters separated along feature 0; feature 1 is noise.
  Rng data_rng(109);
  std::vector<double> structure(200), noise(200);
  std::vector<int> labels(200), groups(200, 0);
  for (int r = 0; r < 200; ++r) {
    const bool cluster = r % 2 == 0;
    structure[r] = (cluster ? 0.2 : 0.8) + 0.05 * data_rng.Normal();
    noise[r] = data_rng.Uniform();
    labels[r] = cluster ? 0 : 1;
  }
  auto dataset = data::Dataset::Create("m", {"structure", "noise"},
                                       {structure, noise}, labels, groups);
  ASSERT_TRUE(dataset.ok());
  Rng rng(110);
  auto scores = McfsRanker().Rank(*dataset, rng);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0], (*scores)[1]);
}

TEST(McfsRankerTest, RejectsTinyDataset) {
  auto dataset = data::Dataset::Create("t", {"a"}, {{0.1, 0.9}}, {0, 1},
                                       {0, 0});
  ASSERT_TRUE(dataset.ok());
  Rng rng(111);
  EXPECT_FALSE(McfsRanker().Rank(*dataset, rng).ok());
}

TEST(ReliefFRankerTest, RequiresBothClasses) {
  auto dataset = data::Dataset::Create("s", {"a"}, {{0.1, 0.2, 0.9}},
                                       {1, 1, 1}, {0, 0, 0});
  ASSERT_TRUE(dataset.ok());
  Rng rng(112);
  EXPECT_FALSE(ReliefFRanker().Rank(*dataset, rng).ok());
}

TEST(RankerFactoryTest, AllKindsConstructible) {
  for (RankerKind kind :
       {RankerKind::kReliefF, RankerKind::kFisher,
        RankerKind::kMutualInformation, RankerKind::kFcbf, RankerKind::kMcfs,
        RankerKind::kVariance, RankerKind::kChiSquared}) {
    auto ranker = CreateRanker(kind);
    ASSERT_NE(ranker, nullptr);
    EXPECT_FALSE(ranker->name().empty());
  }
}

}  // namespace
}  // namespace dfs::fs
