#include "fs/search/tpe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dfs::fs {
namespace {

TEST(TpeIntegerTest, ProposalsStayInRange) {
  TpeIntegerOptimizer optimizer(3, 17, TpeOptions(), 1);
  for (int i = 0; i < 50; ++i) {
    const int k = optimizer.Propose();
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 17);
    optimizer.Record(k, std::fabs(k - 9));
  }
}

TEST(TpeIntegerTest, ConvergesToOptimum) {
  // Loss minimized at k = 25 of [1, 100].
  TpeIntegerOptimizer optimizer(1, 100, TpeOptions(), 2);
  int best_k = -1;
  double best_loss = 1e18;
  for (int i = 0; i < 60; ++i) {
    const int k = optimizer.Propose();
    const double loss = std::fabs(k - 25.0);
    optimizer.Record(k, loss);
    if (loss < best_loss) {
      best_loss = loss;
      best_k = k;
    }
  }
  EXPECT_NEAR(best_k, 25, 5);
}

TEST(TpeIntegerTest, BeatsGridHeadStartOnBigDomain) {
  // After the startup phase the proposals should concentrate near the
  // optimum instead of sweeping uniformly.
  TpeIntegerOptimizer optimizer(1, 200, TpeOptions(), 3);
  std::vector<int> late_proposals;
  for (int i = 0; i < 80; ++i) {
    const int k = optimizer.Propose();
    optimizer.Record(k, (k - 60.0) * (k - 60.0));
    if (i >= 60) late_proposals.push_back(k);
  }
  double mean_distance = 0.0;
  for (int k : late_proposals) mean_distance += std::fabs(k - 60.0);
  mean_distance /= late_proposals.size();
  EXPECT_LT(mean_distance, 50.0);  // uniform would average ~70
}

TEST(TpeIntegerTest, DeterministicForSeed) {
  TpeIntegerOptimizer a(1, 50, TpeOptions(), 9);
  TpeIntegerOptimizer b(1, 50, TpeOptions(), 9);
  for (int i = 0; i < 20; ++i) {
    const int ka = a.Propose();
    const int kb = b.Propose();
    EXPECT_EQ(ka, kb);
    a.Record(ka, ka);
    b.Record(kb, kb);
  }
}

TEST(TpeIntegerTest, SingletonDomain) {
  TpeIntegerOptimizer optimizer(4, 4, TpeOptions(), 5);
  EXPECT_EQ(optimizer.Propose(), 4);
  optimizer.Record(4, 1.0);
  EXPECT_EQ(optimizer.Propose(), 4);
}

TEST(TpeBinaryTest, MasksRespectSizeBounds) {
  TpeBinaryOptimizer optimizer(12, 4, TpeOptions(), 6);
  for (int i = 0; i < 40; ++i) {
    const auto mask = optimizer.Propose();
    ASSERT_EQ(mask.size(), 12u);
    int ones = 0;
    for (char bit : mask) ones += bit ? 1 : 0;
    EXPECT_GE(ones, 1);
    EXPECT_LE(ones, 4);
    optimizer.Record(mask, 1.0);
  }
}

TEST(TpeBinaryTest, LearnsTargetMask) {
  // Loss = hamming distance to target {0, 1}. TPE should drive proposals
  // toward the target after enough observations.
  const std::vector<char> target = {1, 0, 1, 0, 0, 1, 0, 0};
  auto loss = [&](const std::vector<char>& mask) {
    double mismatches = 0;
    for (size_t f = 0; f < mask.size(); ++f) {
      if ((mask[f] != 0) != (target[f] != 0)) mismatches += 1;
    }
    return mismatches;
  };
  TpeBinaryOptimizer optimizer(8, 8, TpeOptions(), 7);
  double best = 1e18;
  for (int i = 0; i < 120; ++i) {
    const auto mask = optimizer.Propose();
    const double l = loss(mask);
    best = std::min(best, l);
    optimizer.Record(mask, l);
  }
  EXPECT_LE(best, 1.0);
}

TEST(TpeBinaryTest, DeterministicForSeed) {
  TpeBinaryOptimizer a(6, 6, TpeOptions(), 11);
  TpeBinaryOptimizer b(6, 6, TpeOptions(), 11);
  for (int i = 0; i < 15; ++i) {
    const auto ma = a.Propose();
    const auto mb = b.Propose();
    EXPECT_EQ(ma, mb);
    a.Record(ma, i);
    b.Record(mb, i);
  }
}

TEST(TpeBinaryTest, NeverProposesEmptyMask) {
  TpeBinaryOptimizer optimizer(5, 1, TpeOptions(), 12);
  for (int i = 0; i < 30; ++i) {
    const auto mask = optimizer.Propose();
    int ones = 0;
    for (char bit : mask) ones += bit ? 1 : 0;
    EXPECT_EQ(ones, 1);  // max_ones = 1 forces exactly one feature
    optimizer.Record(mask, 1.0);
  }
}

}  // namespace
}  // namespace dfs::fs
